#![deny(missing_docs)]
//! # jxp — Decentralized PageRank Approximation in a P2P Web Search Network
//!
//! Facade crate for the reproduction of *"Efficient and Decentralized
//! PageRank Approximation in a Peer-to-Peer Web Search Network"* (Parreira,
//! Donato, Michel, Weikum — VLDB 2006).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`webgraph`] — graph substrate (CSR graphs, generators, analysis, I/O)
//! * [`pagerank`] — centralized PageRank and ranking-comparison metrics
//! * [`synopses`] — MIPs, Bloom filters, Flajolet–Martin sketches
//! * [`core`] — the JXP algorithm itself (peers, world nodes, meetings)
//! * [`p2pnet`] — P2P network simulator (assignment, meetings, bandwidth,
//!   churn)
//! * [`minerva`] — the Minerva-style P2P search engine of §6.3
//! * [`store`] — durable checkpoints + WAL-backed crash recovery
//!
//! See `examples/quickstart.rs` for a three-peer walk-through.

pub use jxp_core as core;
pub use jxp_minerva as minerva;
pub use jxp_p2pnet as p2pnet;
pub use jxp_pagerank as pagerank;
pub use jxp_store as store;
pub use jxp_synopses as synopses;
pub use jxp_webgraph as webgraph;
