//! Integration: peer-state snapshots across a live network — the churn
//! scenario the snapshot feature exists for.

use jxp::core::{snapshot, JxpConfig};
use jxp::p2pnet::assign::{assign_by_crawlers, CrawlerParams};
use jxp::p2pnet::{Network, NetworkConfig};
use jxp::pagerank::{metrics, pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp::webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (CategorizedGraph, Vec<Subgraph>) {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 3,
            nodes_per_category: 120,
            intra_out_per_node: 4,
            cross_fraction: 0.15,
        },
        &mut StdRng::seed_from_u64(81),
    );
    let frags = assign_by_crawlers(
        &cg,
        &CrawlerParams {
            peers_per_category: 4,
            seeds_per_peer: 3,
            max_depth: 4,
            max_pages: Some(70),
            max_pages_jitter: 0.5,
            off_category_follow_prob: 0.5,
        },
        &mut StdRng::seed_from_u64(82),
    );
    (cg, frags)
}

#[test]
fn leave_snapshot_rejoin_preserves_knowledge() {
    let (cg, frags) = world();
    let n = cg.graph.num_nodes() as u64;
    let mut net = Network::new(frags, n, NetworkConfig::default(), 83);
    net.run(200);

    // Peer 0 leaves, taking a snapshot with it.
    let departing = net.remove_peer(0);
    let world_size_at_leave = departing.world().len();
    assert!(
        world_size_at_leave > 0,
        "peer left before learning anything"
    );
    let bytes = snapshot::save(&departing);

    // The network moves on without it.
    net.run(100);

    // The peer rejoins warm and keeps participating.
    let restored = snapshot::load(&bytes[..]).expect("snapshot must load");
    assert_eq!(restored.world().len(), world_size_at_leave);
    net.add_existing_peer(restored);
    net.run(100);

    // The rejoined peer (now the last index) kept its old knowledge and
    // gained more.
    let rejoined = net.peer(net.num_peers() - 1);
    assert!(rejoined.world().len() >= world_size_at_leave);
    jxp::core::invariants::check_mass_conservation(rejoined).unwrap();
}

#[test]
fn snapshots_are_deterministic_and_stable_across_save_load_cycles() {
    let (cg, frags) = world();
    let n = cg.graph.num_nodes() as u64;
    let mut net = Network::new(frags, n, NetworkConfig::default(), 84);
    net.run(60);
    let peer = net.peer(2);
    let b1 = snapshot::save(peer);
    let b2 = snapshot::save(peer);
    assert_eq!(b1, b2, "snapshot of identical state must be identical");
    let once = snapshot::load(&b1[..]).unwrap();
    let twice = snapshot::load(&snapshot::save(&once)[..]).unwrap();
    assert_eq!(once.scores(), twice.scores());
    assert_eq!(once.world_score(), twice.world_score());
}

#[test]
fn warm_rejoin_keeps_network_accuracy() {
    let (cg, frags) = world();
    let n = cg.graph.num_nodes() as u64;
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);
    let mut net = Network::new(
        frags,
        n,
        NetworkConfig {
            jxp: JxpConfig::optimized(),
            ..Default::default()
        },
        85,
    );
    net.run(300);
    let before = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 60);

    // Cycle a third of the network through leave+snapshot+rejoin.
    let mut parked = Vec::new();
    for _ in 0..4 {
        parked.push(snapshot::save(&net.remove_peer(0)).to_vec());
    }
    net.run(50);
    for bytes in parked {
        net.add_existing_peer(snapshot::load(&bytes[..]).unwrap());
    }
    net.run(150);
    let after = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 60);
    assert!(
        after <= before + 0.05,
        "warm churn degraded accuracy: {before} → {after}"
    );
}
