//! End-to-end tests of the networked runtime: clusters of `jxp-node`
//! peers meeting over the real `jxp-wire` codec on both transports,
//! with fault injection, exact byte accounting, and convergence checks.

use jxp_core::config::JxpConfig;
use jxp_core::peer::JxpPeer;
use jxp_node::{
    run_cluster, ClusterConfig, FrameHandler, JxpNode, LoopbackNetwork, RetryPolicy, StallPlan,
    TcpConfig, TcpServer, TcpTransport, TransportKind,
};
use jxp_pagerank::{pagerank, PageRankConfig};
use jxp_synopses::mips::MipsPermutations;
use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp_webgraph::{PageId, Subgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// A small categorized world split into `n` contiguous fragments, plus
/// its centralized PageRank truth.
fn world(n: usize) -> (Vec<Subgraph>, u64, Vec<f64>) {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 3,
            nodes_per_category: 60,
            intra_out_per_node: 3,
            cross_fraction: 0.25,
        },
        &mut StdRng::seed_from_u64(77),
    );
    let total = cg.graph.num_nodes();
    let per = total.div_ceil(n);
    let frags = (0..n)
        .map(|i| {
            let lo = i * per;
            let hi = ((i + 1) * per).min(total);
            Subgraph::from_pages(&cg.graph, (lo..hi).map(|p| PageId(p as u32)))
        })
        .collect();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    (frags, total as u64, truth)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(10),
    }
}

#[test]
fn loopback_cluster_converges_toward_centralized_pagerank() {
    let (frags, n_total, truth) = world(6);
    let short = ClusterConfig {
        meetings: 6,
        seed: 5,
        ..ClusterConfig::default()
    };
    let long = ClusterConfig {
        meetings: 240,
        seed: 5,
        ..ClusterConfig::default()
    };
    let early = run_cluster(
        frags.clone(),
        n_total,
        JxpConfig::default(),
        &short,
        Some(&truth),
    );
    let late = run_cluster(frags, n_total, JxpConfig::default(), &long, Some(&truth));
    assert_eq!(late.meetings_completed, 240);
    assert_eq!(late.meetings_failed, 0);
    let (e, l) = (early.footrule.unwrap(), late.footrule.unwrap());
    assert!(l < e, "footrule did not improve over the wire: {e} → {l}");
    assert!(l < 0.3, "footrule after 240 wire meetings: {l}");
}

#[test]
fn loopback_cluster_is_deterministic_per_seed() {
    let (frags, n_total, truth) = world(4);
    let config = ClusterConfig {
        meetings: 40,
        seed: 11,
        ..ClusterConfig::default()
    };
    let run = |frags: Vec<Subgraph>| {
        run_cluster(frags, n_total, JxpConfig::default(), &config, Some(&truth))
    };
    let a = run(frags.clone());
    let b = run(frags);
    assert_eq!(a.bytes_total, b.bytes_total);
    assert_eq!(a.footrule, b.footrule);
    assert_eq!(a.per_node.len(), b.per_node.len());
    for (x, y) in a.per_node.iter().zip(&b.per_node) {
        assert_eq!(x, y);
    }
}

#[test]
fn tcp_cluster_with_stalled_peer_survives_via_retry() {
    let (frags, n_total, truth) = world(8);
    let config = ClusterConfig {
        meetings: 200,
        transport: TransportKind::Tcp,
        seed: 13,
        retry: fast_retry(),
        stall: Some(StallPlan {
            node_index: 1,
            at_meeting: 0,
            count: 3,
        }),
        ..ClusterConfig::default()
    };
    let report = run_cluster(frags, n_total, JxpConfig::default(), &config, Some(&truth));
    assert_eq!(report.num_nodes, 8);
    // The stall must be survived, not fatal: every meeting completes.
    assert_eq!(report.meetings_attempted, 200);
    assert_eq!(report.meetings_completed, 200);
    assert_eq!(report.meetings_failed, 0);
    assert!(report.bytes_total > 0);
    assert!(report.footrule.unwrap() < 0.4);
}

#[test]
fn tcp_meeting_bytes_match_encoded_len_exactly() {
    let (frags, n_total, _) = world(2);
    let perms = MipsPermutations::generate(64, 3);
    let mut frags = frags.into_iter();
    let server_node = Arc::new(JxpNode::new(
        0,
        JxpPeer::new(frags.next().unwrap(), n_total, JxpConfig::default()),
        &perms,
    ));
    let client = JxpNode::new(
        1,
        JxpPeer::new(frags.next().unwrap(), n_total, JxpConfig::default()),
        &perms,
    );
    let server = TcpServer::spawn(Arc::clone(&server_node) as Arc<dyn FrameHandler>).expect("bind");
    let transport = TcpTransport::new(TcpConfig::default());
    transport.add_route(0, server.addr());

    // Capture both payloads *before* the meeting: the request is the
    // client's pre-meeting payload, the reply is the server's (computed
    // pre-absorption, per the protocol).
    let expected_request =
        jxp_wire::encoded_len(&jxp_wire::Frame::MeetRequest(client.current_payload()));
    let expected_reply =
        jxp_wire::encoded_len(&jxp_wire::Frame::MeetReply(server_node.current_payload()));

    // wire_size() is exactly the frame body: the header is the only delta.
    assert_eq!(
        expected_request,
        jxp_wire::HEADER_LEN + client.current_payload().wire_size()
    );

    let outcome = client.meet(0, &transport, &fast_retry()).expect("meeting");
    assert_eq!(outcome.bytes_sent, expected_request as u64);
    assert_eq!(outcome.bytes_received, expected_reply as u64);
    // Node counters carry the same measured numbers.
    let s = client.stats();
    assert_eq!(s.bytes_out, expected_request as u64);
    assert_eq!(s.bytes_in, expected_reply as u64);
}

#[test]
fn loopback_and_tcp_agree_on_wire_bytes() {
    let (frags, n_total, _) = world(4);
    let base = ClusterConfig {
        meetings: 24,
        seed: 19,
        retry: fast_retry(),
        ..ClusterConfig::default()
    };
    let loopback = run_cluster(frags.clone(), n_total, JxpConfig::default(), &base, None);
    let tcp = run_cluster(
        frags,
        n_total,
        JxpConfig::default(),
        &ClusterConfig {
            transport: TransportKind::Tcp,
            ..base
        },
        None,
    );
    // Same seed ⇒ same meeting schedule ⇒ byte-identical traffic: the
    // transport moves frames, it does not change them.
    assert_eq!(loopback.meetings_completed, tcp.meetings_completed);
    assert_eq!(loopback.bytes_total, tcp.bytes_total);
}

#[test]
fn exhausted_retries_fail_the_meeting_but_not_the_run() {
    let (frags, n_total, _) = world(3);
    let perms = MipsPermutations::generate(32, 9);
    let mut it = frags.into_iter();
    let a = JxpNode::new(
        0,
        JxpPeer::new(it.next().unwrap(), n_total, JxpConfig::default()),
        &perms,
    );
    let net = LoopbackNetwork::new();
    // Peer 1 is never registered: every attempt is unreachable.
    let err = a.meet(1, &net, &fast_retry()).unwrap_err();
    assert!(matches!(err, jxp_node::TransportError::Unreachable(_)));
    let s = a.stats();
    assert_eq!(s.meetings_failed, 1);
    assert_eq!(s.retries, 3); // max_attempts 4 ⇒ 3 retries spent
    assert_eq!(s.bytes_out, 0, "failed exchanges must not count bytes");
}
