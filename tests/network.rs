//! Integration tests of the full network stack: simulator, selection
//! strategies, N estimation, churn, bandwidth accounting.

use jxp::core::selection::{PreMeetingsConfig, SelectionStrategy};
use jxp::core::JxpConfig;
use jxp::p2pnet::assign::{assign_by_crawlers, CrawlerParams};
use jxp::p2pnet::churn::{ChurnEvent, ChurnModel};
use jxp::p2pnet::{Network, NetworkConfig};
use jxp::pagerank::{metrics, pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp::webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (CategorizedGraph, Vec<Subgraph>) {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 4,
            nodes_per_category: 150,
            intra_out_per_node: 4,
            cross_fraction: 0.15,
        },
        &mut StdRng::seed_from_u64(41),
    );
    let frags = assign_by_crawlers(
        &cg,
        &CrawlerParams {
            peers_per_category: 4,
            seeds_per_peer: 3,
            max_depth: 4,
            max_pages: Some(80),
            max_pages_jitter: 0.5,
            off_category_follow_prob: 0.5,
        },
        &mut StdRng::seed_from_u64(42),
    );
    (cg, frags)
}

#[test]
fn both_selection_strategies_converge() {
    let (cg, frags) = world();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);
    for strategy in [
        SelectionStrategy::Random,
        SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
    ] {
        let mut net = Network::new(
            frags.clone(),
            cg.graph.num_nodes() as u64,
            NetworkConfig {
                jxp: JxpConfig::optimized(),
                strategy: strategy.clone(),
                ..Default::default()
            },
            43,
        );
        let before = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 60);
        net.run(400);
        let after = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 60);
        assert!(
            after < before,
            "{strategy:?}: footrule did not improve ({before} → {after})"
        );
    }
}

#[test]
fn premeetings_selections_are_used_and_fairness_randoms_remain() {
    let (cg, frags) = world();
    let mut net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            ..Default::default()
        },
        44,
    );
    net.run(400);
    let (selections, candidate, revisit, cached) = net.selection_stats();
    assert_eq!(selections, 400);
    assert!(candidate > 0, "no candidate-driven selections happened");
    assert!(
        candidate + revisit < selections,
        "no random selections remain — fairness violated"
    );
    assert!(cached > 0, "no peers were cached");
}

#[test]
fn bandwidth_log_is_consistent_with_meetings() {
    let (cg, frags) = world();
    let num_peers = frags.len();
    let mut net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        NetworkConfig::default(),
        45,
    );
    net.run(200);
    let log = net.bandwidth();
    // Every meeting logs exactly two per-peer entries.
    let entries: usize = (0..num_peers).map(|p| log.peer_history(p).len()).sum();
    assert_eq!(entries, 400);
    // Totals equal the sum of the per-peer histories (no premeeting bytes
    // under the random strategy).
    let sum: u64 = (0..num_peers)
        .map(|p| log.peer_history(p).iter().sum::<u64>())
        .sum();
    assert_eq!(sum, log.total_bytes());
    assert_eq!(log.premeeting_bytes(), 0);
}

#[test]
fn premeetings_add_synopsis_bytes() {
    let (cg, frags) = world();
    let mut random_net = Network::new(
        frags.clone(),
        cg.graph.num_nodes() as u64,
        NetworkConfig::default(),
        46,
    );
    let mut pre_net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            ..Default::default()
        },
        46,
    );
    random_net.run(100);
    pre_net.run(100);
    // Identical seeds → comparable workloads; the pre-meetings run ships
    // MIPs vectors on top of the payloads.
    let r = random_net.bandwidth().total_bytes();
    let p = pre_net.bandwidth().total_bytes();
    assert!(
        p > r,
        "pre-meetings should ship extra synopsis bytes ({p} vs {r})"
    );
}

#[test]
fn gossip_n_estimation_tracks_coverage_and_converges() {
    let (_cg, frags) = world();
    let covered = {
        let mut s = jxp::webgraph::FxHashSet::default();
        for f in &frags {
            s.extend(f.pages().iter().copied());
        }
        s.len() as f64
    };
    let mut net = Network::new(
        frags,
        0,
        NetworkConfig {
            estimate_n: true,
            ..Default::default()
        },
        47,
    );
    net.run(300);
    for p in 0..net.num_peers() {
        let est = net.peer(p).n_total();
        assert!(
            (est - covered).abs() / covered < 0.4,
            "peer {p}: estimate {est} vs covered {covered}"
        );
    }
}

#[test]
fn local_stability_signal_tracks_global_convergence() {
    use jxp::core::convergence::{stable_fraction, StabilityDetector};
    let (cg, frags) = world();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);
    let mut net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        NetworkConfig::default(),
        50,
    );
    let mut detectors: Vec<StabilityDetector> = net
        .peers()
        .iter()
        .map(|p| StabilityDetector::new(p, 4, 1e-4))
        .collect();
    let mut first_mostly_stable: Option<(u64, f64)> = None;
    for _ in 0..1500 {
        let rec = net.step();
        detectors[rec.initiator].observe(net.peer(rec.initiator));
        detectors[rec.partner].observe(net.peer(rec.partner));
        if first_mostly_stable.is_none() && stable_fraction(&detectors) > 0.8 {
            let f = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 60);
            first_mostly_stable = Some((net.meetings(), f));
        }
    }
    let (when, footrule_then) =
        first_mostly_stable.expect("network never became 80% locally stable");
    // The purely local signal should fire only after real progress: the
    // global error at that moment is already small.
    assert!(when > 50, "stability fired implausibly early ({when})");
    assert!(
        footrule_then < 0.2,
        "locally 'stable' while globally far off (footrule {footrule_then})"
    );
}

#[test]
fn network_survives_interleaved_churn_and_stays_accurate() {
    let (cg, frags) = world();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);
    let pool = frags.clone();
    let mut net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        NetworkConfig::default(),
        48,
    );
    let model = ChurnModel {
        leave_prob: 0.15,
        join_prob: 0.15,
        min_peers: 6,
        max_peers: 24,
    };
    let mut rng = StdRng::seed_from_u64(49);
    let mut cursor = 0usize;
    let mut events = 0;
    for _ in 0..500 {
        net.step();
        if !matches!(
            model.tick(&mut net, &pool, &mut cursor, &mut rng),
            ChurnEvent::None
        ) {
            events += 1;
        }
    }
    assert!(events > 30, "churn model produced too few events: {events}");
    for p in net.peers() {
        jxp::core::invariants::check_mass_conservation(p).unwrap();
    }
    let f = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 60);
    assert!(f < 0.3, "ranking degraded too much under churn: {f}");
}
