//! Head-to-head comparison of the synopsis techniques (§4.3 cites all
//! three families): MIPs vs Bloom filters as overlap estimators on
//! identical inputs, and FM sketches as the distinct counter.

use jxp::synopses::mips::{MipsPermutations, MipsVector};
use jxp::synopses::{BloomFilter, FmSketch};

/// Build all three synopses of the same integer set.
fn synopsize(
    perms: &MipsPermutations,
    elems: impl Iterator<Item = u64> + Clone,
) -> (MipsVector, BloomFilter, FmSketch) {
    let mips = MipsVector::from_elements(perms, elems.clone());
    let mut bloom = BloomFilter::with_capacity(4000, 0.01);
    let mut fm = FmSketch::new(256);
    for x in elems {
        bloom.insert(x);
        fm.insert(x);
    }
    (mips, bloom, fm)
}

#[test]
fn mips_and_bloom_agree_on_intersection_size() {
    let perms = MipsPermutations::generate(256, 7);
    for (a_range, b_range, true_inter) in [
        (0..1000u64, 500..1500u64, 500.0),
        (0..1000, 900..1900, 100.0),
        (0..1000, 2000..3000, 0.0),
    ] {
        let (mips_a, bloom_a, _) = synopsize(&perms, a_range.clone());
        let (mips_b, bloom_b, _) = synopsize(&perms, b_range.clone());
        let mips_est = mips_a.overlap(&mips_b);
        let bloom_est = bloom_a.estimate_intersection(&bloom_b);
        assert!(
            (mips_est - true_inter).abs() < 150.0,
            "MIPs estimate {mips_est} for true {true_inter}"
        );
        assert!(
            (bloom_est - true_inter).abs() < 150.0,
            "Bloom estimate {bloom_est} for true {true_inter}"
        );
        // And they agree with each other within combined error.
        assert!(
            (mips_est - bloom_est).abs() < 250.0,
            "MIPs {mips_est} vs Bloom {bloom_est}"
        );
    }
}

#[test]
fn wire_size_tradeoffs_are_as_documented() {
    // §4.3 chooses MIPs because the vectors are small; verify the sizes
    // for the parameters the reproduction uses.
    let perms = MipsPermutations::generate(64, 7);
    let (mips, bloom, fm) = synopsize(&perms, 0..2000u64);
    assert_eq!(mips.wire_size(), 4 + 8 + 64 * 8); // 524 B
    assert!(bloom.wire_size() > mips.wire_size());
    assert_eq!(fm.wire_size(), 4 + 256 * 8);
    // MIPs additionally supports containment, which Bloom's bit-level
    // statistics only reach through two cardinality estimates.
    let (mips_b, _, _) = synopsize(&perms, 1000..3000u64);
    let c = mips.containment_of(&mips_b);
    assert!((c - 0.5).abs() < 0.2, "containment {c}");
}

#[test]
fn fm_counts_unions_that_bloom_and_mips_estimate() {
    let perms = MipsPermutations::generate(256, 9);
    let (mips_a, _, mut fm_a) = synopsize(&perms, 0..1200u64);
    let (mips_b, _, fm_b) = synopsize(&perms, 600..1800u64);
    // FM merge is exact set union.
    fm_a.merge(&fm_b);
    let fm_union = fm_a.estimate();
    let mips_union = mips_a.union(&mips_b).count() as f64;
    assert!(
        (fm_union - 1800.0).abs() / 1800.0 < 0.3,
        "FM union estimate {fm_union}"
    );
    assert!(
        (mips_union - 1800.0).abs() / 1800.0 < 0.2,
        "MIPs union estimate {mips_union}"
    );
}
