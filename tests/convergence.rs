//! Cross-crate integration tests: JXP converges to centralized PageRank
//! under every configuration the paper describes, and the §5 theorems
//! hold along the way.

use jxp::core::invariants::{check_mass_conservation, check_safety_bound, WorldScoreMonitor};
use jxp::core::{meeting, CombineMode, JxpConfig, JxpPeer, MergeMode};
use jxp::pagerank::{metrics, pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp::webgraph::{CsrGraph, PageId, Subgraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small Web-like graph plus overlapping fragments covering it.
fn world(seed: u64, peers: usize) -> (CsrGraph, Vec<Subgraph>) {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 3,
            nodes_per_category: 60,
            intra_out_per_node: 3,
            cross_fraction: 0.2,
        },
        &mut StdRng::seed_from_u64(seed),
    );
    let n = cg.graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    // Random overlapping slices that jointly cover every page.
    let mut fragments: Vec<Vec<PageId>> = vec![Vec::new(); peers];
    for p in 0..n as u32 {
        let owner = rng.gen_range(0..peers);
        fragments[owner].push(PageId(p));
        // ~40% of pages are replicated on a second peer.
        if rng.gen_bool(0.4) {
            let second = rng.gen_range(0..peers);
            if second != owner {
                fragments[second].push(PageId(p));
            }
        }
    }
    let subs = fragments
        .into_iter()
        .map(|pages| Subgraph::from_pages(&cg.graph, pages))
        .collect();
    (cg.graph.clone(), subs)
}

fn run_meetings(
    graph: &CsrGraph,
    fragments: &[Subgraph],
    cfg: JxpConfig,
    rounds: usize,
    seed: u64,
) -> Vec<JxpPeer> {
    let n = graph.num_nodes() as u64;
    let mut peers: Vec<JxpPeer> = fragments
        .iter()
        .map(|f| JxpPeer::new(f.clone(), n, cfg.clone()))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rounds {
        let i = rng.gen_range(0..peers.len());
        let mut j = rng.gen_range(0..peers.len() - 1);
        if j >= i {
            j += 1;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let (left, right) = peers.split_at_mut(hi);
        meeting::meet(&mut left[lo], &mut right[0]);
    }
    peers
}

fn max_abs_error(peers: &[JxpPeer], truth: &[f64]) -> f64 {
    peers
        .iter()
        .flat_map(|peer| {
            peer.scores()
                .iter()
                .enumerate()
                .map(move |(i, &a)| (a - truth[peer.graph().page_at(i).index()]).abs())
        })
        .fold(0.0, f64::max)
}

#[test]
fn all_four_configurations_converge() {
    let (graph, fragments) = world(1, 5);
    let truth = pagerank(&graph, &PageRankConfig::default()).into_scores();
    for merge in [MergeMode::Full, MergeMode::LightWeight] {
        for combine in [CombineMode::Average, CombineMode::TakeMax] {
            let cfg = JxpConfig {
                merge,
                combine,
                ..JxpConfig::default()
            };
            let peers = run_meetings(&graph, &fragments, cfg, 700, 2);
            let err = max_abs_error(&peers, &truth);
            // The Average baseline converges slower than TakeMax (that is
            // Figure 8's point); the bound covers both.
            assert!(
                err < 1e-3,
                "{merge:?}+{combine:?} did not converge: max error {err}"
            );
        }
    }
}

#[test]
fn safety_theorem_holds_at_every_meeting() {
    let (graph, fragments) = world(3, 4);
    let truth = pagerank(&graph, &PageRankConfig::default()).into_scores();
    let n = graph.num_nodes() as u64;
    let cfg = JxpConfig::optimized();
    let mut peers: Vec<JxpPeer> = fragments
        .iter()
        .map(|f| JxpPeer::new(f.clone(), n, cfg.clone()))
        .collect();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..120 {
        let i = rng.gen_range(0..peers.len());
        let mut j = rng.gen_range(0..peers.len() - 1);
        if j >= i {
            j += 1;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let (left, right) = peers.split_at_mut(hi);
        meeting::meet(&mut left[lo], &mut right[0]);
        for p in &peers {
            check_mass_conservation(p).unwrap();
            check_safety_bound(p, &truth, 1e-6).unwrap();
        }
    }
}

#[test]
fn world_score_is_monotonically_non_increasing_with_take_max() {
    let (graph, fragments) = world(5, 4);
    let n = graph.num_nodes() as u64;
    let cfg = JxpConfig::optimized();
    let mut peers: Vec<JxpPeer> = fragments
        .iter()
        .map(|f| JxpPeer::new(f.clone(), n, cfg.clone()))
        .collect();
    // Overlapping fragments: allow the documented transient normalizer
    // wobble (≤ ~2e-4) but nothing bigger.
    let mut monitors: Vec<WorldScoreMonitor> = peers
        .iter()
        .map(|p| WorldScoreMonitor::with_tolerance(p, 1e-3))
        .collect();
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..150 {
        let i = rng.gen_range(0..peers.len());
        let mut j = rng.gen_range(0..peers.len() - 1);
        if j >= i {
            j += 1;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let (left, right) = peers.split_at_mut(hi);
        meeting::meet(&mut left[lo], &mut right[0]);
        for (p, m) in peers.iter().zip(monitors.iter_mut()) {
            m.observe(p);
        }
    }
    for (i, m) in monitors.iter().enumerate() {
        assert_eq!(
            m.violations(),
            0,
            "peer {i}: world score rose by {}",
            m.max_increase()
        );
    }
}

#[test]
fn total_ranking_beats_isolated_ranking() {
    // Meetings must help: the merged ranking after meetings is closer to
    // the centralized one than the merged ranking of isolated peers.
    let (graph, fragments) = world(7, 6);
    let truth = pagerank(&graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);
    let n = graph.num_nodes() as u64;
    let cfg = JxpConfig::optimized();
    let isolated: Vec<JxpPeer> = fragments
        .iter()
        .map(|f| JxpPeer::new(f.clone(), n, cfg.clone()))
        .collect();
    let before = metrics::footrule_distance(
        &jxp::core::evaluate::total_ranking(isolated.iter()),
        &truth_ranking,
        50,
    );
    let peers = run_meetings(&graph, &fragments, cfg, 400, 8);
    let after = metrics::footrule_distance(
        &jxp::core::evaluate::total_ranking(peers.iter()),
        &truth_ranking,
        50,
    );
    assert!(
        after < before,
        "meetings did not improve the ranking: {before} → {after}"
    );
    assert!(after < 0.1, "final footrule too high: {after}");
}

#[test]
fn kendall_tau_approaches_one() {
    let (graph, fragments) = world(9, 5);
    let truth = pagerank(&graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp::core::evaluate::centralized_ranking(&truth);
    let peers = run_meetings(&graph, &fragments, JxpConfig::optimized(), 500, 10);
    let ranking = jxp::core::evaluate::total_ranking(peers.iter());
    let tau = metrics::kendall_tau(&ranking, &truth_ranking, 50).unwrap();
    assert!(tau > 0.9, "kendall tau {tau}");
}

#[test]
fn single_page_peers_work() {
    // Degenerate fragments: every peer holds exactly one page.
    let mut b = jxp::webgraph::GraphBuilder::new();
    for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
        b.add_edge(PageId(s), PageId(d));
    }
    let g = b.build();
    let truth = pagerank(&g, &PageRankConfig::default()).into_scores();
    let cfg = JxpConfig::optimized();
    let mut peers: Vec<JxpPeer> = (0..4)
        .map(|p| JxpPeer::new(Subgraph::from_pages(&g, [PageId(p)]), 4, cfg.clone()))
        .collect();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..300 {
        let i = rng.gen_range(0..4usize);
        let mut j = rng.gen_range(0..3);
        if j >= i {
            j += 1;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let (left, right) = peers.split_at_mut(hi);
        meeting::meet(&mut left[lo], &mut right[0]);
    }
    for (p, peer) in peers.iter().enumerate() {
        let alpha = peer.score(PageId(p as u32)).unwrap();
        assert!(
            (alpha - truth[p]).abs() < 0.01,
            "peer {p}: {alpha} vs {}",
            truth[p]
        );
    }
}
