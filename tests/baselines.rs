//! Integration guard for the paper's §2 positioning: JXP on overlapping
//! fragments must be competitive with the disjoint-partition baseline on
//! its own preferred layout, and strictly better than that baseline when
//! naively applied to a structure-blind partition.

use jxp::core::JxpConfig;
use jxp::p2pnet::{Network, NetworkConfig};
use jxp::pagerank::blockrank::block_pagerank;
use jxp::pagerank::metrics::footrule_distance;
use jxp::pagerank::{pagerank, PageRankConfig, Ranking};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp::webgraph::{PageId, Subgraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ranking_of(scores: &[f64]) -> Ranking {
    Ranking::from_scores(
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (PageId(i as u32), s + i as f64 * 1e-15)),
    )
}

#[test]
fn jxp_on_overlap_competitive_with_blockrank_on_disjoint() {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 4,
            nodes_per_category: 150,
            intra_out_per_node: 4,
            cross_fraction: 0.1,
        },
        &mut StdRng::seed_from_u64(91),
    );
    let n = cg.graph.num_nodes();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = ranking_of(&truth);

    // JXP: arbitrarily overlapping fragments (the setting BlockRank cannot
    // even express).
    let mut rng = StdRng::seed_from_u64(92);
    let mut pages: Vec<Vec<PageId>> = vec![Vec::new(); 12];
    for p in 0..n as u32 {
        pages[rng.gen_range(0..12usize)].push(PageId(p));
        if rng.gen_bool(0.35) {
            pages[rng.gen_range(0..12usize)].push(PageId(p));
        }
    }
    let fragments: Vec<Subgraph> = pages
        .into_iter()
        .map(|ps| Subgraph::from_pages(&cg.graph, ps))
        .collect();
    let mut net = Network::new(
        fragments,
        n as u64,
        NetworkConfig {
            jxp: JxpConfig::optimized(),
            ..Default::default()
        },
        93,
    );
    net.run(800);
    let jxp_f = footrule_distance(&net.total_ranking(), &truth_ranking, 60);

    // BlockRank on its best-case (category-aligned, disjoint) partition.
    let aligned: Vec<u32> = cg.category_of.iter().map(|&c| c as u32).collect();
    let block_best = footrule_distance(
        &ranking_of(&block_pagerank(
            &cg.graph,
            &aligned,
            &PageRankConfig::default(),
        )),
        &truth_ranking,
        60,
    );
    // BlockRank on a structure-blind partition (what an autonomous P2P
    // network would actually give it).
    let blind: Vec<u32> = (0..n as u32).map(|p| p % 12).collect();
    let block_blind = footrule_distance(
        &ranking_of(&block_pagerank(
            &cg.graph,
            &blind,
            &PageRankConfig::default(),
        )),
        &truth_ranking,
        60,
    );

    assert!(
        jxp_f <= block_best + 0.05,
        "JXP on overlap ({jxp_f:.4}) should be competitive with BlockRank on \
         its best-case partition ({block_best:.4})"
    );
    assert!(
        jxp_f < block_blind,
        "JXP ({jxp_f:.4}) should beat BlockRank on a structure-blind \
         partition ({block_blind:.4})"
    );
}
