//! End-to-end P2P search integration: the §6.3 pipeline from graph to
//! precision numbers, with the JXP scores coming from an actual simulated
//! network (not the centralized oracle).

use jxp::core::JxpConfig;
use jxp::minerva::eval::{averages, precision_at_k, table2};
use jxp::minerva::fusion::{rank_by_fusion, rank_by_tfidf};
use jxp::minerva::query::execute_local;
use jxp::minerva::routing::execute_routed;
use jxp::minerva::{Corpus, CorpusParams, PeerIndex};
use jxp::p2pnet::assign::minerva_fragments;
use jxp::p2pnet::{Network, NetworkConfig};
use jxp::pagerank::{pagerank, PageRankConfig};
use jxp::webgraph::generators::{CategorizedGraph, CategorizedParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct SearchWorld {
    corpus: Corpus,
    indexes: Vec<PeerIndex>,
    jxp_ranking: jxp::pagerank::Ranking,
}

fn search_world() -> SearchWorld {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 4,
            nodes_per_category: 200,
            intra_out_per_node: 4,
            cross_fraction: 0.1,
        },
        &mut StdRng::seed_from_u64(51),
    );
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let fragments = minerva_fragments(&cg, 4, &mut StdRng::seed_from_u64(52));
    let mut net = Network::new(
        fragments.clone(),
        cg.graph.num_nodes() as u64,
        NetworkConfig {
            jxp: JxpConfig::optimized(),
            ..Default::default()
        },
        53,
    );
    net.run(500);
    let corpus = Corpus::generate(
        &cg,
        &truth,
        CorpusParams::default(),
        &mut StdRng::seed_from_u64(54),
    );
    let indexes = fragments
        .iter()
        .map(|f| PeerIndex::build(f, &corpus))
        .collect();
    SearchWorld {
        corpus,
        indexes,
        jxp_ranking: net.total_ranking(),
    }
}

#[test]
fn routed_queries_return_relevant_on_topic_results() {
    let w = search_world();
    let queries = w.corpus.make_queries(4, &mut StdRng::seed_from_u64(55));
    let mut total_precision = 0.0;
    for q in &queries {
        let hits = execute_routed(&w.indexes, q, 4, 30);
        assert!(!hits.is_empty(), "query {} returned nothing", q.name);
        // Topic terms only occur in their own category's documents, so
        // every hit must be on-topic.
        for h in &hits {
            assert_eq!(
                w.corpus.category(h.page),
                q.category,
                "off-topic hit for {}",
                q.name
            );
        }
        let ranked = rank_by_tfidf(&hits);
        total_precision += precision_at_k(&w.corpus, q, &ranked, 10);
    }
    // Plain tf·idf may whiff on an individual query (that is Table 2's
    // point), but across the workload it must find relevant pages.
    assert!(
        total_precision > 0.0,
        "tf·idf found no relevant pages across any query"
    );
}

#[test]
fn fusion_with_network_jxp_scores_improves_average_precision() {
    let w = search_world();
    let queries = w.corpus.make_queries(8, &mut StdRng::seed_from_u64(56));
    let rows = table2(
        &w.corpus,
        &w.indexes,
        &w.jxp_ranking,
        &queries,
        4,
        40,
        10,
        (0.6, 0.4),
    );
    let (tfidf, fused) = averages(&rows);
    assert!(
        fused > tfidf,
        "network-JXP fusion should beat tf·idf: {fused:.3} vs {tfidf:.3}"
    );
}

#[test]
fn local_execution_is_a_subset_of_routed_execution() {
    let w = search_world();
    let queries = w.corpus.make_queries(2, &mut StdRng::seed_from_u64(57));
    let q = &queries[0];
    let local = execute_local(&w.indexes[0], q, 20);
    let routed = execute_routed(&w.indexes, q, w.indexes.len(), 20);
    // Every locally-found page must also be in the full-fanout merge.
    for hit in &local {
        assert!(
            routed.iter().any(|h| h.page == hit.page),
            "page {:?} lost in merging",
            hit.page
        );
    }
}

#[test]
fn fusion_weights_interpolate_between_rankings() {
    let w = search_world();
    let queries = w.corpus.make_queries(2, &mut StdRng::seed_from_u64(58));
    let q = &queries[1];
    let hits = execute_routed(&w.indexes, q, 4, 40);
    let pure_tfidf = rank_by_tfidf(&hits);
    let fused_all_tfidf: Vec<_> = rank_by_fusion(&hits, &w.jxp_ranking, 1.0, 0.0)
        .into_iter()
        .map(|h| h.page)
        .collect();
    assert_eq!(
        pure_tfidf, fused_all_tfidf,
        "weight (1,0) must equal tf·idf order"
    );
    let fused_all_jxp: Vec<_> = rank_by_fusion(&hits, &w.jxp_ranking, 0.0, 1.0)
        .into_iter()
        .map(|h| h.page)
        .collect();
    // Pure-authority order ranks by JXP score.
    for pair in fused_all_jxp.windows(2) {
        let a = w.jxp_ranking.score(pair[0]).unwrap_or(0.0);
        let b = w.jxp_ranking.score(pair[1]).unwrap_or(0.0);
        assert!(a >= b, "authority order violated: {a} < {b}");
    }
}
