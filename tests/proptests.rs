//! Property-based tests over the whole stack: random graphs, random
//! partitions, random meeting schedules — the invariants must always hold.

use jxp::core::invariants::{check_mass_conservation, check_safety_bound};
use jxp::core::{meeting, CombineMode, JxpConfig, JxpPeer, MergeMode};
use jxp::pagerank::{metrics, pagerank, PageRankConfig, Ranking};
use jxp::synopses::mips::{MipsPermutations, MipsVector};
use jxp::webgraph::{io, GraphBuilder, PageId, Subgraph};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a random directed graph as an edge list over `n` nodes.
fn arb_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_nodes).prop_flat_map(move |n| (Just(n), vec((0..n, 0..n), 1..=max_edges)))
}

fn build(n: u32, edges: &[(u32, u32)]) -> jxp::webgraph::CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n as usize);
    for &(s, d) in edges {
        b.add_edge(PageId(s), PageId(d));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pagerank_is_a_probability_distribution((n, edges) in arb_graph(40, 120)) {
        let g = build(n, &edges);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.scores().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "sum {total}");
        prop_assert!(pr.scores().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn csr_degrees_are_consistent((n, edges) in arb_graph(40, 120)) {
        let g = build(n, &edges);
        let out: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let inn: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out, g.num_edges());
        prop_assert_eq!(inn, g.num_edges());
        // Every listed successor relation is mirrored in predecessors.
        for v in g.nodes() {
            for u in g.successors(v) {
                prop_assert!(g.predecessors(u).any(|w| w == v));
            }
        }
    }

    #[test]
    fn graph_io_round_trips((n, edges) in arb_graph(40, 120)) {
        let g = build(n, &edges);
        let bytes = io::to_bytes(&g);
        let g2 = io::from_bytes(&bytes[..]).unwrap();
        prop_assert_eq!(&g, &g2);
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).unwrap();
        let g3 = io::read_edge_list(&mut &text[..]).unwrap();
        prop_assert_eq!(&g, &g3);
    }

    #[test]
    fn jxp_invariants_hold_on_random_worlds(
        (n, edges) in arb_graph(24, 80),
        owners in vec(0..3usize, 24),
        schedule in vec((0..3usize, 0..3usize), 10..30),
    ) {
        let g = build(n, &edges);
        let truth = pagerank(&g, &PageRankConfig::default()).into_scores();
        // Partition pages over 3 peers (ensuring non-empty fragments).
        let mut pages: Vec<Vec<PageId>> = vec![Vec::new(); 3];
        for p in 0..n {
            pages[owners[p as usize % owners.len()] % 3].push(PageId(p));
        }
        for (i, ps) in pages.iter_mut().enumerate() {
            if ps.is_empty() {
                ps.push(PageId(i as u32 % n));
            }
        }
        let cfg = JxpConfig::optimized();
        let mut peers: Vec<JxpPeer> = pages
            .into_iter()
            .map(|ps| JxpPeer::new(Subgraph::from_pages(&g, ps), n as u64, cfg.clone()))
            .collect();
        for &(i, j) in &schedule {
            if i == j {
                continue;
            }
            let (lo, hi) = (i.min(j), i.max(j));
            let (l, r) = peers.split_at_mut(hi);
            meeting::meet(&mut l[lo], &mut r[0]);
        }
        for p in &peers {
            prop_assert!(check_mass_conservation(p).is_ok(), "{:?}", check_mass_conservation(p));
            prop_assert!(check_safety_bound(p, &truth, 1e-6).is_ok(), "{:?}", check_safety_bound(p, &truth, 1e-6));
        }
    }

    #[test]
    fn full_merge_respects_invariants_too(
        (n, edges) in arb_graph(20, 60),
        split in 1..19u32,
    ) {
        let g = build(n, &edges);
        let split = split % n.max(2);
        let truth = pagerank(&g, &PageRankConfig::default()).into_scores();
        let cfg = JxpConfig {
            merge: MergeMode::Full,
            combine: CombineMode::Average,
            ..JxpConfig::default()
        };
        // Two overlapping halves.
        let cut_a = (split + 1).min(n);
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, (0..cut_a).map(PageId)),
            n as u64,
            cfg.clone(),
        );
        let mut b = JxpPeer::new(
            Subgraph::from_pages(&g, (split.saturating_sub(1)..n).map(PageId)),
            n as u64,
            cfg,
        );
        for _ in 0..5 {
            meeting::meet(&mut a, &mut b);
            prop_assert!(check_mass_conservation(&a).is_ok());
            prop_assert!(check_mass_conservation(&b).is_ok());
            prop_assert!(check_safety_bound(&a, &truth, 1e-6).is_ok());
            prop_assert!(check_safety_bound(&b, &truth, 1e-6).is_ok());
        }
    }

    #[test]
    fn footrule_metric_axioms(
        scores_a in vec(0.0f64..1.0, 10),
        scores_b in vec(0.0f64..1.0, 10),
        k in 1..10usize,
    ) {
        let ra = Ranking::from_scores(
            scores_a.iter().enumerate().map(|(i, &s)| (PageId(i as u32), s + i as f64 * 1e-9)),
        );
        let rb = Ranking::from_scores(
            scores_b.iter().enumerate().map(|(i, &s)| (PageId(i as u32), s + i as f64 * 1e-9)),
        );
        let d_ab = metrics::footrule_distance(&ra, &rb, k);
        let d_ba = metrics::footrule_distance(&rb, &ra, k);
        prop_assert!((d_ab - d_ba).abs() < 1e-12, "not symmetric");
        prop_assert!((0.0..=1.0).contains(&d_ab), "out of range: {d_ab}");
        prop_assert_eq!(metrics::footrule_distance(&ra, &ra, k), 0.0);
    }

    #[test]
    fn mips_estimates_are_sane(
        a_start in 0u64..500,
        a_len in 1u64..400,
        b_start in 0u64..500,
        b_len in 1u64..400,
    ) {
        let perms = MipsPermutations::generate(128, 99);
        let a = MipsVector::from_elements(&perms, a_start..a_start + a_len);
        let b = MipsVector::from_elements(&perms, b_start..b_start + b_len);
        let r = a.resemblance(&b);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((r - b.resemblance(&a)).abs() < 1e-12, "not symmetric");
        let c = a.containment_of(&b);
        prop_assert!((0.0..=1.0).contains(&c));
        // The union vector's minima never exceed either input's.
        let u = a.union(&b);
        prop_assert_eq!(u.dims(), a.dims());
        // Self-resemblance is exactly 1.
        prop_assert_eq!(a.resemblance(&a), 1.0);
    }

    #[test]
    fn snapshot_round_trips_warmed_up_peers(
        (n, edges) in arb_graph(24, 80),
        cut in 1..23u32,
        meetings in 1..8usize,
    ) {
        let g = build(n, &edges);
        let cut = (cut % n).max(1);
        let cfg = JxpConfig::optimized();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, (0..cut).map(PageId)),
            n as u64,
            cfg.clone(),
        );
        let mut b = JxpPeer::new(
            Subgraph::from_pages(&g, (cut.saturating_sub(1)..n).map(PageId)),
            n as u64,
            cfg,
        );
        for _ in 0..meetings {
            meeting::meet(&mut a, &mut b);
        }
        let restored = jxp::core::snapshot::load(&jxp::core::snapshot::save(&a)[..]).unwrap();
        prop_assert_eq!(restored.graph().pages(), a.graph().pages());
        prop_assert_eq!(restored.scores(), a.scores());
        prop_assert_eq!(restored.world_score(), a.world_score());
        prop_assert_eq!(restored.world().len(), a.world().len());
        prop_assert_eq!(restored.world().num_dangling(), a.world().num_dangling());
    }

    #[test]
    fn honest_payloads_always_validate(
        (n, edges) in arb_graph(24, 80),
        cut in 1..23u32,
        meetings in 0..6usize,
    ) {
        let g = build(n, &edges);
        let cut = (cut % n).max(1);
        let cfg = JxpConfig::optimized();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, (0..cut).map(PageId)),
            n as u64,
            cfg.clone(),
        );
        let mut b = JxpPeer::new(
            Subgraph::from_pages(&g, (cut / 2..n).map(PageId)),
            n as u64,
            cfg,
        );
        for _ in 0..meetings {
            meeting::meet(&mut a, &mut b);
        }
        prop_assert!(a.payload().validate().is_ok());
        prop_assert!(b.payload().validate().is_ok());
    }

    #[test]
    fn ta_topk_equals_exhaustive_scoring(
        list_a in vec((0..60u32, 0.0f64..1.0), 1..60),
        list_b in vec((0..60u32, 0.0f64..1.0), 1..60),
        k in 1..12usize,
    ) {
        use jxp::minerva::topk::{ta_topk, ScoredList};
        let lists = [
            ScoredList::from_pairs(list_a.iter().map(|&(p, s)| (PageId(p), s))),
            ScoredList::from_pairs(list_b.iter().map(|&(p, s)| (PageId(p), s))),
        ];
        let r = ta_topk(&lists, k);
        // Exhaustive reference with the same max-dedup-then-sum semantics.
        let mut acc: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        let dedup = |list: &[(u32, f64)]| {
            let mut m: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
            for &(p, s) in list {
                let e = m.entry(p).or_insert(f64::NEG_INFINITY);
                *e = e.max(s);
            }
            m
        };
        for (p, s) in dedup(&list_a).into_iter().chain(dedup(&list_b)) {
            *acc.entry(p).or_insert(0.0) += s;
        }
        let mut expect: Vec<(u32, f64)> = acc.into_iter().collect();
        expect.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        expect.truncate(k);
        prop_assert_eq!(r.hits.len(), expect.len());
        // Compare score multisets (ties may order pages differently).
        for (hit, (_, s)) in r.hits.iter().zip(expect.iter()) {
            prop_assert!((hit.tfidf - s).abs() < 1e-9, "{} vs {}", hit.tfidf, s);
        }
    }

    #[test]
    fn personalized_pagerank_is_a_distribution(
        (n, edges) in arb_graph(30, 90),
        seed_page in 0..30u32,
    ) {
        use jxp::pagerank::personalized::topic_pagerank;
        let g = build(n, &edges);
        let seed = PageId(seed_page % n);
        let r = topic_pagerank(&g, &[seed], &PageRankConfig::default());
        let total: f64 = r.scores().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        prop_assert!(r.scores().iter().all(|&s| s >= 0.0));
        // The seed gets at least the bare teleport mass.
        prop_assert!(r.score(seed) >= (1.0 - 0.85) - 1e-9);
    }

    #[test]
    fn subgraph_union_is_commutative_and_idempotent(
        (n, edges) in arb_graph(30, 80),
        cut in 1..29u32,
    ) {
        let g = build(n, &edges);
        let cut = (cut % n).max(1);
        let a = Subgraph::from_pages(&g, (0..cut).map(PageId));
        let b = Subgraph::from_pages(&g, (cut / 2..n).map(PageId));
        let ab = a.union(&b);
        let ba = b.union(&a);
        prop_assert_eq!(ab.pages(), ba.pages());
        prop_assert_eq!(ab.num_links(), ba.num_links());
        let aa = a.union(&a);
        prop_assert_eq!(aa.pages(), a.pages());
        prop_assert_eq!(aa.num_links(), a.num_links());
    }
}
