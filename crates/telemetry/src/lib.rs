//! # jxp-telemetry
//!
//! Observability subsystem for the JXP reproduction: a lock-free
//! metrics registry, a bounded structured event ring, and Prometheus /
//! JSON exporters. Instrumented layers (node runtime, simulator,
//! parallel meeting engine, power iteration) hold one shared
//! [`TelemetryHub`] and hit pre-registered `Arc` handles on the hot
//! path — a relaxed atomic add, never a lock.
//!
//! Telemetry is observation-only. Counters are commutative, events on
//! deterministic paths are recorded from the serial accounting phase,
//! and nothing time-like enters an [`Event`] — so enabling telemetry
//! cannot perturb the engine's bit-identical thread-count determinism.

#![deny(missing_docs)]

pub mod events;
pub mod export;
pub mod http;
pub mod metrics;
pub mod sync;

pub use events::{Event, EventRecord, EventRing};
pub use http::MetricsServer;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};

use std::sync::Arc;

/// Default number of events retained by a hub's ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One registry plus one event ring — the unit of instrumentation a
/// run shares across layers.
#[derive(Debug)]
pub struct TelemetryHub {
    registry: Registry,
    events: EventRing,
}

impl TelemetryHub {
    /// A hub with the default event capacity.
    pub fn new() -> Self {
        TelemetryHub::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A hub retaining the most recent `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_event_capacity(capacity: usize) -> Self {
        TelemetryHub {
            registry: Registry::new(),
            events: EventRing::new(capacity),
        }
    }

    /// Convenience: an `Arc`-wrapped default hub.
    pub fn shared() -> Arc<Self> {
        Arc::new(TelemetryHub::new())
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Freeze metrics and retained events together.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: self.registry.snapshot(),
            events: self.events.snapshot(),
        }
    }
}

impl Default for TelemetryHub {
    fn default() -> Self {
        TelemetryHub::new()
    }
}

/// Point-in-time state of a [`TelemetryHub`]: every metric plus the
/// retained event window. The exporters in [`export`] render this.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Frozen metric values, sorted by name.
    pub metrics: RegistrySnapshot,
    /// Retained events, oldest first.
    pub events: Vec<EventRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_combines_registry_and_events() {
        let hub = TelemetryHub::with_event_capacity(4);
        hub.registry().counter("meetings_total").add(2);
        hub.events().record(Event::Churn {
            peer: 1,
            joined: true,
        });
        let snap = hub.snapshot();
        assert_eq!(snap.metrics.counters["meetings_total"], 2);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].seq, 0);
    }

    #[test]
    fn shared_hub_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TelemetryHub>();
        let hub = TelemetryHub::shared();
        let h2 = Arc::clone(&hub);
        std::thread::spawn(move || h2.registry().counter("x_total").inc())
            .join()
            .unwrap();
        assert_eq!(hub.snapshot().metrics.counters["x_total"], 1);
    }
}
