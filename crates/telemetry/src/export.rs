//! Exporters: Prometheus text exposition, JSON snapshots, and a
//! human-readable rendering for the `jxp metrics` subcommand.
//!
//! The JSON format is this crate's own (the sanctioned dependency set
//! has no serde), so [`TelemetrySnapshot::from_json`] ships a minimal
//! recursive-descent parser for exactly what [`TelemetrySnapshot::to_json`]
//! emits — round-tripping is pinned by tests. Metric names may carry
//! Prometheus-style labels inline (`jxp_node_bytes_in_total{node="3"}`);
//! the exposition groups such series under one `# TYPE` header.

use crate::events::{Event, EventRecord};
use crate::metrics::HistogramSnapshot;
use crate::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Base metric name without an inline `{label="…"}` suffix.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Format an `f64` so Prometheus and the JSON parser both accept it.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers too, so this is shared.
        s
    } else if v.is_nan() {
        "0".to_string()
    } else if v > 0.0 {
        "1e308".to_string()
    } else {
        "-1e308".to_string()
    }
}

impl TelemetrySnapshot {
    /// Prometheus text exposition (metrics only; events are not part of
    /// the exposition format).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut typed = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {} {kind}\n", base_name(name));
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (name, value) in &self.metrics.counters {
            typed(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.metrics.gauges {
            typed(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {}", fmt_f64(*value));
        }
        for (name, h) in &self.metrics.histograms {
            typed(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (i, count) in h.counts.iter().enumerate() {
                cumulative += count;
                let le = match h.bounds.get(i) {
                    Some(b) => fmt_f64(*b),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{{le=\"{le}\"}} {cumulative}",
                    base_name(name)
                );
            }
            let _ = writeln!(out, "{}_sum {}", base_name(name), fmt_f64(h.sum));
            let _ = writeln!(out, "{}_count {cumulative}", base_name(name));
        }
        out
    }

    /// Serialize the full snapshot (metrics + events) as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(&mut out, self.metrics.counters.iter(), |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, self.metrics.gauges.iter(), |v| fmt_f64(*v));
        out.push_str("},\n  \"histograms\": {");
        push_map(&mut out, self.metrics.histograms.iter(), |h| {
            format!(
                "{{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.bounds
                    .iter()
                    .map(|b| fmt_f64(*b))
                    .collect::<Vec<_>>()
                    .join(", "),
                h.counts
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
                fmt_f64(h.sum),
                fmt_f64(h.quantile(0.50)),
                fmt_f64(h.quantile(0.90)),
                fmt_f64(h.quantile(0.99))
            )
        });
        out.push_str("},\n  \"events\": [");
        for (i, r) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&event_to_json(r));
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse a snapshot previously produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a description of the first syntax or schema violation.
    pub fn from_json(input: &str) -> Result<TelemetrySnapshot, String> {
        let value = JsonParser::new(input).parse()?;
        let root = value.as_object("top level")?;
        let mut snap = TelemetrySnapshot::default();
        for (name, v) in get_obj(root, "counters")? {
            snap.metrics.counters.insert(name.clone(), v.as_u64(name)?);
        }
        for (name, v) in get_obj(root, "gauges")? {
            snap.metrics.gauges.insert(name.clone(), v.as_f64(name)?);
        }
        for (name, v) in get_obj(root, "histograms")? {
            let h = v.as_object(name)?;
            snap.metrics.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    bounds: get_arr(h, "bounds")?
                        .iter()
                        .map(|b| b.as_f64("bounds"))
                        .collect::<Result<_, _>>()?,
                    counts: get_arr(h, "counts")?
                        .iter()
                        .map(|c| c.as_u64("counts"))
                        .collect::<Result<_, _>>()?,
                    sum: get_field(h, "sum")?.as_f64("sum")?,
                },
            );
        }
        for v in get_arr(root, "events")? {
            snap.events.push(event_from_json(v)?);
        }
        Ok(snap)
    }

    /// Plain-text table for terminals (`jxp metrics`).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.metrics.counters.is_empty() {
            let _ = writeln!(out, "{:<52} {:>14}", "counter", "total");
            for (name, v) in &self.metrics.counters {
                let _ = writeln!(out, "{name:<52} {v:>14}");
            }
        }
        if !self.metrics.gauges.is_empty() {
            let _ = writeln!(out, "{:<52} {:>14}", "gauge", "value");
            for (name, v) in &self.metrics.gauges {
                let _ = writeln!(out, "{name:<52} {v:>14.6}");
            }
        }
        if !self.metrics.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<52} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
                "histogram", "count", "sum", "mean", "p50", "p90", "p99"
            );
            for (name, h) in &self.metrics.histograms {
                let count = h.count();
                let mean = if count > 0 { h.sum / count as f64 } else { 0.0 };
                let _ = writeln!(
                    out,
                    "{name:<52} {count:>8} {:>12.6} {mean:>12.6} {:>10.6} {:>10.6} {:>10.6}",
                    h.sum,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99)
                );
            }
        }
        let _ = writeln!(out, "events retained: {}", self.events.len());
        for r in &self.events {
            let _ = writeln!(out, "  [{:>6}] {:?}", r.seq, r.event);
        }
        out
    }
}

fn push_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    render: impl Fn(&V) -> String,
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", escape(name), render(v));
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_to_json(r: &EventRecord) -> String {
    let fields = match &r.event {
        Event::MeetingStarted {
            meeting,
            initiator,
            partner,
        } => format!("\"meeting\": {meeting}, \"initiator\": {initiator}, \"partner\": {partner}"),
        Event::MeetingCompleted {
            meeting,
            initiator,
            partner,
            bytes,
        } => format!(
            "\"meeting\": {meeting}, \"initiator\": {initiator}, \"partner\": {partner}, \
             \"bytes\": {bytes}"
        ),
        Event::MeetingFailed {
            meeting,
            initiator,
            partner,
        } => format!("\"meeting\": {meeting}, \"initiator\": {initiator}, \"partner\": {partner}"),
        Event::RoundExecuted { round, pairs } => {
            format!("\"round\": {round}, \"pairs\": {pairs}")
        }
        Event::PrIterated {
            iteration,
            residual,
        } => format!(
            "\"iteration\": {iteration}, \"residual\": {}",
            fmt_f64(*residual)
        ),
        Event::Churn { peer, joined } => format!("\"peer\": {peer}, \"joined\": {joined}"),
    };
    format!(
        "{{\"seq\": {}, \"type\": \"{}\", {fields}}}",
        r.seq,
        r.event.kind()
    )
}

fn event_from_json(v: &JsonValue) -> Result<EventRecord, String> {
    let obj = v.as_object("event")?;
    let seq = get_field(obj, "seq")?.as_u64("seq")?;
    let kind = get_field(obj, "type")?.as_str("type")?;
    let u = |key: &str| -> Result<u64, String> { get_field(obj, key)?.as_u64(key) };
    let event = match kind {
        "meeting_started" => Event::MeetingStarted {
            meeting: u("meeting")?,
            initiator: u("initiator")?,
            partner: u("partner")?,
        },
        "meeting_completed" => Event::MeetingCompleted {
            meeting: u("meeting")?,
            initiator: u("initiator")?,
            partner: u("partner")?,
            bytes: u("bytes")?,
        },
        "meeting_failed" => Event::MeetingFailed {
            meeting: u("meeting")?,
            initiator: u("initiator")?,
            partner: u("partner")?,
        },
        // Unknown-field-tolerant: files written before the `threads`
        // field was dropped still parse (the field is ignored).
        "round_executed" => Event::RoundExecuted {
            round: u("round")?,
            pairs: u("pairs")?,
        },
        "pr_iterated" => Event::PrIterated {
            iteration: u("iteration")?,
            residual: get_field(obj, "residual")?.as_f64("residual")?,
        },
        "churn" => Event::Churn {
            peer: u("peer")?,
            joined: get_field(obj, "joined")?.as_bool("joined")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(EventRecord { seq, event })
}

// ---- minimal JSON value model + recursive-descent parser ----

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Object(BTreeMap<String, JsonValue>),
    Array(Vec<JsonValue>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, String> {
        match self {
            JsonValue::Object(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        let n = self.as_f64(what)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("{what}: expected unsigned integer, got {n}"));
        }
        Ok(n as u64)
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }
}

fn get_field<'a>(obj: &'a BTreeMap<String, JsonValue>, key: &str) -> Result<&'a JsonValue, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_obj<'a>(
    obj: &'a BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<&'a BTreeMap<String, JsonValue>, String> {
    get_field(obj, key)?.as_object(key)
}

fn get_arr<'a>(obj: &'a BTreeMap<String, JsonValue>, key: &str) -> Result<&'a [JsonValue], String> {
    match get_field(obj, key)? {
        JsonValue::Array(a) => Ok(a),
        other => Err(format!("{key}: expected array, got {other:?}")),
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(input: &'a str) -> Self {
        JsonParser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<JsonValue, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing input at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? != c {
            return Err(format!("expected {:?} at byte {}", c as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                c => return Err(format!("expected ',' or ']', got {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a value at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("malformed number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryHub;

    fn sample() -> TelemetrySnapshot {
        let hub = TelemetryHub::new();
        hub.registry().counter("jxp_meetings_total").add(42);
        hub.registry()
            .counter("jxp_node_bytes_in_total{node=\"0\"}")
            .add(7);
        hub.registry()
            .counter("jxp_node_bytes_in_total{node=\"1\"}")
            .add(9);
        hub.registry().gauge("pagerank_residual").set(1.25e-7);
        let h = hub.registry().histogram("round_width", &[1.0, 2.0, 4.0]);
        h.observe(1.0);
        h.observe(3.0);
        h.observe(9.0);
        hub.events().record(Event::MeetingStarted {
            meeting: 0,
            initiator: 2,
            partner: 5,
        });
        hub.events().record(Event::MeetingCompleted {
            meeting: 0,
            initiator: 2,
            partner: 5,
            bytes: 1234,
        });
        hub.events().record(Event::PrIterated {
            iteration: 3,
            residual: 0.5,
        });
        hub.events()
            .record(Event::RoundExecuted { round: 1, pairs: 4 });
        hub.events().record(Event::MeetingFailed {
            meeting: 1,
            initiator: 5,
            partner: 2,
        });
        hub.events().record(Event::Churn {
            peer: 9,
            joined: false,
        });
        hub.snapshot()
    }

    #[test]
    fn json_roundtrips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let back = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Stability: serializing the parse reproduces the document.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = TelemetrySnapshot::default();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE jxp_meetings_total counter"));
        assert!(text.contains("jxp_meetings_total 42"));
        // Labelled series share one TYPE header for the base name.
        assert_eq!(
            text.matches("# TYPE jxp_node_bytes_in_total counter")
                .count(),
            1
        );
        assert!(text.contains("jxp_node_bytes_in_total{node=\"0\"} 7"));
        assert!(text.contains("jxp_node_bytes_in_total{node=\"1\"} 9"));
        assert!(text.contains("# TYPE pagerank_residual gauge"));
        // Histogram buckets are cumulative and end at +Inf.
        assert!(text.contains("round_width_bucket{le=\"1\"} 1"));
        assert!(text.contains("round_width_bucket{le=\"4\"} 2"));
        assert!(text.contains("round_width_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("round_width_count 3"));
        assert!(text.contains("round_width_sum 13"));
    }

    #[test]
    fn table_renders_all_sections() {
        let table = sample().render_table();
        assert!(table.contains("jxp_meetings_total"));
        assert!(table.contains("pagerank_residual"));
        assert!(table.contains("round_width"));
        assert!(table.contains("events retained: 6"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(TelemetrySnapshot::from_json("").is_err());
        assert!(TelemetrySnapshot::from_json("{").is_err());
        assert!(TelemetrySnapshot::from_json("[]").is_err());
        assert!(TelemetrySnapshot::from_json("{\"counters\": {}} trailing").is_err());
        assert!(TelemetrySnapshot::from_json(
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, \
             \"events\": [{\"seq\": 0, \"type\": \"nope\"}]}"
        )
        .is_err());
    }

    #[test]
    fn escaped_metric_names_survive() {
        let hub = TelemetryHub::new();
        hub.registry().counter("weird{path=\"a\\b\"}").add(1);
        let snap = hub.snapshot();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn non_finite_values_are_clamped() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "1e308");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-1e308");
    }

    #[test]
    fn empty_registry_renders_everywhere() {
        let snap = TelemetryHub::new().snapshot();
        // Prometheus: no metrics means no exposition lines at all.
        assert_eq!(snap.to_prometheus(), "");
        // Table: only the (empty) events footer.
        assert_eq!(snap.render_table(), "events retained: 0\n");
        // JSON: empty but schema-complete, and it round-trips.
        let json = snap.to_json();
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"events\""] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert_eq!(TelemetrySnapshot::from_json(&json).unwrap(), snap);
    }

    #[test]
    fn non_finite_gauges_survive_both_exporters() {
        let hub = TelemetryHub::new();
        hub.registry().gauge("g_nan").set(f64::NAN);
        hub.registry().gauge("g_pinf").set(f64::INFINITY);
        hub.registry().gauge("g_ninf").set(f64::NEG_INFINITY);
        let snap = hub.snapshot();

        // Prometheus exposition clamps instead of emitting NaN/inf,
        // which Prometheus would accept but downstream math would not.
        let prom = snap.to_prometheus();
        assert!(prom.contains("g_nan 0\n"), "{prom}");
        assert!(prom.contains("g_pinf 1e308\n"), "{prom}");
        assert!(prom.contains("g_ninf -1e308\n"), "{prom}");
        assert!(
            !prom.contains("NaN") && !prom.contains(" inf") && !prom.contains(" -inf"),
            "{prom}"
        );

        // JSON stays parseable: the clamped values come back as numbers.
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.metrics.gauges["g_nan"], 0.0);
        assert_eq!(back.metrics.gauges["g_pinf"], 1e308);
        assert_eq!(back.metrics.gauges["g_ninf"], -1e308);
    }

    #[test]
    fn non_finite_histogram_sum_stays_parseable() {
        let hub = TelemetryHub::new();
        let h = hub.registry().histogram("h", &[1.0]);
        h.observe(f64::INFINITY); // lands in +Inf bucket, poisons the sum
        let snap = hub.snapshot();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.metrics.histograms["h"].counts, vec![0, 1]);
        assert_eq!(back.metrics.histograms["h"].sum, 1e308);
    }

    #[test]
    fn from_json_ignores_unknown_fields() {
        // Forward compatibility: a newer writer may add fields; a reader
        // of today's schema takes what it knows and ignores the rest.
        let json = "{\"counters\": {\"c\": 1}, \"gauges\": {}, \
                    \"histograms\": {\"h\": {\"bounds\": [1], \"counts\": [0, 2], \
                    \"sum\": 3, \"p99\": 4.5}}, \"events\": \
                    [{\"seq\": 0, \"type\": \"churn\", \"peer\": 1, \
                    \"joined\": true, \"region\": \"eu\"}], \
                    \"schema_version\": 7}";
        let snap = TelemetrySnapshot::from_json(json).unwrap();
        assert_eq!(snap.metrics.counters["c"], 1);
        assert_eq!(snap.metrics.histograms["h"].counts, vec![0, 2]);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(
            snap.events[0].event,
            Event::Churn {
                peer: 1,
                joined: true
            }
        );
    }

    #[test]
    fn from_json_rejects_missing_required_fields() {
        // Top-level sections are mandatory…
        let no_counters = "{\"gauges\": {}, \"histograms\": {}, \"events\": []}";
        assert!(TelemetrySnapshot::from_json(no_counters)
            .unwrap_err()
            .contains("counters"));
        // …as are histogram members…
        let no_sum = "{\"counters\": {}, \"gauges\": {}, \"histograms\": \
                      {\"h\": {\"bounds\": [], \"counts\": [0]}}, \"events\": []}";
        assert!(TelemetrySnapshot::from_json(no_sum)
            .unwrap_err()
            .contains("sum"));
        // …and event discriminants/payload fields.
        let no_type = "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, \
                       \"events\": [{\"seq\": 0}]}";
        assert!(TelemetrySnapshot::from_json(no_type)
            .unwrap_err()
            .contains("type"));
        let no_peer = "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, \
                       \"events\": [{\"seq\": 0, \"type\": \"churn\", \
                       \"joined\": true}]}";
        assert!(TelemetrySnapshot::from_json(no_peer)
            .unwrap_err()
            .contains("peer"));
    }

    /// The metric family `jxp-segstore` registers (telemetry cannot
    /// depend on that crate, so the names are mirrored here; the
    /// segstore side pins them from its own tests). The exporters must
    /// render the whole family — counters, gauges and the decode
    /// histogram — through every output format.
    fn segstore_sample() -> TelemetrySnapshot {
        let hub = TelemetryHub::new();
        hub.registry().counter("jxp_segstore_hits_total").add(120);
        hub.registry().counter("jxp_segstore_misses_total").add(30);
        hub.registry()
            .counter("jxp_segstore_evictions_total")
            .add(22);
        hub.registry()
            .counter("jxp_segstore_read_bytes_total")
            .add(7_340_032);
        hub.registry()
            .gauge("jxp_segstore_resident_bytes")
            .set(524_288.0);
        hub.registry()
            .gauge("jxp_segstore_resident_segments")
            .set(8.0);
        let h = hub
            .registry()
            .histogram("jxp_segstore_decode_seconds", &[0.001, 0.01, 0.1]);
        h.observe(0.0004);
        h.observe(0.003);
        h.observe(0.25);
        hub.snapshot()
    }

    #[test]
    fn segstore_metrics_render_as_table_and_prometheus() {
        let snap = segstore_sample();
        let table = snap.render_table();
        for name in [
            "jxp_segstore_hits_total",
            "jxp_segstore_misses_total",
            "jxp_segstore_evictions_total",
            "jxp_segstore_read_bytes_total",
            "jxp_segstore_resident_bytes",
            "jxp_segstore_resident_segments",
            "jxp_segstore_decode_seconds",
        ] {
            assert!(table.contains(name), "{name} missing from table");
        }
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE jxp_segstore_hits_total counter"));
        assert!(prom.contains("jxp_segstore_hits_total 120"));
        assert!(prom.contains("# TYPE jxp_segstore_resident_bytes gauge"));
        assert!(prom.contains("jxp_segstore_resident_bytes 524288"));
        assert!(prom.contains("# TYPE jxp_segstore_decode_seconds histogram"));
        assert!(prom.contains("jxp_segstore_decode_seconds_bucket{le=\"0.001\"} 1"));
        assert!(prom.contains("jxp_segstore_decode_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("jxp_segstore_decode_seconds_count 3"));
    }

    #[test]
    fn segstore_metrics_roundtrip_through_json() {
        let snap = segstore_sample();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.metrics.counters["jxp_segstore_hits_total"], 120);
        assert_eq!(back.metrics.gauges["jxp_segstore_resident_segments"], 8.0);
        assert_eq!(
            back.metrics.histograms["jxp_segstore_decode_seconds"].count(),
            3
        );
        // Tolerance: a snapshot written by a newer segstore with extra
        // series (or extra histogram fields) still parses — the reader
        // takes the series it knows about and keeps unknown ones as
        // plain entries.
        let future = "{\"counters\": {\"jxp_segstore_hits_total\": 5, \
                      \"jxp_segstore_prefetches_total\": 2}, \"gauges\": {}, \
                      \"histograms\": {\"jxp_segstore_decode_seconds\": \
                      {\"bounds\": [0.01], \"counts\": [1, 0], \"sum\": 0.002, \
                      \"p50\": 0.002, \"p999\": 0.01}}, \"events\": []}";
        let parsed = TelemetrySnapshot::from_json(future).unwrap();
        assert_eq!(parsed.metrics.counters["jxp_segstore_hits_total"], 5);
        assert_eq!(parsed.metrics.counters["jxp_segstore_prefetches_total"], 2);
        assert_eq!(
            parsed.metrics.histograms["jxp_segstore_decode_seconds"].sum,
            0.002
        );
    }

    #[test]
    fn from_json_rejects_wrongly_typed_known_fields() {
        let bad_counter =
            "{\"counters\": {\"c\": \"one\"}, \"gauges\": {}, \"histograms\": {}, \"events\": []}";
        assert!(TelemetrySnapshot::from_json(bad_counter).is_err());
        let negative_counter =
            "{\"counters\": {\"c\": -1}, \"gauges\": {}, \"histograms\": {}, \"events\": []}";
        assert!(TelemetrySnapshot::from_json(negative_counter).is_err());
    }
}
