//! Bounded structured event tracing.
//!
//! Events carry **logical** identifiers only — meeting numbers, round
//! numbers, iteration counts, peer ids — and never wall-clock time:
//! instrumented code on deterministic paths must emit bit-identical
//! event streams at every thread count, so anything time-like is banned
//! from the record itself (durations belong in histograms, which the
//! determinism tests deliberately ignore).
//!
//! The ring is bounded: once `capacity` events have been recorded, new
//! events overwrite the oldest. Every record carries the sequence
//! number assigned by one global `fetch_add`, so a drained snapshot is
//! totally ordered and gaps from overwritten history are visible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One traced occurrence. All fields are logical quantities.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A meeting was scheduled / its exchange began.
    MeetingStarted {
        /// Global meeting number.
        meeting: u64,
        /// Initiating peer/node id.
        initiator: u64,
        /// Chosen partner id.
        partner: u64,
    },
    /// A meeting's reply was absorbed.
    MeetingCompleted {
        /// Global meeting number.
        meeting: u64,
        /// Initiating peer/node id.
        initiator: u64,
        /// Chosen partner id.
        partner: u64,
        /// Wire/payload bytes both directions.
        bytes: u64,
    },
    /// A meeting was abandoned (retries exhausted or rejected).
    MeetingFailed {
        /// Global meeting number.
        meeting: u64,
        /// Initiating peer/node id.
        initiator: u64,
        /// Chosen partner id.
        partner: u64,
    },
    /// The parallel engine finished one round of disjoint meetings.
    ///
    /// Carries only schedule-determined fields: event streams must be
    /// bit-identical across thread counts, so the worker count lives in
    /// run reports and histograms, never here.
    RoundExecuted {
        /// Round number within the run.
        round: u64,
        /// Disjoint meetings the round carried (matching width).
        pairs: u64,
    },
    /// Power iteration completed one sweep.
    PrIterated {
        /// Iteration number (1-based).
        iteration: u64,
        /// L1 residual after the sweep.
        residual: f64,
    },
    /// A peer joined or left the network.
    Churn {
        /// Peer/node id (post-join index for joins).
        peer: u64,
        /// `true` for a join, `false` for a departure.
        joined: bool,
    },
}

impl Event {
    /// Stable machine-readable tag (used by the JSON exporter).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::MeetingStarted { .. } => "meeting_started",
            Event::MeetingCompleted { .. } => "meeting_completed",
            Event::MeetingFailed { .. } => "meeting_failed",
            Event::RoundExecuted { .. } => "round_executed",
            Event::PrIterated { .. } => "pr_iterated",
            Event::Churn { .. } => "churn",
        }
    }
}

/// An [`Event`] plus its global sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Position in the recording order (0-based, never reused).
    pub seq: u64,
    /// The traced occurrence.
    pub event: Event,
}

/// Fixed-capacity overwrite-oldest event buffer. `record` is one
/// relaxed `fetch_add` plus a per-slot lock that only contends when two
/// writers race a full ring wrap — never a global lock.
pub struct EventRing {
    head: AtomicU64,
    slots: Vec<Mutex<Option<EventRecord>>>,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring needs capacity >= 1");
        EventRing {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the ring's lifetime (not just retained).
    pub fn recorded(&self) -> u64 {
        // jxp-analyze: allow(C2, reason = "monotonic ticket counter; no data is published through it")
        self.head.load(Ordering::Relaxed)
    }

    /// Append `event`, returning its sequence number.
    pub fn record(&self, event: Event) -> u64 {
        // jxp-analyze: allow(C2, reason = "seq allocation only; the record itself is handed off under the slot mutex")
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = crate::sync::lock_unpoisoned(&self.slots[slot]);
        // Only replace older history: under a racing wrap the slot may
        // already hold a younger record.
        if guard.as_ref().is_none_or(|r| r.seq < seq) {
            *guard = Some(EventRecord { seq, event });
        }
        seq
    }

    /// The retained events in sequence order (oldest first).
    pub fn snapshot(&self) -> Vec<EventRecord> {
        let mut records: Vec<EventRecord> = self
            .slots
            .iter()
            .filter_map(|s| crate::sync::lock_unpoisoned(s).clone())
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventRing(capacity={}, recorded={})",
            self.capacity(),
            self.recorded()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn(peer: u64) -> Event {
        Event::Churn { peer, joined: true }
    }

    #[test]
    fn records_in_order_with_seq_numbers() {
        let ring = EventRing::new(8);
        for p in 0..5 {
            assert_eq!(ring.record(churn(p)), p);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.event, churn(i as u64));
        }
    }

    #[test]
    fn wraps_and_keeps_the_newest() {
        let ring = EventRing::new(4);
        for p in 0..10 {
            ring.record(churn(p));
        }
        let snap = ring.snapshot();
        assert_eq!(ring.recorded(), 10);
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_recording_keeps_unique_seqs() {
        let ring = std::sync::Arc::new(EventRing::new(1024));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for p in 0..200 {
                        ring.record(churn(p));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.recorded(), 800);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 800);
        let mut seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 800, "duplicate sequence numbers");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = EventRing::new(0);
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            Event::PrIterated {
                iteration: 1,
                residual: 0.5
            }
            .kind(),
            "pr_iterated"
        );
        assert_eq!(churn(0).kind(), "churn");
    }
}
