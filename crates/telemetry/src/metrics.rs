//! Lock-free metric primitives and the registry that owns them.
//!
//! The hot path of every metric is a relaxed atomic operation on state
//! the writer thread mostly owns: [`Counter`] spreads its increments
//! over cache-line-padded shards keyed by thread, so two nodes serving
//! meetings on different threads never bounce the same cache line, and
//! the shards are only merged when somebody *reads* the counter.
//! [`Gauge`] and [`Histogram`] are single atomics (bit-cast `f64` /
//! per-bucket counts) because their writers are rare or already serial.
//!
//! The [`Registry`] is the cold path: registering or snapshotting takes
//! a mutex, but handles returned by it are `Arc`s that the instrumented
//! code keeps and hits directly — no name lookup per event.

// jxp-analyze: allow-file(C2, reason = "every atomic here is a pure commutative counter/gauge cell read by merging, never a publish flag; no data is released through these orderings")

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per counter. Enough to keep a machine's worth of worker
/// threads off each other's cache lines without bloating snapshots.
const NUM_SHARDS: usize = 8;

/// One cache line per shard so concurrent writers never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a sticky shard index, dealt round-robin.
    static THREAD_SHARD: usize =
        NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// Monotonically increasing counter; `add` is one relaxed atomic add on
/// a per-thread shard, `get` merges the shards.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; NUM_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` (relaxed; never takes a lock).
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merge all shards into the current total.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Last-write-wins `f64` gauge stored as raw bits in one atomic.
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge reading `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Store `v` (relaxed).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds, with an
/// implicit `+Inf` bucket at the end. Observation is one atomic add on
/// the bucket plus a CAS loop folding the value into the running sum.
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Build with the given sorted upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is unsorted or contains non-finite values.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut old = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => old = now,
            }
        }
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Point-in-time copy of counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count(), s.sum)
    }
}

/// Frozen state of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds (the final `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the fixed
    /// buckets, interpolating linearly within the covering bucket —
    /// the classic Prometheus `histogram_quantile` estimator.
    ///
    /// Conventions at the edges: an empty histogram reports `0.0`; mass
    /// in the first bucket interpolates down to `min(bound[0], 0.0)`;
    /// mass in the implicit `+Inf` bucket is clamped to the largest
    /// finite bound (a bucketed histogram cannot resolve beyond it).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let Some(&upper) = self.bounds.get(i) else {
                    // +Inf bucket: clamp to the largest finite bound.
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let lower = if i == 0 {
                    upper.min(0.0)
                } else {
                    self.bounds[i - 1]
                };
                let into = (rank - cum as f64).max(0.0) / c as f64;
                return lower + (upper - lower) * into;
            }
            cum = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named metric directory. Registration and snapshotting lock a mutex;
/// the returned `Arc` handles are what instrumented code holds, so the
/// write path never touches the registry again.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = crate::sync::lock_unpoisoned(&self.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = crate::sync::lock_unpoisoned(&self.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or create the histogram named `name` with the given bounds.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = crate::sync::lock_unpoisoned(&self.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Freeze every registered metric, merging counter shards.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = crate::sync::lock_unpoisoned(&self.metrics);
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = crate::sync::lock_unpoisoned(&self.metrics);
        write!(f, "Registry({} metrics)", metrics.len())
    }
}

/// Frozen state of a whole [`Registry`] (sorted by name for stable
/// exposition and JSON output).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_shards_on_read() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // Upper bounds are inclusive: 1.0 lands in the first bucket.
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count(), 5);
        assert!((s.sum - 106.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_concurrent_observe_keeps_every_sample() {
        let h = Arc::new(Histogram::new(&[10.0]));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 20_000);
        assert!((s.sum - 20_000.0).abs() < 1e-9, "lost adds: {}", s.sum);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(3);
        b.add(4);
        assert_eq!(r.snapshot().counters["x_total"], 7);
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_collision_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b_total").add(1);
        r.gauge("a_gauge").set(2.0);
        r.histogram("c_hist", &[1.0]).observe(0.5);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.gauges.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms["c_hist"].counts, vec![1, 0]);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = Histogram::new(&[1.0, 2.0]).snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        let h = Histogram::new(&[10.0, 20.0]);
        for _ in 0..4 {
            h.observe(15.0); // all mass lands in (10, 20]
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(0.5), 15.0);
        assert_eq!(s.quantile(1.0), 20.0);
    }

    #[test]
    fn quantile_first_bucket_interpolates_down_from_zero() {
        let h = Histogram::new(&[8.0]);
        h.observe(1.0);
        h.observe(2.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 4.0);
    }

    #[test]
    fn quantile_clamps_overflow_mass_to_the_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(99.0); // implicit +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 2.0);
        assert_eq!(s.quantile(0.99), 2.0);
    }

    #[test]
    fn quantile_estimates_bracket_a_mixed_distribution() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 0.5, 1.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0, 7.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        let (p50, p90, p99) = (s.quantile(0.50), s.quantile(0.90), s.quantile(0.99));
        assert!((1.0..=2.0).contains(&p50), "p50 = {p50}");
        assert!((2.0..=8.0).contains(&p90), "p90 = {p90}");
        assert!(p99 >= p90 && p99 <= 8.0, "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
    }
}
