//! Dependency-light Prometheus scrape endpoint.
//!
//! [`MetricsServer`] binds a plain [`std::net::TcpListener`] and answers
//! every HTTP/1.x `GET` with the hub's current
//! [`TelemetrySnapshot::to_prometheus`](crate::TelemetrySnapshot)
//! exposition — enough for a stock Prometheus scraper pointed at
//! `--metrics-listen <addr>`, with no HTTP library in the tree. One
//! accept loop, one connection at a time: scrapes are rare (seconds
//! apart) and the rendered body is small, so serial handling keeps the
//! server a single bounded thread whose handle is joined on shutdown.

use crate::TelemetryHub;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running scrape endpoint. Dropping (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop and joins its
/// thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// start answering scrapes with live snapshots of `hub`.
    pub fn bind(addr: impl ToSocketAddrs, hub: Arc<TelemetryHub>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("jxp-metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if loop_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = serve_one(&mut stream, &hub);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake the blocking `accept` with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Answer one connection: read the request head, reply with the
/// exposition (or 404 off the known paths), close.
fn serve_one(stream: &mut TcpStream, hub: &TelemetryHub) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the blank line ending the request head; cap the head at
    // 8 KiB so a misbehaving client cannot grow the buffer unboundedly.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            String::from("method not allowed\n"),
        )
    } else if path == "/metrics" || path == "/" {
        ("200 OK", hub.snapshot().to_prometheus())
    } else {
        ("404 Not Found", String::from("try /metrics\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_prometheus_exposition_over_http() {
        let hub = TelemetryHub::shared();
        hub.registry().counter("jxp_scrape_test_total").add(7);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
        let response = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("jxp_scrape_test_total 7"), "{response}");
        // Live snapshots: a later scrape sees newer values.
        hub.registry().counter("jxp_scrape_test_total").add(1);
        let response = scrape(server.local_addr(), "GET / HTTP/1.0\r\n\r\n");
        assert!(response.contains("jxp_scrape_test_total 8"), "{response}");
        server.shutdown();
    }

    #[test]
    fn rejects_unknown_paths_and_methods() {
        let server = MetricsServer::bind("127.0.0.1:0", TelemetryHub::shared()).expect("bind");
        let response = scrape(server.local_addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        let response = scrape(server.local_addr(), "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn shutdown_joins_the_server_thread() {
        let server = MetricsServer::bind("127.0.0.1:0", TelemetryHub::shared()).expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a fresh bind to the same port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }
}
