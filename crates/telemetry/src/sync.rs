//! Poison-recovering lock acquisition — the one blessed way to take a
//! `Mutex`/`RwLock` on shared state in this workspace.
//!
//! A poisoned lock means some other thread panicked while holding the
//! guard. For the state these helpers protect (metric registries,
//! event rings, route tables, node state) every mutation is small and
//! self-consistent — there is no multi-step invariant a mid-panic
//! writer could leave half-applied — so propagating the poison as a
//! second panic only turns one thread's failure into a process-wide
//! cascade. The helpers recover the guard and let the caller proceed.
//!
//! `jxp-analyze` rule C1 flags `.lock().unwrap()` /
//! `.read().unwrap()` / `.write().unwrap()` and points here.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquire `m`, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Acquire `l` for reading, recovering the guard on poison.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquire `l` for writing, recovering the guard on poison.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn mutex_recovers_after_holder_panics() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn rwlock_recovers_after_writer_panics() {
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*read_unpoisoned(&l), 1);
        *write_unpoisoned(&l) = 2;
        assert_eq!(*read_unpoisoned(&l), 2);
    }
}
