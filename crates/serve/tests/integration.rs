//! Non-disruption guarantees: serving queries is a read-only side show.
//!
//! The acceptance bar for the serve subsystem is that it changes
//! *nothing* about the algorithm: the same meetings produce the same
//! scores whether or not every frame flows through a [`ServeHandler`]
//! and a load generator hammers the cluster concurrently — at any
//! thread count, and across a crash/resume boundary.

use jxp_core::JxpConfig;
use jxp_minerva::{Corpus, CorpusParams, PeerIndex, ServingIndex};
use jxp_node::{
    run_cluster, run_cluster_with, ClusterConfig, ClusterCtx, ClusterHooks, FrameHandler, JxpNode,
};
use jxp_pagerank::{pagerank, PageRankConfig};
use jxp_serve::{
    contiguous_fragments, LoadGen, LoadGenConfig, ServeConfig, ServeHandler, ServeMetrics,
};
use jxp_webgraph::generators::amazon_2005;
use jxp_webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SEED: u64 = 23;
const PEERS: usize = 3;

struct Fixture {
    n_total: u64,
    truth: Vec<f64>,
    corpus: Corpus,
    fragments: Vec<Subgraph>,
    indexes: Vec<PeerIndex>,
}

fn fixture() -> Fixture {
    let cg = amazon_2005().generate_scaled(0.02);
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let corpus = Corpus::generate(
        &cg,
        &truth,
        CorpusParams::default(),
        &mut StdRng::seed_from_u64(SEED ^ 1),
    );
    let fragments = contiguous_fragments(&cg, PEERS);
    let indexes = fragments
        .iter()
        .map(|f| PeerIndex::build(f, &corpus))
        .collect();
    Fixture {
        n_total: cg.graph.num_nodes() as u64,
        truth,
        corpus,
        fragments,
        indexes,
    }
}

fn base_config(threads: usize) -> ClusterConfig {
    ClusterConfig {
        meetings: 60,
        seed: SEED,
        threads,
        ..ClusterConfig::default()
    }
}

/// Run the fixture's cluster with every node fronted by a
/// [`ServeHandler`] and the load generator driving it concurrently.
fn run_serving(fx: &Fixture, config: &ClusterConfig) -> jxp_node::ClusterReport {
    let serve_config = ServeConfig::default();
    let wrap = |i: usize, node: &Arc<JxpNode>| {
        Arc::new(ServeHandler::new(
            Arc::clone(node),
            ServingIndex::build(&fx.indexes[i]),
            serve_config.clone(),
            ServeMetrics::detached(),
        )) as Arc<dyn FrameHandler>
    };
    let loadgen = LoadGen::new(
        &fx.corpus,
        LoadGenConfig {
            seed: SEED ^ 2,
            num_queries: 5,
            repeats: 2,
            ..LoadGenConfig::default()
        },
    );
    let drive = |ctx: &ClusterCtx<'_>| {
        let report = loadgen.drive(ctx, None);
        assert_eq!(report.failures, 0, "every query must be answered");
    };
    let hooks = ClusterHooks {
        wrap_handler: Some(&wrap),
        concurrent: Some(&drive),
    };
    run_cluster_with(
        fx.fragments.clone(),
        fx.n_total,
        JxpConfig::default(),
        config,
        Some(&fx.truth),
        &hooks,
    )
}

#[test]
fn serving_under_load_does_not_perturb_scores_at_any_thread_count() {
    let fx = fixture();
    let control = run_cluster(
        fx.fragments.clone(),
        fx.n_total,
        JxpConfig::default(),
        &base_config(1),
        Some(&fx.truth),
    );
    for threads in [1usize, 2, 8] {
        let served = run_serving(&fx, &base_config(threads));
        assert_eq!(
            served.score_hash, control.score_hash,
            "{threads} threads: serving changed the outcome"
        );
        assert_eq!(served.footrule, control.footrule, "{threads} threads");
        assert_eq!(
            served.meetings_completed, control.meetings_completed,
            "{threads} threads"
        );
    }
}

#[test]
fn crash_recovery_stays_bit_identical_while_serving() {
    let fx = fixture();
    let base = ClusterConfig {
        checkpoint_every: 4,
        ..base_config(2)
    };
    let control = run_serving(&fx, &base);

    // Die after half the meetings without a final checkpoint — disk is
    // left exactly as a crash would leave it — while queries were being
    // served the whole time.
    let dir = std::env::temp_dir().join(format!("jxp-serve-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let interrupted = ClusterConfig {
        meetings: base.meetings / 2,
        state_dir: Some(dir.clone()),
        checkpoint_on_exit: false,
        ..base.clone()
    };
    let half = run_serving(&fx, &interrupted);
    assert_eq!(half.meetings_completed, (base.meetings / 2) as u64);

    // Resume (still serving): only the back half executes, and the
    // final state matches the uninterrupted serving run bit for bit.
    let resumed_cfg = ClusterConfig {
        state_dir: Some(dir.clone()),
        ..base.clone()
    };
    let resumed = run_serving(&fx, &resumed_cfg);
    assert_eq!(
        resumed.meetings_completed,
        (base.meetings - base.meetings / 2) as u64
    );
    assert_eq!(resumed.score_hash, control.score_hash);
    assert_eq!(resumed.footrule, control.footrule);
    std::fs::remove_dir_all(&dir).ok();
}
