// jxp-analyze: allow-file(D2, reason = "a closed-loop load generator measures wall-clock latency and throughput by definition; every Instant read feeds histograms and the bench report only, never the engine — scores, schedules, and cache contents stay deterministic")

//! Deterministic closed-loop load generator.
//!
//! [`LoadGen`] drives a running cluster (as the
//! [`ClusterHooks::concurrent`](jxp_node::ClusterHooks) driver) with a
//! seeded query mix drawn from the corpus, in two windows:
//!
//! - **Warmup**, while meetings still execute: queries use `k + 1`, so
//!   their cache keys are disjoint from the measurement window's — the
//!   (wall-clock-dependent) number of warmup requests can never
//!   perturb which measurement requests hit the cache.
//! - **Measurement**, after [`ClusterCtx::meetings_done`] flips: scores
//!   are final, so epochs are stable and every reply is a pure function
//!   of the seed. Each worker owns a disjoint set of nodes and issues
//!   that node's requests serially (`repeats` passes over the query
//!   mix), making the per-node hit/miss sequence — first pass misses,
//!   later passes hit — reproducible at any concurrency.
//!
//! Latency and throughput are wall-clock (this file carries the D2
//! pragma above); hit rates, replies, and the precision evaluation
//! downstream are bit-deterministic.

use crate::engine::query_node;
use jxp_minerva::{Corpus, Query};
use jxp_node::{ClusterCtx, RetryPolicy};
use jxp_telemetry::{Histogram, Registry};
use jxp_wire::QueryReplyPayload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Histogram bounds (milliseconds) for query latency.
pub const LATENCY_BOUNDS_MS: [f64; 12] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 500.0,
];

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Seed of the query mix (drawn via [`Corpus::make_queries`]).
    pub seed: u64,
    /// Distinct queries in the mix.
    pub num_queries: usize,
    /// Top-k requested in the measurement window (warmup uses `k + 1`).
    pub k: u32,
    /// Measurement passes over the mix, per node. Passes after the
    /// first are expected cache hits.
    pub repeats: usize,
    /// Closed-loop workers; nodes are partitioned across them.
    pub concurrency: usize,
    /// Retry policy for every request.
    pub retry: RetryPolicy,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            seed: 42,
            num_queries: 10,
            k: 10,
            repeats: 3,
            concurrency: 2,
            retry: RetryPolicy::default(),
        }
    }
}

/// What the load generator measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests issued during warmup (wall-clock dependent).
    pub warmup_requests: u64,
    /// Requests issued during measurement (deterministic:
    /// `nodes × repeats × num_queries`).
    pub measured_requests: u64,
    /// Measurement-window length in seconds.
    pub elapsed_secs: f64,
    /// Measurement throughput (requests / second).
    pub qps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Measurement replies served from a node's cache.
    pub cache_hits: u64,
    /// `cache_hits / measured_requests`.
    pub cache_hit_rate: f64,
    /// Requests that failed after retries (any window).
    pub failures: u64,
    /// Final-pass measurement replies, `replies[node][query]`.
    pub replies: Vec<Vec<QueryReplyPayload>>,
}

/// What one measurement worker brings back from its node set.
struct WorkerTally {
    latencies: Vec<f64>,
    hits: u64,
    failures: u64,
    /// Final-pass replies per owned node, `(node, replies)`.
    finals: Vec<(usize, Vec<QueryReplyPayload>)>,
}

/// The generator: a seeded query mix plus the drive loop.
#[derive(Debug)]
pub struct LoadGen {
    queries: Vec<Query>,
    config: LoadGenConfig,
}

impl LoadGen {
    /// Draw the query mix from `corpus` with the config's seed.
    ///
    /// # Panics
    /// Panics on a degenerate config (no queries, no repeats, no
    /// workers, or `k` = 0).
    pub fn new(corpus: &Corpus, config: LoadGenConfig) -> Self {
        assert!(config.num_queries > 0, "empty query mix");
        assert!(config.repeats > 0, "need at least one measurement pass");
        assert!(config.concurrency > 0, "need at least one worker");
        assert!(config.k > 0, "top-0 is undefined");
        let queries =
            corpus.make_queries(config.num_queries, &mut StdRng::seed_from_u64(config.seed));
        LoadGen { queries, config }
    }

    /// The drawn mix (index order is the measurement issue order).
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Drive `ctx`'s cluster: warm up until the meetings finish, then
    /// run the measurement window. When `registry` is given, latencies
    /// land in a `jxp_loadgen_latency_ms` histogram and request counts
    /// in `jxp_loadgen_*_total` counters.
    pub fn drive(&self, ctx: &ClusterCtx<'_>, registry: Option<&Registry>) -> LoadReport {
        let histogram = match registry {
            Some(reg) => reg.histogram("jxp_loadgen_latency_ms", &LATENCY_BOUNDS_MS),
            None => Arc::new(Histogram::new(&LATENCY_BOUNDS_MS)),
        };
        let num_nodes = ctx.nodes.len();
        let k = self.config.k;

        // Warmup: keep the serving path busy while meetings run. The
        // `k + 1` request size keeps these cache keys off the
        // measurement keys entirely.
        let mut warmup_requests = 0u64;
        let mut failures = 0u64;
        let mut i = 0usize;
        while !ctx.meetings_done.load(Ordering::Acquire) {
            let q = &self.queries[i % self.queries.len()];
            let target = (i % num_nodes) as u64;
            let started = Instant::now();
            match query_node(
                ctx.transport,
                target,
                i as u64,
                &q.terms,
                k + 1,
                &self.config.retry,
            ) {
                Ok(_) => histogram.observe(started.elapsed().as_secs_f64() * 1e3),
                Err(_) => failures += 1,
            }
            warmup_requests += 1;
            i += 1;
        }

        // Measurement: meetings are over, scores and epochs are final.
        // Worker w serves nodes w, w + concurrency, … — one worker per
        // node keeps each node's request order (and therefore its
        // cache hit sequence) serial and reproducible.
        let workers = self.config.concurrency.min(num_nodes);
        let window = Instant::now();
        let mut per_worker: Vec<WorkerTally> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queries = &self.queries;
                    let config = &self.config;
                    let histogram = Arc::clone(&histogram);
                    scope.spawn(move || {
                        let mut latencies = Vec::new();
                        let mut hits = 0u64;
                        let mut failures = 0u64;
                        let mut finals = Vec::new();
                        for node in (w..num_nodes).step_by(workers) {
                            let mut last: Vec<QueryReplyPayload> = Vec::new();
                            for pass in 0..config.repeats {
                                last.clear();
                                for (qi, q) in queries.iter().enumerate() {
                                    let id = ((node * config.repeats + pass) * queries.len() + qi)
                                        as u64;
                                    let started = Instant::now();
                                    match query_node(
                                        ctx.transport,
                                        node as u64,
                                        id,
                                        &q.terms,
                                        k,
                                        &config.retry,
                                    ) {
                                        Ok(reply) => {
                                            let ms = started.elapsed().as_secs_f64() * 1e3;
                                            latencies.push(ms);
                                            histogram.observe(ms);
                                            if reply.cached {
                                                hits += 1;
                                            }
                                            last.push(reply);
                                        }
                                        Err(_) => failures += 1,
                                    }
                                }
                            }
                            finals.push((node, last));
                        }
                        WorkerTally {
                            latencies,
                            hits,
                            failures,
                            finals,
                        }
                    })
                })
                .collect();
            for handle in handles {
                per_worker.push(handle.join().expect("load worker panicked"));
            }
        });
        let elapsed_secs = window.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

        let mut latencies: Vec<f64> = Vec::new();
        let mut cache_hits = 0u64;
        let mut replies: Vec<Vec<QueryReplyPayload>> = vec![Vec::new(); num_nodes];
        for tally in per_worker {
            latencies.extend(tally.latencies);
            cache_hits += tally.hits;
            failures += tally.failures;
            for (node, last) in tally.finals {
                replies[node] = last;
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantile = |q: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
            latencies[idx.min(latencies.len() - 1)]
        };
        if let Some(reg) = registry {
            reg.counter("jxp_loadgen_warmup_requests_total")
                .add(warmup_requests);
            reg.counter("jxp_loadgen_measured_requests_total")
                .add(latencies.len() as u64);
            reg.counter("jxp_loadgen_failures_total").add(failures);
        }
        let measured = latencies.len() as u64;
        LoadReport {
            warmup_requests,
            measured_requests: measured,
            elapsed_secs,
            qps: measured as f64 / elapsed_secs,
            p50_ms: quantile(0.50),
            p99_ms: quantile(0.99),
            cache_hits,
            cache_hit_rate: if measured == 0 {
                0.0
            } else {
                cache_hits as f64 / measured as f64
            },
            failures,
            replies,
        }
    }
}
