//! The serving benchmark: a seeded, reproducible end-to-end run.
//!
//! One call builds a categorized graph + synthetic corpus, runs a JXP
//! cluster whose nodes are fronted by [`ServeHandler`]s, drives it with
//! the closed-loop [`LoadGen`] (warmup during the meetings, measurement
//! after), and evaluates the answers against the corpus ground truth
//! and a centralized reference engine. The result renders to the
//! `BENCH_serve.json` schema consumed by CI (`bench_serve` binary in
//! `jxp-bench` / `jxp-cli loadgen`).
//!
//! Result merging across nodes is the Minerva-style max-merge: a page
//! reported by several peers keeps its best score per component. Fused
//! scores are node-normalized, so max-merging them is the usual
//! CORI-ish heuristic — exactly the situation the paper's §6.3
//! experiment evaluates with precision@10.

use crate::engine::{ServeConfig, ServeHandler, ServeMetrics};
use crate::loadgen::{LoadGen, LoadGenConfig, LoadReport};
use jxp_core::evaluate::centralized_ranking;
use jxp_core::JxpConfig;
use jxp_minerva::eval::precision_at_k;
use jxp_minerva::fusion::{rank_by_fusion, PAPER_JXP_WEIGHT, PAPER_TFIDF_WEIGHT};
use jxp_minerva::query::SearchHit;
use jxp_minerva::{Corpus, CorpusParams, PeerIndex, ServingIndex};
use jxp_node::{
    run_cluster_with, ClusterConfig, ClusterHooks, FrameHandler, JxpNode, TransportKind,
};
use jxp_pagerank::{pagerank, PageRankConfig};
use jxp_telemetry::sync::lock_unpoisoned;
use jxp_telemetry::TelemetryHub;
use jxp_webgraph::generators::{amazon_2005, CategorizedGraph, DatasetPreset};
use jxp_webgraph::{FxHashMap, PageId, Subgraph};
use jxp_wire::QueryReplyPayload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

/// Everything configurable about a serving benchmark run.
#[derive(Debug, Clone)]
pub struct ServeExperimentParams {
    /// Master seed: the graph schedule uses it directly, the corpus
    /// `seed ^ 1`, the query mix `seed ^ 2` (the `jxp-cli search`
    /// convention).
    pub seed: u64,
    /// Cluster size (nodes).
    pub peers: usize,
    /// Meetings to run before the measurement window.
    pub meetings: usize,
    /// Distinct queries in the load mix.
    pub num_queries: usize,
    /// Top-k requested per query.
    pub k: u32,
    /// Measurement passes per node over the mix.
    pub repeats: usize,
    /// Closed-loop load workers.
    pub concurrency: usize,
    /// Cluster meeting worker threads (0 = machine parallelism).
    pub threads: usize,
    /// Dataset scale of the preset, in `(0, 1]`.
    pub scale: f64,
    /// Which of the paper's collections to regenerate.
    pub dataset: DatasetPreset,
    /// Optional Prometheus scrape address for the run.
    pub metrics_listen: Option<String>,
    /// Which wire carries meetings and queries. Queries ride the same
    /// transport as the meeting traffic, so on
    /// [`TransportKind::Reactor`] the load generator's requests
    /// multiplex over the reactor's per-peer connections.
    pub transport: TransportKind,
}

impl Default for ServeExperimentParams {
    fn default() -> Self {
        ServeExperimentParams {
            seed: 42,
            peers: 4,
            meetings: 320,
            num_queries: 10,
            k: 10,
            repeats: 3,
            concurrency: 2,
            threads: 1,
            scale: 0.05,
            dataset: amazon_2005(),
            metrics_listen: None,
            transport: TransportKind::Loopback,
        }
    }
}

/// The benchmark's result row — everything `BENCH_serve.json` carries.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The parameters that produced this report.
    pub params: ServeExperimentParams,
    /// The load generator's measurements.
    pub load: LoadReport,
    /// Human-readable names of the query mix, index-aligned with
    /// `load.replies[node]`.
    pub query_names: Vec<String>,
    /// Mean precision@k of the merged tf·idf-only ranking (baseline).
    pub tfidf_precision: f64,
    /// Mean precision@k of the merged fused ranking.
    pub fused_precision: f64,
    /// Mean precision@k of the centralized reference engine (global
    /// index + true PageRank fusion) — the ceiling.
    pub centralized_precision: f64,
    /// Mean overlap@k between the distributed fused top-k and the
    /// centralized top-k.
    pub centralized_overlap: f64,
    /// `fused_precision >= tfidf_precision` — the paper's §6.3 claim,
    /// asserted by CI.
    pub fusion_wins: bool,
    /// The cluster's final score hash (bit-reproducibility witness).
    pub score_hash: u64,
    /// Footrule distance vs. centralized PageRank after the meetings.
    pub footrule: Option<f64>,
    /// Where the scrape endpoint listened, if enabled.
    pub metrics_addr: Option<SocketAddr>,
}

/// Split `cg` into `n` contiguous fragments of near-equal size.
pub fn contiguous_fragments(cg: &CategorizedGraph, n: usize) -> Vec<Subgraph> {
    let total = cg.graph.num_nodes();
    let per = total.div_ceil(n);
    (0..n)
        .map(|i| {
            let lo = i * per;
            let hi = ((i + 1) * per).min(total);
            Subgraph::from_pages(&cg.graph, (lo..hi).map(|p| PageId(p as u32)))
        })
        .filter(|f| f.num_pages() > 0)
        .collect()
}

/// Max-merge one query's hits across every node's final reply and rank
/// by the chosen component (ties broken by ascending page id).
fn merged_ranking(
    replies: &[Vec<QueryReplyPayload>],
    qi: usize,
    by_fused: bool,
    k: usize,
) -> Vec<PageId> {
    let mut best: FxHashMap<PageId, f64> = FxHashMap::default();
    for node_replies in replies {
        if let Some(r) = node_replies.get(qi) {
            for h in &r.hits {
                let s = if by_fused { h.fused } else { h.tfidf };
                let e = best.entry(h.page).or_insert(f64::NEG_INFINITY);
                if s > *e {
                    *e = s;
                }
            }
        }
    }
    let mut v: Vec<(PageId, f64)> = best.into_iter().collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    v.into_iter().take(k).map(|(p, _)| p).collect()
}

/// Run the full serving benchmark; see the module docs.
///
/// # Panics
/// Panics on degenerate parameters (fewer than two peers, zero
/// queries/repeats/concurrency, scale outside `(0, 1]`).
pub fn run_serve_experiment(params: &ServeExperimentParams) -> ServeBenchReport {
    assert!(params.peers >= 2, "a cluster needs at least two nodes");
    assert!(
        params.scale > 0.0 && params.scale <= 1.0,
        "scale must be in (0, 1]"
    );
    let cg = if params.scale >= 1.0 {
        params.dataset.generate()
    } else {
        params.dataset.generate_scaled(params.scale)
    };
    let n = cg.graph.num_nodes();
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let corpus = Corpus::generate(
        &cg,
        &truth,
        CorpusParams::default(),
        &mut StdRng::seed_from_u64(params.seed ^ 1),
    );
    let fragments = contiguous_fragments(&cg, params.peers);
    let indexes: Vec<PeerIndex> = fragments
        .iter()
        .map(|f| PeerIndex::build(f, &corpus))
        .collect();

    let hub = TelemetryHub::shared();
    let config = ClusterConfig {
        meetings: params.meetings,
        seed: params.seed,
        threads: params.threads,
        transport: params.transport,
        metrics_listen: params.metrics_listen.clone(),
        hub: Some(Arc::clone(&hub)),
        ..ClusterConfig::default()
    };
    let serve_config = ServeConfig {
        // Room for every warmup key (k + 1) and measurement key (k) of
        // the whole mix, so measurement hits are never evicted away.
        cache_capacity: (params.num_queries * 4).max(64),
        ..ServeConfig::default()
    };
    let wrap = |i: usize, node: &Arc<JxpNode>| {
        Arc::new(ServeHandler::new(
            Arc::clone(node),
            ServingIndex::build(&indexes[i]),
            serve_config.clone(),
            ServeMetrics::registered(hub.registry(), i as u64),
        )) as Arc<dyn FrameHandler>
    };
    let loadgen = LoadGen::new(
        &corpus,
        LoadGenConfig {
            seed: params.seed ^ 2,
            num_queries: params.num_queries,
            k: params.k,
            repeats: params.repeats,
            concurrency: params.concurrency,
            ..LoadGenConfig::default()
        },
    );
    let load_slot: Mutex<Option<LoadReport>> = Mutex::new(None);
    let drive = |ctx: &jxp_node::ClusterCtx<'_>| {
        let report = loadgen.drive(ctx, Some(hub.registry()));
        *lock_unpoisoned(&load_slot) = Some(report);
    };
    let hooks = ClusterHooks {
        wrap_handler: Some(&wrap),
        concurrent: Some(&drive),
    };
    let report = run_cluster_with(
        fragments,
        n as u64,
        JxpConfig::default(),
        &config,
        Some(&truth),
        &hooks,
    );
    let load = lock_unpoisoned(&load_slot)
        .take()
        .expect("the concurrent driver ran");

    // Evaluation: distributed rankings from the measured replies vs.
    // the corpus ground truth, plus a centralized reference engine
    // (one global index fused with the true PageRank).
    let k = params.k as usize;
    let truth_ranking = centralized_ranking(&truth);
    let global_index = PeerIndex::build(
        &Subgraph::from_pages(&cg.graph, (0..n as u32).map(PageId)),
        &corpus,
    );
    let queries = loadgen.queries();
    let mut tfidf_sum = 0.0;
    let mut fused_sum = 0.0;
    let mut central_sum = 0.0;
    let mut overlap_sum = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let by_tfidf = merged_ranking(&load.replies, qi, false, k);
        let by_fused = merged_ranking(&load.replies, qi, true, k);
        let central_hits: Vec<SearchHit> = global_index
            .score_query(&q.terms)
            .into_iter()
            .take(k * 4)
            .map(|(page, tfidf)| SearchHit { page, tfidf })
            .collect();
        let central: Vec<PageId> = rank_by_fusion(
            &central_hits,
            &truth_ranking,
            PAPER_TFIDF_WEIGHT,
            PAPER_JXP_WEIGHT,
        )
        .into_iter()
        .take(k)
        .map(|h| h.page)
        .collect();
        tfidf_sum += precision_at_k(&corpus, q, &by_tfidf, k);
        fused_sum += precision_at_k(&corpus, q, &by_fused, k);
        central_sum += precision_at_k(&corpus, q, &central, k);
        overlap_sum += by_fused.iter().filter(|p| central.contains(p)).count() as f64 / k as f64;
    }
    let nq = queries.len() as f64;
    let (tfidf_precision, fused_precision) = (tfidf_sum / nq, fused_sum / nq);
    let (centralized_precision, centralized_overlap) = (central_sum / nq, overlap_sum / nq);

    // Headline numbers also land in the hub, so a final scrape (or the
    // snapshot exporters) carries them alongside the counters.
    let registry = hub.registry();
    registry.gauge("jxp_serve_qps").set(load.qps);
    registry.gauge("jxp_serve_p50_ms").set(load.p50_ms);
    registry.gauge("jxp_serve_p99_ms").set(load.p99_ms);
    registry
        .gauge("jxp_serve_cache_hit_rate")
        .set(load.cache_hit_rate);
    registry
        .gauge("jxp_serve_precision_tfidf")
        .set(tfidf_precision);
    registry
        .gauge("jxp_serve_precision_fused")
        .set(fused_precision);

    ServeBenchReport {
        params: params.clone(),
        query_names: queries.iter().map(|q| q.name.clone()).collect(),
        load,
        tfidf_precision,
        fused_precision,
        centralized_precision,
        centralized_overlap,
        fusion_wins: fused_precision >= tfidf_precision,
        score_hash: report.score_hash,
        footrule: report.footrule,
        metrics_addr: report.metrics_addr,
    }
}

/// Render the report as the `BENCH_serve.json` document (stable,
/// greppable keys; CI asserts on `"fusion_wins": true`).
pub fn render_bench_json(r: &ServeBenchReport) -> String {
    let mut json = String::from("{\n");
    let p = &r.params;
    writeln!(json, "  \"bench\": \"serve\",").unwrap();
    writeln!(json, "  \"dataset\": \"{}\",", p.dataset.name).unwrap();
    writeln!(json, "  \"seed\": {},", p.seed).unwrap();
    writeln!(json, "  \"peers\": {},", p.peers).unwrap();
    writeln!(json, "  \"meetings\": {},", p.meetings).unwrap();
    writeln!(json, "  \"threads\": {},", p.threads).unwrap();
    writeln!(json, "  \"scale\": {},", p.scale).unwrap();
    writeln!(json, "  \"queries\": {},", p.num_queries).unwrap();
    writeln!(json, "  \"k\": {},", p.k).unwrap();
    writeln!(json, "  \"repeats\": {},", p.repeats).unwrap();
    writeln!(json, "  \"concurrency\": {},", p.concurrency).unwrap();
    writeln!(json, "  \"warmup_requests\": {},", r.load.warmup_requests).unwrap();
    writeln!(
        json,
        "  \"measured_requests\": {},",
        r.load.measured_requests
    )
    .unwrap();
    writeln!(json, "  \"failures\": {},", r.load.failures).unwrap();
    writeln!(json, "  \"qps\": {:.2},", r.load.qps).unwrap();
    writeln!(json, "  \"p50_ms\": {:.4},", r.load.p50_ms).unwrap();
    writeln!(json, "  \"p99_ms\": {:.4},", r.load.p99_ms).unwrap();
    writeln!(json, "  \"cache_hits\": {},", r.load.cache_hits).unwrap();
    writeln!(json, "  \"cache_hit_rate\": {:.4},", r.load.cache_hit_rate).unwrap();
    writeln!(json, "  \"tfidf_precision\": {:.4},", r.tfidf_precision).unwrap();
    writeln!(json, "  \"fused_precision\": {:.4},", r.fused_precision).unwrap();
    writeln!(
        json,
        "  \"centralized_precision\": {:.4},",
        r.centralized_precision
    )
    .unwrap();
    writeln!(
        json,
        "  \"centralized_overlap\": {:.4},",
        r.centralized_overlap
    )
    .unwrap();
    writeln!(json, "  \"fusion_wins\": {},", r.fusion_wins).unwrap();
    match r.footrule {
        Some(f) => writeln!(json, "  \"footrule\": {f:.4},").unwrap(),
        None => writeln!(json, "  \"footrule\": null,").unwrap(),
    }
    writeln!(json, "  \"score_hash\": \"{:016x}\"", r.score_hash).unwrap();
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ServeExperimentParams {
        ServeExperimentParams {
            seed: 7,
            peers: 3,
            meetings: 90,
            num_queries: 6,
            k: 10,
            repeats: 2,
            concurrency: 2,
            threads: 1,
            scale: 0.02,
            ..ServeExperimentParams::default()
        }
    }

    #[test]
    fn experiment_measures_and_is_reproducible_where_promised() {
        let a = run_serve_experiment(&small_params());
        // Every measurement request succeeded and the cache behaved as
        // scheduled: pass 1 misses, pass 2 hits, per node and query.
        let expected = (3 * 2 * 6) as u64;
        assert_eq!(a.load.measured_requests, expected);
        assert_eq!(a.load.failures, 0);
        assert_eq!(a.load.cache_hits, (3 * 6) as u64);
        assert!((a.load.cache_hit_rate - 0.5).abs() < 1e-12);
        assert!(a.load.qps > 0.0);
        assert!(a.load.p50_ms >= 0.0 && a.load.p99_ms >= a.load.p50_ms);
        assert!(a.centralized_precision > 0.0);

        // The deterministic half of the report reproduces bit-for-bit;
        // only the wall-clock numbers (qps, quantiles) may move.
        let b = run_serve_experiment(&small_params());
        assert_eq!(a.score_hash, b.score_hash);
        assert_eq!(a.footrule, b.footrule);
        assert_eq!(a.tfidf_precision, b.tfidf_precision);
        assert_eq!(a.fused_precision, b.fused_precision);
        assert_eq!(a.centralized_overlap, b.centralized_overlap);
        assert_eq!(a.load.cache_hits, b.load.cache_hits);
        for (ra, rb) in a.load.replies.iter().zip(&b.load.replies) {
            assert_eq!(ra, rb, "measurement replies must be deterministic");
        }
    }

    #[test]
    fn reactor_transport_serves_the_same_answers_as_loopback() {
        let control = run_serve_experiment(&small_params());
        let over_reactor = run_serve_experiment(&ServeExperimentParams {
            transport: TransportKind::Reactor,
            ..small_params()
        });
        // Queries multiplex over the reactor's per-peer connections,
        // yet every deterministic output matches the loopback run.
        assert_eq!(over_reactor.score_hash, control.score_hash);
        assert_eq!(over_reactor.footrule, control.footrule);
        assert_eq!(over_reactor.fused_precision, control.fused_precision);
        assert_eq!(over_reactor.load.failures, 0);
        assert_eq!(over_reactor.load.cache_hits, control.load.cache_hits);
        for (ra, rb) in over_reactor.load.replies.iter().zip(&control.load.replies) {
            assert_eq!(ra, rb, "replies must not depend on the transport");
        }
    }

    #[test]
    fn bench_json_has_the_ci_contract_fields() {
        let report = run_serve_experiment(&small_params());
        let json = render_bench_json(&report);
        for key in [
            "\"bench\": \"serve\"",
            "\"qps\":",
            "\"p50_ms\":",
            "\"p99_ms\":",
            "\"cache_hit_rate\":",
            "\"tfidf_precision\":",
            "\"fused_precision\":",
            "\"fusion_wins\":",
            "\"score_hash\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
