//! The per-node query front end.
//!
//! [`ServeHandler`] wraps a [`JxpNode`]'s frame handler and answers
//! [`Frame::QueryRequest`] itself: tf·idf candidates come from a
//! precomputed [`ServingIndex`] (Fagin's TA over score-sorted posting
//! lists), authority comes from the node's **live** JXP scores
//! (snapshotted briefly under the node lock), and the two are combined
//! with the paper's §6.3 rank fusion. Every other frame is delegated to
//! the node untouched, so meetings, stats, and repair behave exactly as
//! without serving — queries are read-only and never journal, which is
//! what keeps the journal-before-reply recovery invariant intact.
//!
//! Results are cached per `(terms, k)` in a bounded [`EpochLru`] keyed
//! to the node's score epoch: the instant the node absorbs a meeting
//! the epoch advances and every cached ranking is stale by definition.

use crate::cache::{EpochLru, Lookup};
use jxp_minerva::fusion::{rank_by_fusion, PAPER_JXP_WEIGHT, PAPER_TFIDF_WEIGHT};
use jxp_minerva::{ServingIndex, TermId};
use jxp_node::{
    request_with_retry, FrameHandler, JxpNode, NodeId, RetryPolicy, Transport, TransportError,
};
use jxp_pagerank::Ranking;
use jxp_telemetry::sync::lock_unpoisoned;
use jxp_telemetry::{Counter, Registry};
use jxp_webgraph::{FxHashMap, PageId};
use jxp_wire::{ErrorCode, Frame, QueryHit, QueryPayload, QueryReplyPayload};
use std::sync::{Arc, Mutex};

/// Tunables of one node's query front end.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Fusion weight of the tf·idf component.
    pub w_tfidf: f64,
    /// Fusion weight of the JXP authority component.
    pub w_jxp: f64,
    /// TA retrieves `pool_factor · k` tf·idf candidates before fusion,
    /// so authority can promote pages from beyond the tf·idf top-k.
    pub pool_factor: usize,
    /// Result cache bound (entries).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            w_tfidf: PAPER_TFIDF_WEIGHT,
            w_jxp: PAPER_JXP_WEIGHT,
            pool_factor: 4,
            cache_capacity: 256,
        }
    }
}

/// Serving counters, one labelled series per node (mirrors
/// `NodeMetrics`): `jxp_serve_queries_total{node="i"}` and friends.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Queries answered (any outcome except rejected ones).
    pub queries: Arc<Counter>,
    /// Answered from the cache at the current epoch.
    pub cache_hits: Arc<Counter>,
    /// Computed fresh (cold or stale).
    pub cache_misses: Arc<Counter>,
    /// The subset of misses caused by an epoch advance.
    pub cache_stale: Arc<Counter>,
}

impl ServeMetrics {
    /// Standalone counters, registered nowhere.
    pub fn detached() -> Self {
        ServeMetrics {
            queries: Arc::new(Counter::new()),
            cache_hits: Arc::new(Counter::new()),
            cache_misses: Arc::new(Counter::new()),
            cache_stale: Arc::new(Counter::new()),
        }
    }

    /// Counters registered in `registry` as labelled series.
    pub fn registered(registry: &Registry, node: NodeId) -> Self {
        let series =
            |field: &str| registry.counter(&format!("jxp_serve_{field}_total{{node=\"{node}\"}}"));
        ServeMetrics {
            queries: series("queries"),
            cache_hits: series("cache_hits"),
            cache_misses: series("cache_misses"),
            cache_stale: series("cache_stale"),
        }
    }
}

type CacheKey = (Vec<u32>, u32);

/// A node's query front end; see the module docs.
pub struct ServeHandler {
    node: Arc<JxpNode>,
    index: ServingIndex,
    config: ServeConfig,
    cache: Mutex<EpochLru<CacheKey, Vec<QueryHit>>>,
    metrics: ServeMetrics,
}

impl ServeHandler {
    /// Front a node with `index` (built from the same fragment the
    /// node's peer holds).
    ///
    /// # Panics
    /// Panics if the config's weights are negative/all-zero or
    /// `pool_factor`/`cache_capacity` is zero.
    pub fn new(
        node: Arc<JxpNode>,
        index: ServingIndex,
        config: ServeConfig,
        metrics: ServeMetrics,
    ) -> Self {
        assert!(
            config.w_tfidf >= 0.0 && config.w_jxp >= 0.0 && config.w_tfidf + config.w_jxp > 0.0,
            "degenerate fusion weights"
        );
        assert!(config.pool_factor > 0, "pool_factor must be positive");
        let cache = Mutex::new(EpochLru::new(config.cache_capacity));
        ServeHandler {
            node,
            index,
            config,
            cache,
            metrics,
        }
    }

    /// The wrapped node.
    pub fn node(&self) -> &Arc<JxpNode> {
        &self.node
    }

    /// The serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    fn answer(&self, q: QueryPayload) -> Frame {
        if q.k == 0 {
            return Frame::Error {
                code: ErrorCode::BadRequest,
                detail: "top-0 is undefined".to_string(),
            };
        }
        self.metrics.queries.inc();
        // The epoch is read before the cache probe *and* stamped on the
        // computed entry: if a meeting absorbs mid-computation the entry
        // is tagged with the older epoch and the next lookup recomputes
        // — stale results can be served at most within one epoch read,
        // never across one.
        let epoch = self.node.score_epoch();
        let key: CacheKey = (q.terms.clone(), q.k);
        match lock_unpoisoned(&self.cache).get(&key, epoch) {
            Lookup::Hit(hits) => {
                self.metrics.cache_hits.inc();
                return self.reply(&q, epoch, true, hits);
            }
            Lookup::MissCold => self.metrics.cache_misses.inc(),
            Lookup::MissStale => {
                self.metrics.cache_misses.inc();
                self.metrics.cache_stale.inc();
            }
        }
        let hits = self.compute(&q.terms, q.k as usize);
        lock_unpoisoned(&self.cache).insert(key, hits.clone(), epoch);
        self.reply(&q, epoch, false, hits)
    }

    fn reply(&self, q: &QueryPayload, epoch: u64, cached: bool, hits: Vec<QueryHit>) -> Frame {
        Frame::QueryReply(QueryReplyPayload {
            node_id: self.node.id(),
            query_id: q.query_id,
            epoch,
            cached,
            hits,
        })
    }

    fn compute(&self, terms: &[u32], k: usize) -> Vec<QueryHit> {
        let terms: Vec<TermId> = terms.iter().map(|&t| TermId(t)).collect();
        let ta = self.index.topk(&terms, k * self.config.pool_factor);
        if ta.hits.is_empty() {
            return Vec::new();
        }
        // Authority snapshot: per-candidate score lookups, briefly under
        // the node lock (the pool is tens of pages, not the graph).
        let authority: Vec<(PageId, f64)> = self.node.with_peer(|peer| {
            ta.hits
                .iter()
                .filter_map(|h| peer.score(h.page).map(|s| (h.page, s)))
                .collect()
        });
        let ranking = Ranking::from_scores(authority);
        let tfidf_of: FxHashMap<PageId, f64> = ta.hits.iter().map(|h| (h.page, h.tfidf)).collect();
        rank_by_fusion(&ta.hits, &ranking, self.config.w_tfidf, self.config.w_jxp)
            .into_iter()
            .take(k)
            .map(|f| QueryHit {
                page: f.page,
                tfidf: tfidf_of[&f.page],
                fused: f.score,
            })
            .collect()
    }
}

impl FrameHandler for ServeHandler {
    fn handle(&self, frame: Frame) -> Option<Frame> {
        match frame {
            Frame::QueryRequest(q) => Some(self.answer(q)),
            other => self.node.handle(other),
        }
    }
}

/// Send one top-`k` query to `target` and return its reply payload —
/// the client half of the protocol, over any [`Transport`].
pub fn query_node(
    transport: &dyn Transport,
    target: NodeId,
    query_id: u64,
    terms: &[TermId],
    k: u32,
    policy: &RetryPolicy,
) -> Result<QueryReplyPayload, TransportError> {
    let frame = Frame::QueryRequest(QueryPayload {
        query_id,
        k,
        terms: terms.iter().map(|t| t.0).collect(),
    });
    let outcome = request_with_retry(transport, target, &frame, policy)?;
    match outcome.exchange.reply {
        Frame::QueryReply(payload) => Ok(payload),
        Frame::Error { detail, .. } => Err(TransportError::Rejected(detail)),
        _ => Err(TransportError::Wire(jxp_wire::WireError::Malformed(
            "unexpected reply to QueryRequest",
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_core::{JxpConfig, JxpPeer};
    use jxp_minerva::{Corpus, CorpusParams, PeerIndex};
    use jxp_node::{LoopbackNetwork, RetryPolicy};
    use jxp_pagerank::{pagerank, PageRankConfig};
    use jxp_synopses::mips::MipsPermutations;
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        corpus: Corpus,
        net: LoopbackNetwork,
        nodes: Vec<Arc<JxpNode>>,
        handlers: Vec<Arc<ServeHandler>>,
    }

    fn fixture() -> Fixture {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 60,
                intra_out_per_node: 3,
                cross_fraction: 0.1,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &truth,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(2),
        );
        let n = cg.graph.num_nodes();
        let perms = MipsPermutations::generate(16, 9);
        let net = LoopbackNetwork::new();
        let mut nodes = Vec::new();
        let mut handlers = Vec::new();
        for (i, lo) in [(0u64, 0u32), (1, 60)] {
            let frag = Subgraph::from_pages(&cg.graph, (lo..lo + 60).map(PageId));
            let index = ServingIndex::build(&PeerIndex::build(&frag, &corpus));
            let node = Arc::new(JxpNode::new(
                i,
                JxpPeer::new(frag, n as u64, JxpConfig::default()),
                &perms,
            ));
            let handler = Arc::new(ServeHandler::new(
                Arc::clone(&node),
                index,
                ServeConfig::default(),
                ServeMetrics::detached(),
            ));
            net.register(i, Arc::clone(&handler) as Arc<dyn FrameHandler>);
            nodes.push(node);
            handlers.push(handler);
        }
        Fixture {
            corpus,
            net,
            nodes,
            handlers,
        }
    }

    #[test]
    fn queries_are_answered_cached_and_epoch_invalidated() {
        let f = fixture();
        let policy = RetryPolicy::default();
        let q = &f.corpus.make_queries(2, &mut StdRng::seed_from_u64(3))[0];

        let first = query_node(&f.net, 0, 1, &q.terms, 10, &policy).expect("first query");
        assert_eq!(first.node_id, 0);
        assert_eq!(first.query_id, 1);
        assert!(!first.cached, "cold cache");
        assert!(!first.hits.is_empty());
        assert!(
            first.hits.windows(2).all(|w| w[0].fused >= w[1].fused),
            "hits must be fused-score sorted"
        );

        let again = query_node(&f.net, 0, 2, &q.terms, 10, &policy).expect("second query");
        assert!(again.cached, "same (terms, k) at same epoch hits the cache");
        assert_eq!(again.hits, first.hits);
        assert_eq!(again.epoch, first.epoch);

        // A meeting advances both epochs; the cached ranking is stale.
        f.nodes[0].meet(1, &f.net, &policy).expect("meeting");
        let after = query_node(&f.net, 0, 3, &q.terms, 10, &policy).expect("post-meeting query");
        assert!(!after.cached, "epoch advance must invalidate");
        assert!(after.epoch > first.epoch);
        let m = f.handlers[0].metrics();
        assert_eq!(m.queries.get(), 3);
        assert_eq!(m.cache_hits.get(), 1);
        assert_eq!(m.cache_misses.get(), 2);
        assert_eq!(m.cache_stale.get(), 1);
    }

    #[test]
    fn meetings_flow_through_the_serving_handler() {
        let f = fixture();
        let policy = RetryPolicy::default();
        // The wrapped handler delegates non-query frames to the node:
        // a meeting via the network (whose registered handler is the
        // ServeHandler) completes normally and bumps epochs.
        let before = (f.nodes[0].score_epoch(), f.nodes[1].score_epoch());
        f.nodes[0].meet(1, &f.net, &policy).expect("meeting");
        assert_eq!(f.nodes[0].score_epoch(), before.0 + 1);
        assert_eq!(f.nodes[1].score_epoch(), before.1 + 1);
        assert_eq!(f.nodes[0].stats().meetings_completed, 1);
        assert_eq!(f.nodes[1].stats().meetings_served, 1);
    }

    #[test]
    fn k_zero_is_rejected_and_unknown_terms_yield_empty() {
        let f = fixture();
        let policy = RetryPolicy::default();
        let err = query_node(&f.net, 0, 1, &[TermId(5)], 0, &policy);
        assert!(matches!(err, Err(TransportError::Rejected(_))));
        // A term no document contains: an empty, non-cached... still
        // cacheable reply.
        let empty = query_node(&f.net, 0, 2, &[TermId(999_999)], 5, &policy).expect("query");
        assert!(empty.hits.is_empty());
        let again = query_node(&f.net, 0, 3, &[TermId(999_999)], 5, &policy).expect("query");
        assert!(again.cached, "empty results are cached too");
    }

    #[test]
    fn fused_ranking_uses_live_authority() {
        let f = fixture();
        let policy = RetryPolicy::default();
        let q = &f.corpus.make_queries(2, &mut StdRng::seed_from_u64(4))[0];
        let reply = query_node(&f.net, 0, 1, &q.terms, 10, &policy).expect("query");
        // Every returned page carries both scores, and the fused score
        // reflects the node's current authority snapshot (weights sum
        // to 1, components normalized to [0,1]).
        for hit in &reply.hits {
            assert!(hit.tfidf > 0.0);
            assert!(hit.fused > 0.0 && hit.fused <= 1.0 + 1e-12);
        }
    }
}
