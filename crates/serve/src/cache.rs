//! Bounded, epoch-validated LRU result cache.
//!
//! Every cached entry is stamped with the node's **score epoch** at
//! compute time. A query served after the node absorbed another meeting
//! (epoch advanced) must not see the stale fused ranking, so a lookup
//! passes the node's *current* epoch and an entry from an older epoch is
//! treated as a miss and dropped on the spot — invalidation is lazy but
//! exact (DESIGN.md §13).
//!
//! Eviction is deterministic: recency is a monotonically increasing tick
//! (unique per touch), and the entry with the smallest tick — the least
//! recently used, with no ties possible — is evicted when the cache is
//! full. Given the same request sequence, two runs evict identically.

use jxp_webgraph::FxHashMap;
use std::hash::Hash;

/// Outcome of a cache lookup, distinguishing the two miss causes so the
/// serving metrics can count invalidations separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup<V> {
    /// Present and computed at the current epoch.
    Hit(V),
    /// Never cached (or evicted).
    MissCold,
    /// Cached at an older epoch; the entry has been dropped.
    MissStale,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    epoch: u64,
    tick: u64,
}

/// A bounded LRU map whose entries are only valid at the epoch they
/// were inserted under.
#[derive(Debug)]
pub struct EpochLru<K, V> {
    capacity: usize,
    tick: u64,
    map: FxHashMap<K, Entry<V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> EpochLru<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache cannot hold anything");
        EpochLru {
            capacity,
            tick: 0,
            map: FxHashMap::default(),
        }
    }

    /// Look up `key` as of `epoch`. A hit refreshes the entry's recency;
    /// an entry stamped with a different epoch is removed and reported
    /// as [`Lookup::MissStale`].
    pub fn get(&mut self, key: &K, epoch: u64) -> Lookup<V> {
        match self.map.get_mut(key) {
            None => Lookup::MissCold,
            Some(entry) if entry.epoch == epoch => {
                self.tick += 1;
                entry.tick = self.tick;
                Lookup::Hit(entry.value.clone())
            }
            Some(_) => {
                self.map.remove(key);
                Lookup::MissStale
            }
        }
    }

    /// Insert `value` computed at `epoch`, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V, epoch: u64) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Ticks are unique, so the minimum is unambiguous and the
            // eviction order is a pure function of the request sequence.
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty map at capacity");
            self.map.remove(&lru);
        }
        self.map.insert(
            key,
            Entry {
                value,
                epoch,
                tick: self.tick,
            },
        );
    }

    /// Live entries (stale ones linger until looked up or evicted).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_only_at_matching_epoch() {
        let mut c: EpochLru<u32, &'static str> = EpochLru::new(4);
        assert_eq!(c.get(&1, 0), Lookup::MissCold);
        c.insert(1, "a", 0);
        assert_eq!(c.get(&1, 0), Lookup::Hit("a"));
        // The epoch advanced: the entry is stale, reported as such, and
        // gone afterwards (the next lookup is a cold miss).
        assert_eq!(c.get(&1, 1), Lookup::MissStale);
        assert_eq!(c.get(&1, 1), Lookup::MissCold);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn reinsert_at_new_epoch_replaces() {
        let mut c: EpochLru<u32, u64> = EpochLru::new(4);
        c.insert(7, 10, 0);
        c.insert(7, 20, 3);
        assert_eq!(c.get(&7, 3), Lookup::Hit(20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let run = || {
            let mut c: EpochLru<u32, u32> = EpochLru::new(2);
            c.insert(1, 1, 0);
            c.insert(2, 2, 0);
            let _ = c.get(&1, 0); // 2 is now least recent
            c.insert(3, 3, 0); // evicts 2
            let mut seen = Vec::new();
            for k in [1u32, 2, 3] {
                if let Lookup::Hit(v) = c.get(&k, 0) {
                    seen.push(v);
                }
            }
            seen
        };
        assert_eq!(run(), vec![1, 3]);
        assert_eq!(run(), run(), "eviction must be reproducible");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c: EpochLru<u32, u32> = EpochLru::new(3);
        for k in 0..50 {
            c.insert(k, k, 0);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.capacity(), 3);
        // The newest three survive.
        for k in 47..50 {
            assert_eq!(c.get(&k, 0), Lookup::Hit(k));
        }
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _: EpochLru<u32, u32> = EpochLru::new(0);
    }
}
