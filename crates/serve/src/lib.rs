//! jxp-serve: the per-node query front end of the JXP network.
//!
//! JXP nodes converge on PageRank authority scores through pairwise
//! meetings; this crate makes those scores *searchable while they
//! converge*. A [`ServeHandler`] fronts a [`jxp_node::JxpNode`]: it
//! answers `QueryRequest` wire frames with top-k results whose ranking
//! fuses the peer's tf·idf posting lists ([`jxp_minerva::ServingIndex`])
//! with the node's **live** JXP authority scores
//! ([`jxp_minerva::fusion::rank_by_fusion`]), and forwards every other
//! frame — meetings included — to the node untouched. Results are
//! cached in a bounded LRU ([`EpochLru`]) validated against the node's
//! score epoch, so a cache entry dies the moment the node absorbs
//! another meeting.
//!
//! [`LoadGen`] is the matching measurement harness: a deterministic
//! closed-loop load generator with warmup and measurement windows,
//! reporting qps, latency quantiles, and cache hit rates through
//! `jxp-telemetry`. [`run_serve_experiment`] ties it all together into
//! the seeded benchmark behind `BENCH_serve.json` (DESIGN.md §13).

#![deny(missing_docs)]

pub mod cache;
pub mod engine;
pub mod experiment;
pub mod loadgen;

pub use cache::{EpochLru, Lookup};
pub use engine::{query_node, ServeConfig, ServeHandler, ServeMetrics};
pub use experiment::{
    contiguous_fragments, render_bench_json, run_serve_experiment, ServeBenchReport,
    ServeExperimentParams,
};
pub use loadgen::{LoadGen, LoadGenConfig, LoadReport, LATENCY_BOUNDS_MS};
