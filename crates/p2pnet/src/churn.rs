//! Peer churn: a stochastic join/leave driver over a [`Network`].
//!
//! §5.3: "peers join and leave the P2P network at high rate (the
//! so-called 'churn' phenomenon)… JXP has been designed to handle high
//! dynamics, and the algorithms themselves can easily cope with changes in
//! the Web graph, repeated crawls, or peer churn." There is no convergence
//! proof under churn (the paper defers that to future work) — this module
//! exists to *exercise* the robustness claim: the churn example and the
//! integration tests drive a network through joins and leaves and verify
//! that scores stay valid and keep approximating centralized PageRank.

use crate::sim::Network;
use jxp_core::snapshot;
use jxp_store::StateStore;
use jxp_webgraph::Subgraph;
use rand::Rng;
use std::collections::VecDeque;

/// A stochastic churn model applied between meetings.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Probability that a churn tick makes one peer leave.
    pub leave_prob: f64,
    /// Probability that a churn tick makes one peer join (a fragment is
    /// drawn from the replacement pool).
    pub join_prob: f64,
    /// Minimum network size: leaves are suppressed below this.
    pub min_peers: usize,
    /// Maximum network size: joins are suppressed above this.
    pub max_peers: usize,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            leave_prob: 0.02,
            join_prob: 0.02,
            min_peers: 3,
            max_peers: 256,
        }
    }
}

/// What a churn tick did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Nothing happened this tick.
    None,
    /// A peer joined (new index).
    Joined(usize),
    /// A peer left (former index).
    Left(usize),
    /// A previously departed peer rejoined with its persisted state
    /// (new index). Only [`DurableChurn`] emits this.
    Rejoined(usize),
}

impl ChurnModel {
    /// Apply one churn tick to `net`, drawing replacement fragments from
    /// `pool` (round-robin by an internal cursor the caller supplies).
    pub fn tick(
        &self,
        net: &mut Network,
        pool: &[Subgraph],
        cursor: &mut usize,
        rng: &mut impl Rng,
    ) -> ChurnEvent {
        if net.num_peers() > self.min_peers && rng.gen_bool(self.leave_prob) {
            let victim = rng.gen_range(0..net.num_peers());
            net.remove_peer(victim);
            return ChurnEvent::Left(victim);
        }
        if net.num_peers() < self.max_peers && !pool.is_empty() && rng.gen_bool(self.join_prob) {
            let fragment = pool[*cursor % pool.len()].clone();
            *cursor += 1;
            net.add_peer(fragment);
            return ChurnEvent::Joined(net.num_peers() - 1);
        }
        ChurnEvent::None
    }
}

/// Churn with durability (the `jxp-store` integration): a departing peer
/// checkpoints its full state into a [`StateStore`] before it goes, and
/// a later join *resurrects* the oldest departed peer from the store —
/// with all its accumulated world knowledge and scores — instead of
/// admitting an amnesiac replacement from the fragment pool.
///
/// This models peers with local disks: in JXP a peer's world-node
/// quality is earned over many meetings, so a network whose peers
/// resume beats one whose peers restart. Everything is deterministic
/// given the rng: the decision draws are exactly [`ChurnModel::tick`]'s,
/// and the resurrection order is FIFO over departure order.
pub struct DurableChurn<S: StateStore> {
    model: ChurnModel,
    store: S,
    departed: VecDeque<String>,
    next_id: u64,
}

impl<S: StateStore> DurableChurn<S> {
    /// Durable churn following `model`'s probabilities, persisting into
    /// `store`.
    pub fn new(model: ChurnModel, store: S) -> Self {
        DurableChurn {
            model,
            store,
            departed: VecDeque::new(),
            next_id: 0,
        }
    }

    /// Keys of departed peers currently held in the store, oldest first.
    pub fn departed(&self) -> impl Iterator<Item = &str> {
        self.departed.iter().map(String::as_str)
    }

    /// The underlying store (for inspection in tests/tools).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Apply one durable churn tick: like [`ChurnModel::tick`], but a
    /// leave persists the victim and a join prefers resurrection. Falls
    /// back to a fresh `pool` fragment when the store has nobody to
    /// revive (or the revival fails to load).
    pub fn tick(
        &mut self,
        net: &mut Network,
        pool: &[Subgraph],
        cursor: &mut usize,
        rng: &mut impl Rng,
    ) -> ChurnEvent {
        if net.num_peers() > self.model.min_peers && rng.gen_bool(self.model.leave_prob) {
            let victim = rng.gen_range(0..net.num_peers());
            let peer = net.remove_peer(victim);
            let key = format!("peer-{}", self.next_id);
            self.next_id += 1;
            let snap = snapshot::save(&peer);
            // A failed checkpoint degrades to plain (stateless) churn:
            // the peer is gone either way, it just can't come back.
            if self.store.checkpoint(&key, 0, &snap).is_ok() {
                self.departed.push_back(key);
            }
            return ChurnEvent::Left(victim);
        }
        let can_join = !pool.is_empty() || !self.departed.is_empty();
        if net.num_peers() < self.model.max_peers && can_join && rng.gen_bool(self.model.join_prob)
        {
            if let Some(index) = self.revive(net) {
                return ChurnEvent::Rejoined(index);
            }
            if pool.is_empty() {
                return ChurnEvent::None;
            }
            let fragment = pool[*cursor % pool.len()].clone();
            *cursor += 1;
            net.add_peer(fragment);
            return ChurnEvent::Joined(net.num_peers() - 1);
        }
        ChurnEvent::None
    }

    /// Resurrect the oldest departed peer from the store into `net`,
    /// returning its new index — `None` when nobody is waiting (or every
    /// waiting checkpoint failed to load).
    pub fn revive(&mut self, net: &mut Network) -> Option<usize> {
        while let Some(key) = self.departed.pop_front() {
            if let Ok(Some(recovered)) = self.store.load(&key) {
                net.add_existing_peer(recovered.peer);
                return Some(net.num_peers() - 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{assign_by_crawlers, CrawlerParams};
    use crate::sim::NetworkConfig;
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (CategorizedGraph, Vec<Subgraph>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 80,
                intra_out_per_node: 3,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let frags = assign_by_crawlers(
            &cg,
            &CrawlerParams {
                peers_per_category: 3,
                seeds_per_peer: 3,
                max_depth: 3,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(2),
        );
        (cg, frags)
    }

    #[test]
    fn network_survives_heavy_churn() {
        let (cg, frags) = world();
        let pool = frags.clone();
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            5,
        );
        let model = ChurnModel {
            leave_prob: 0.3,
            join_prob: 0.3,
            min_peers: 3,
            max_peers: 10,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut cursor = 0;
        let mut joins = 0;
        let mut leaves = 0;
        for _ in 0..100 {
            net.step();
            match model.tick(&mut net, &pool, &mut cursor, &mut rng) {
                ChurnEvent::Joined(_) | ChurnEvent::Rejoined(_) => joins += 1,
                ChurnEvent::Left(_) => leaves += 1,
                ChurnEvent::None => {}
            }
        }
        assert!(joins > 0, "no joins in 100 high-churn ticks");
        assert!(leaves > 0, "no leaves in 100 high-churn ticks");
        assert!(net.num_peers() >= 3 && net.num_peers() <= 10);
        // All surviving peers still hold a valid probability mass.
        for p in net.peers() {
            jxp_core::invariants::check_mass_conservation(p).unwrap();
        }
    }

    #[test]
    fn bounds_are_respected() {
        let (cg, frags) = world();
        let pool = frags.clone();
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            5,
        );
        let model = ChurnModel {
            leave_prob: 1.0,
            join_prob: 0.0,
            min_peers: 4,
            max_peers: 100,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut cursor = 0;
        for _ in 0..50 {
            model.tick(&mut net, &pool, &mut cursor, &mut rng);
        }
        assert_eq!(net.num_peers(), 4);
    }
}
