//! Peer churn: a stochastic join/leave driver over a [`Network`].
//!
//! §5.3: "peers join and leave the P2P network at high rate (the
//! so-called 'churn' phenomenon)… JXP has been designed to handle high
//! dynamics, and the algorithms themselves can easily cope with changes in
//! the Web graph, repeated crawls, or peer churn." There is no convergence
//! proof under churn (the paper defers that to future work) — this module
//! exists to *exercise* the robustness claim: the churn example and the
//! integration tests drive a network through joins and leaves and verify
//! that scores stay valid and keep approximating centralized PageRank.

use crate::sim::Network;
use jxp_webgraph::Subgraph;
use rand::Rng;

/// A stochastic churn model applied between meetings.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Probability that a churn tick makes one peer leave.
    pub leave_prob: f64,
    /// Probability that a churn tick makes one peer join (a fragment is
    /// drawn from the replacement pool).
    pub join_prob: f64,
    /// Minimum network size: leaves are suppressed below this.
    pub min_peers: usize,
    /// Maximum network size: joins are suppressed above this.
    pub max_peers: usize,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            leave_prob: 0.02,
            join_prob: 0.02,
            min_peers: 3,
            max_peers: 256,
        }
    }
}

/// What a churn tick did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Nothing happened this tick.
    None,
    /// A peer joined (new index).
    Joined(usize),
    /// A peer left (former index).
    Left(usize),
}

impl ChurnModel {
    /// Apply one churn tick to `net`, drawing replacement fragments from
    /// `pool` (round-robin by an internal cursor the caller supplies).
    pub fn tick(
        &self,
        net: &mut Network,
        pool: &[Subgraph],
        cursor: &mut usize,
        rng: &mut impl Rng,
    ) -> ChurnEvent {
        if net.num_peers() > self.min_peers && rng.gen_bool(self.leave_prob) {
            let victim = rng.gen_range(0..net.num_peers());
            net.remove_peer(victim);
            return ChurnEvent::Left(victim);
        }
        if net.num_peers() < self.max_peers && !pool.is_empty() && rng.gen_bool(self.join_prob) {
            let fragment = pool[*cursor % pool.len()].clone();
            *cursor += 1;
            net.add_peer(fragment);
            return ChurnEvent::Joined(net.num_peers() - 1);
        }
        ChurnEvent::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{assign_by_crawlers, CrawlerParams};
    use crate::sim::NetworkConfig;
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (CategorizedGraph, Vec<Subgraph>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 80,
                intra_out_per_node: 3,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let frags = assign_by_crawlers(
            &cg,
            &CrawlerParams {
                peers_per_category: 3,
                seeds_per_peer: 3,
                max_depth: 3,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(2),
        );
        (cg, frags)
    }

    #[test]
    fn network_survives_heavy_churn() {
        let (cg, frags) = world();
        let pool = frags.clone();
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            5,
        );
        let model = ChurnModel {
            leave_prob: 0.3,
            join_prob: 0.3,
            min_peers: 3,
            max_peers: 10,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut cursor = 0;
        let mut joins = 0;
        let mut leaves = 0;
        for _ in 0..100 {
            net.step();
            match model.tick(&mut net, &pool, &mut cursor, &mut rng) {
                ChurnEvent::Joined(_) => joins += 1,
                ChurnEvent::Left(_) => leaves += 1,
                ChurnEvent::None => {}
            }
        }
        assert!(joins > 0, "no joins in 100 high-churn ticks");
        assert!(leaves > 0, "no leaves in 100 high-churn ticks");
        assert!(net.num_peers() >= 3 && net.num_peers() <= 10);
        // All surviving peers still hold a valid probability mass.
        for p in net.peers() {
            jxp_core::invariants::check_mass_conservation(p).unwrap();
        }
    }

    #[test]
    fn bounds_are_respected() {
        let (cg, frags) = world();
        let pool = frags.clone();
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            5,
        );
        let model = ChurnModel {
            leave_prob: 1.0,
            join_prob: 0.0,
            min_peers: 4,
            max_peers: 100,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut cursor = 0;
        for _ in 0..50 {
            model.tick(&mut net, &pool, &mut cursor, &mut rng);
        }
        assert_eq!(net.num_peers(), 4);
    }
}
