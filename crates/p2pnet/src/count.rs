//! Gossip-based estimation of the global page count `N`.
//!
//! JXP assumes `N` "is known or can be estimated with decent accuracy;
//! there are efficient techniques for distributed counting with duplicate
//! elimination" (§3). This module is that technique: every peer keeps a
//! Flajolet–Martin sketch of its local page ids; when two peers meet they
//! merge sketches (FM merging is exactly duplicate-insensitive set union,
//! so overlapping fragments are **not** double-counted) and re-estimate.
//! Estimates converge to the true `N` as knowledge spreads epidemically.

use jxp_synopses::FmSketch;
use jxp_webgraph::Subgraph;

/// Per-peer FM sketches gossiped alongside JXP meetings.
#[derive(Debug, Clone)]
pub struct GossipCounter {
    sketches: Vec<FmSketch>,
    buckets: usize,
}

impl GossipCounter {
    /// Initialize one sketch per fragment from its local page ids.
    pub fn new(fragments: &[Subgraph], buckets: usize) -> Self {
        let sketches = fragments
            .iter()
            .map(|f| Self::sketch_of(f, buckets))
            .collect();
        GossipCounter { sketches, buckets }
    }

    fn sketch_of(fragment: &Subgraph, buckets: usize) -> FmSketch {
        let mut s = FmSketch::new(buckets);
        for p in fragment.pages() {
            s.insert(p.0 as u64);
        }
        s
    }

    /// Number of tracked peers.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// Whether no peers are tracked.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Peer `p`'s current estimate of `N`, floored at its own fragment
    /// size implied by the sketch (estimates are real-valued).
    pub fn estimate(&self, p: usize) -> f64 {
        self.sketches[p].estimate()
    }

    /// Gossip step: peers `a` and `b` exchange and merge sketches; both
    /// end up with the union.
    pub fn merge_pair(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "peer cannot gossip with itself");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.sketches.split_at_mut(hi);
        left[lo].merge(&right[0]);
        right[0] = left[lo].clone();
    }

    /// Track a joining peer.
    pub fn add_peer(&mut self, fragment: &Subgraph) {
        self.sketches.push(Self::sketch_of(fragment, self.buckets));
    }

    /// Stop tracking a peer (swap-remove semantics, mirroring the
    /// network's peer list).
    pub fn remove_peer(&mut self, p: usize) {
        self.sketches.swap_remove(p);
    }

    /// Bytes one sketch adds to a meeting message.
    pub fn wire_size(&self) -> usize {
        self.sketches.first().map_or(0, FmSketch::wire_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::{GraphBuilder, PageId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fragments(total: u32, per_peer: u32, peers: usize, seed: u64) -> Vec<Subgraph> {
        let mut b = GraphBuilder::new();
        for i in 0..total {
            b.add_edge(PageId(i), PageId((i + 1) % total));
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..peers)
            .map(|_| {
                let pages: Vec<PageId> = (0..per_peer)
                    .map(|_| PageId(rng.gen_range(0..total)))
                    .collect();
                Subgraph::from_pages(&g, pages)
            })
            .collect()
    }

    #[test]
    fn initial_estimate_reflects_local_fragment() {
        let frags = fragments(1000, 100, 4, 1);
        let gc = GossipCounter::new(&frags, 128);
        for (p, frag) in frags.iter().enumerate() {
            let est = gc.estimate(p);
            let n = frag.num_pages() as f64;
            assert!((est - n).abs() / n < 0.5, "peer {p}: est {est} vs {n}");
        }
    }

    #[test]
    fn gossip_converges_to_global_count() {
        // 20 peers × 200 random pages of 1000 → union ≈ 1000 (high cover).
        let frags = fragments(1000, 300, 20, 2);
        let mut gc = GossipCounter::new(&frags, 256);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = rng.gen_range(0..20);
            let mut b = rng.gen_range(0..19);
            if b >= a {
                b += 1;
            }
            gc.merge_pair(a, b);
        }
        // True distinct count over all fragments:
        let mut all = jxp_webgraph::FxHashSet::default();
        for f in &frags {
            all.extend(f.pages().iter().copied());
        }
        let truth = all.len() as f64;
        for p in 0..20 {
            let est = gc.estimate(p);
            assert!(
                (est - truth).abs() / truth < 0.3,
                "peer {p}: est {est} vs true {truth}"
            );
        }
    }

    #[test]
    fn overlap_is_not_double_counted() {
        // Two peers with identical fragments: merged estimate must stay
        // near the single-fragment count, not double it.
        let frags = fragments(500, 200, 1, 4);
        let twin = vec![frags[0].clone(), frags[0].clone()];
        let mut gc = GossipCounter::new(&twin, 256);
        let single = gc.estimate(0);
        gc.merge_pair(0, 1);
        let merged = gc.estimate(0);
        assert!(
            (merged - single).abs() / single < 0.01,
            "single {single}, merged {merged}"
        );
    }

    #[test]
    fn churn_operations() {
        let frags = fragments(300, 50, 3, 5);
        let mut gc = GossipCounter::new(&frags, 64);
        assert_eq!(gc.len(), 3);
        gc.add_peer(&frags[0]);
        assert_eq!(gc.len(), 4);
        gc.remove_peer(1);
        assert_eq!(gc.len(), 3);
        assert!(gc.wire_size() > 0);
    }

    #[test]
    #[should_panic(expected = "gossip with itself")]
    fn self_gossip_panics() {
        let frags = fragments(100, 10, 2, 6);
        let mut gc = GossipCounter::new(&frags, 64);
        gc.merge_pair(1, 1);
    }
}
