//! The network simulator: peers, meeting scheduling, accounting.
//!
//! Mirrors the paper's experimental driver: a set of peers over one global
//! graph, a global meeting counter (the x-axis of Figures 4–10), meetings
//! between a random initiator and a strategy-chosen partner, and
//! per-meeting bandwidth/CPU accounting.

use crate::bandwidth::BandwidthLog;
use crate::count::GossipCounter;
use jxp_core::meeting::{meet, MeetingStats};
use jxp_core::selection::{
    observe_meeting, select_partner, PeerSynopses, SelectionStrategy, SelectorState,
};
use jxp_core::{JxpConfig, JxpPeer};
use jxp_pagerank::Ranking;
use jxp_synopses::mips::MipsPermutations;
use jxp_telemetry::{Counter, Event, Gauge, Histogram, TelemetryHub};
use jxp_webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// JXP algorithm parameters shared by all peers.
    pub jxp: JxpConfig,
    /// Peer-selection strategy shared by all peers.
    pub strategy: SelectionStrategy,
    /// Dimensionality of the MIPs vectors (paper §4.3).
    pub mips_dims: usize,
    /// Seed of the shared MIPs permutation family.
    pub mips_seed: u64,
    /// When `true`, peers do not receive the true `N`; they estimate it by
    /// gossiping FM sketches (the §3 "work without this estimate"
    /// modification).
    pub estimate_n: bool,
    /// FM-sketch buckets for the `N` estimation.
    pub fm_buckets: usize,
    /// When `true`, every meeting's payloads travel through the real
    /// `jxp-wire` codec (encode → decode on each direction) and the
    /// recorded bytes are the exact frame lengths, header included —
    /// the same numbers a [`jxp-wire`]-based deployment would measure.
    pub route_via_wire: bool,
    /// Worker threads for [`Network::run_parallel`] rounds (`0` = the
    /// machine's available parallelism, `1` = serial). Scores are
    /// bit-identical for every value — see [`crate::parallel`]. The
    /// sequential [`Network::step`]/[`Network::run`] path ignores it.
    pub threads: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            jxp: JxpConfig::default(),
            strategy: SelectionStrategy::Random,
            mips_dims: 64,
            mips_seed: 0x4D49_5053,
            estimate_n: false,
            fm_buckets: 256,
            route_via_wire: false,
            threads: 0,
        }
    }
}

/// Record of one simulated meeting.
#[derive(Debug, Clone)]
pub struct MeetingRecord {
    /// Peer that initiated the meeting.
    pub initiator: usize,
    /// Chosen partner.
    pub partner: usize,
    /// The core meeting measurements (bytes, CPU time per side).
    pub stats: MeetingStats,
}

/// Telemetry handles the simulator touches on hot paths, resolved once
/// at [`Network::attach_telemetry`] time so per-meeting accounting
/// never walks the registry's name map. Counters and events are only
/// updated from the serial accounting phase (see
/// [`Network::account_meeting`]), so enabling telemetry cannot perturb
/// the engine's bit-identical thread-count determinism. Histograms are
/// the one exception: wall clock, steal traffic and pool backlog are
/// scheduling-dependent by nature and are deliberately excluded from
/// determinism comparisons — scheduling-dependent quantities must never
/// land in counters or events.
pub(crate) struct SimTelemetry {
    pub(crate) hub: Arc<TelemetryHub>,
    pub(crate) meetings: Arc<Counter>,
    pub(crate) meeting_bytes: Arc<Counter>,
    pub(crate) premeeting_bytes: Arc<Counter>,
    pub(crate) joins: Arc<Counter>,
    pub(crate) departures: Arc<Counter>,
    pub(crate) rounds: Arc<Counter>,
    pub(crate) round_width: Arc<Histogram>,
    pub(crate) round_seconds: Arc<Histogram>,
    /// Per-round count of meetings a pool worker stole from another
    /// worker's dealt stripe. Scheduling-dependent, so a histogram —
    /// never a counter or event (those must stay bit-identical across
    /// thread counts).
    pub(crate) pool_steals: Arc<Histogram>,
    /// Jobs still queued on the shared worker pool when a round is
    /// submitted (straggler/backlog signal; scheduling-dependent).
    pub(crate) pool_queue_depth: Arc<Histogram>,
    /// Centralized PageRank vector (global page index order) against
    /// which per-peer L1 convergence gauges are computed; set by
    /// [`Network::attach_convergence_truth`].
    pub(crate) l1_truth: Option<Vec<f64>>,
    /// Per-peer `jxp_sim_peer_l1_distance{peer="i"}` gauges, cached by
    /// peer index and grown on demand (churn can add peers).
    pub(crate) l1_gauges: Vec<Arc<Gauge>>,
}

impl SimTelemetry {
    fn new(hub: Arc<TelemetryHub>) -> Self {
        let reg = hub.registry();
        SimTelemetry {
            meetings: reg.counter("jxp_sim_meetings_total"),
            meeting_bytes: reg.counter("jxp_sim_meeting_bytes_total"),
            premeeting_bytes: reg.counter("jxp_sim_premeeting_bytes_total"),
            joins: reg.counter("jxp_sim_churn_joins_total"),
            departures: reg.counter("jxp_sim_churn_departures_total"),
            rounds: reg.counter("jxp_sim_rounds_total"),
            round_width: reg.histogram(
                "jxp_sim_round_width",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            round_seconds: reg.histogram(
                "jxp_sim_round_seconds",
                &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0],
            ),
            pool_steals: reg.histogram(
                "jxp_sim_pool_steals",
                &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
            ),
            pool_queue_depth: reg.histogram(
                "jxp_sim_pool_queue_depth",
                &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
            ),
            hub,
            l1_truth: None,
            l1_gauges: Vec::new(),
        }
    }

    /// The cached L1 gauge of peer `p`, registering any missing ones.
    fn peer_l1_gauge(&mut self, p: usize) -> &Arc<Gauge> {
        while self.l1_gauges.len() <= p {
            let i = self.l1_gauges.len();
            self.l1_gauges.push(
                self.hub
                    .registry()
                    .gauge(&format!("jxp_sim_peer_l1_distance{{peer=\"{i}\"}}")),
            );
        }
        &self.l1_gauges[p]
    }

    /// Refresh peer `p`'s L1-distance-to-centralized gauge. A no-op
    /// until [`Network::attach_convergence_truth`] supplies the truth
    /// vector. Called only from the serial accounting phase, so the
    /// gauge sequence is a pure function of the meeting schedule and
    /// thread-count equivalence is untouched.
    fn update_l1_gauge(&mut self, p: usize, peer: &JxpPeer) {
        let Some(truth) = &self.l1_truth else {
            return;
        };
        let d: f64 = peer
            .graph()
            .pages()
            .iter()
            .zip(peer.scores())
            .map(|(page, s)| (s - truth.get(page.0 as usize).copied().unwrap_or(0.0)).abs())
            .sum();
        self.peer_l1_gauge(p).set(d);
    }
}

/// A simulated P2P network of JXP peers.
pub struct Network {
    pub(crate) peers: Vec<JxpPeer>,
    pub(crate) synopses: Vec<PeerSynopses>,
    pub(crate) states: Vec<SelectorState>,
    pub(crate) counter: Option<GossipCounter>,
    perms: MipsPermutations,
    pub(crate) config: NetworkConfig,
    default_n: u64,
    pub(crate) rng: StdRng,
    pub(crate) bandwidth: BandwidthLog,
    pub(crate) meetings: u64,
    pub(crate) telemetry: Option<SimTelemetry>,
}

impl Network {
    /// Build a network from per-peer fragments of a global graph with
    /// `n_total` pages. `seed` drives all simulator randomness.
    ///
    /// # Panics
    /// Panics if fewer than two fragments are supplied.
    pub fn new(fragments: Vec<Subgraph>, n_total: u64, config: NetworkConfig, seed: u64) -> Self {
        assert!(fragments.len() >= 2, "a network needs at least two peers");
        let perms = MipsPermutations::generate(config.mips_dims, config.mips_seed);
        let counter = config
            .estimate_n
            .then(|| GossipCounter::new(&fragments, config.fm_buckets));
        let num = fragments.len();
        let synopses: Vec<PeerSynopses> = fragments
            .iter()
            .map(|f| PeerSynopses::compute(f, &perms))
            .collect();
        let peers: Vec<JxpPeer> = fragments
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                let n = match &counter {
                    Some(c) => (c.estimate(i).ceil() as u64).max(f.num_pages() as u64),
                    None => n_total,
                };
                JxpPeer::new(f, n, config.jxp.clone())
            })
            .collect();
        Network {
            peers,
            synopses,
            states: vec![SelectorState::default(); num],
            counter,
            perms,
            config,
            default_n: n_total,
            rng: StdRng::seed_from_u64(seed),
            bandwidth: BandwidthLog::new(num),
            meetings: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry hub: meetings, bandwidth, churn and (for the
    /// parallel engine) round shape are recorded into it from the
    /// serial accounting path. Handles are cached here, so the hot path
    /// never resolves metric names. Attaching is observation-only —
    /// scores, bandwidth history and selector state are bit-identical
    /// with telemetry on or off, at every thread count.
    pub fn attach_telemetry(&mut self, hub: Arc<TelemetryHub>) {
        self.telemetry = Some(SimTelemetry::new(hub));
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry_hub(&self) -> Option<&Arc<TelemetryHub>> {
        self.telemetry.as_ref().map(|t| &t.hub)
    }

    /// Attach the centralized PageRank vector (global page index order)
    /// and start publishing a per-peer convergence gauge,
    /// `jxp_sim_peer_l1_distance{peer="i"}`: the L1 distance between
    /// peer *i*'s local scores and the centralized scores of the same
    /// pages. Gauges refresh for both participants of every meeting,
    /// from the serial accounting phase only — like all simulator
    /// telemetry, enabling them cannot perturb scores at any thread
    /// count. Peers are labelled by their current index (swap-remove
    /// churn renumbers the last peer, as everywhere in the simulator).
    ///
    /// # Panics
    /// Panics if no telemetry hub is attached.
    pub fn attach_convergence_truth(&mut self, truth: &[f64]) {
        let t = self
            .telemetry
            .as_mut()
            .expect("attach_telemetry before attach_convergence_truth");
        t.l1_truth = Some(truth.to_vec());
        // Publish the starting distances so the gauges exist (and are
        // meaningful) before the first meeting.
        for (p, peer) in self.peers.iter().enumerate() {
            t.update_l1_gauge(p, peer);
        }
    }

    /// Number of peers currently in the network.
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }

    /// The peers (read-only).
    pub fn peers(&self) -> &[JxpPeer] {
        &self.peers
    }

    /// One peer (read-only).
    pub fn peer(&self, p: usize) -> &JxpPeer {
        &self.peers[p]
    }

    /// Global meeting counter (the x-axis of the convergence figures).
    pub fn meetings(&self) -> u64 {
        self.meetings
    }

    /// Bandwidth accounting.
    pub fn bandwidth(&self) -> &BandwidthLog {
        &self.bandwidth
    }

    /// Whether the pre-meetings strategy is active.
    fn premeetings_cfg(&self) -> Option<&jxp_core::selection::PreMeetingsConfig> {
        match &self.config.strategy {
            SelectionStrategy::PreMeetings(cfg) => Some(cfg),
            SelectionStrategy::Random => None,
        }
    }

    /// Execute one meeting: a uniformly random initiator chooses a partner
    /// per the configured strategy; both sides exchange and absorb.
    pub fn step(&mut self) -> MeetingRecord {
        let n = self.peers.len();
        let initiator = self.rng.gen_range(0..n);
        let partner = select_partner(
            &mut self.states[initiator],
            &self.config.strategy,
            initiator,
            n,
            &mut self.rng,
        );
        debug_assert_ne!(initiator, partner);
        let (a, b) = pair_mut(&mut self.peers, initiator, partner);
        let stats = if self.config.route_via_wire {
            meet_via_wire(a, b)
        } else {
            meet(a, b)
        };
        self.account_meeting(initiator, partner, &stats);
        MeetingRecord {
            initiator,
            partner,
            stats,
        }
    }

    /// Post-meeting bookkeeping shared by the sequential [`step`] path
    /// and the round-based parallel engine ([`crate::parallel`]):
    /// bandwidth accounting, pre-meetings synopsis exchange, FM-sketch
    /// gossip, and the global meeting counter. Always runs serially, in
    /// schedule order, so both paths account identically.
    ///
    /// [`step`]: Network::step
    pub(crate) fn account_meeting(
        &mut self,
        initiator: usize,
        partner: usize,
        stats: &MeetingStats,
    ) {
        // Piggybacked synopses add to the message size under pre-meetings.
        // Each side ships its *own* synopses, so the two directions carry
        // different synopsis sizes; the FM sketch rides along symmetrically.
        let (syn_a, syn_b) = if self.premeetings_cfg().is_some() {
            (
                self.synopses[initiator].wire_size() as u64,
                self.synopses[partner].wire_size() as u64,
            )
        } else {
            (0, 0)
        };
        let sketch_bytes = self.counter.as_ref().map_or(0, |c| c.wire_size() as u64);
        let sent_a = stats.bytes_a_to_b as u64 + syn_a + sketch_bytes;
        let sent_b = stats.bytes_b_to_a as u64 + syn_b + sketch_bytes;
        self.bandwidth
            .record_meeting(initiator, sent_a, partner, sent_b);
        if let Some(t) = &self.telemetry {
            t.meetings.inc();
            t.meeting_bytes.add(sent_a + sent_b);
            let meeting = self.meetings; // 0-based global meeting number
            t.hub.events().record(Event::MeetingStarted {
                meeting,
                initiator: initiator as u64,
                partner: partner as u64,
            });
            t.hub.events().record(Event::MeetingCompleted {
                meeting,
                initiator: initiator as u64,
                partner: partner as u64,
                bytes: sent_a + sent_b,
            });
        }
        if let Some(cfg) = self.premeetings_cfg().cloned() {
            let before: u64 =
                self.states[initiator].premeeting_bytes + self.states[partner].premeeting_bytes;
            observe_meeting(&mut self.states, &self.synopses, initiator, partner, &cfg);
            let after: u64 =
                self.states[initiator].premeeting_bytes + self.states[partner].premeeting_bytes;
            self.bandwidth.record_premeeting(after - before);
            if let Some(t) = &self.telemetry {
                t.premeeting_bytes.add(after - before);
            }
        }
        if let Some(counter) = &mut self.counter {
            counter.merge_pair(initiator, partner);
            for p in [initiator, partner] {
                let est = counter.estimate(p).max(self.peers[p].num_pages() as f64);
                self.peers[p].set_n_total(est);
            }
        }
        if let Some(t) = &mut self.telemetry {
            for p in [initiator, partner] {
                t.update_l1_gauge(p, &self.peers[p]);
            }
        }
        self.meetings += 1;
    }

    /// Run `count` meetings.
    pub fn run(&mut self, count: usize) {
        for _ in 0..count {
            self.step();
        }
    }

    /// Aggregate peer-selection statistics:
    /// `(selections, candidate-driven, cache revisits, cached ids total)`.
    pub fn selection_stats(&self) -> (usize, usize, usize, usize) {
        self.states.iter().fold((0, 0, 0, 0), |acc, s| {
            (
                acc.0 + s.selections(),
                acc.1 + s.candidate_selections(),
                acc.2 + s.revisit_selections(),
                acc.3 + s.cached().len(),
            )
        })
    }

    /// The network-wide total ranking (§6.2 evaluation construction).
    pub fn total_ranking(&self) -> Ranking {
        jxp_core::evaluate::total_ranking(self.peers.iter())
    }

    /// A joining peer (churn). Selector caches are left untouched —
    /// indices of existing peers are stable under push.
    pub fn add_peer(&mut self, fragment: Subgraph) {
        let n = match &mut self.counter {
            Some(c) => {
                c.add_peer(&fragment);
                (c.estimate(self.peers.len()).ceil() as u64).max(fragment.num_pages() as u64)
            }
            None => self.default_n,
        };
        self.synopses
            .push(PeerSynopses::compute(&fragment, &self.perms));
        self.peers
            .push(JxpPeer::new(fragment, n, self.config.jxp.clone()));
        self.states.push(SelectorState::default());
        self.bandwidth.add_peer();
        self.record_churn(self.peers.len() - 1, true);
    }

    /// A peer re-joining **with state** (e.g. restored from a
    /// [`jxp_core::snapshot`]): unlike [`add_peer`](Network::add_peer) it
    /// keeps its accumulated world knowledge and scores.
    pub fn add_existing_peer(&mut self, peer: JxpPeer) {
        if let Some(c) = &mut self.counter {
            c.add_peer(peer.graph());
        }
        self.synopses
            .push(PeerSynopses::compute(peer.graph(), &self.perms));
        self.peers.push(peer);
        self.states.push(SelectorState::default());
        self.bandwidth.add_peer();
        self.record_churn(self.peers.len() - 1, true);
    }

    /// A departing peer (churn). Uses swap-remove, which renumbers the
    /// last peer; all selector caches are reset because cached ids become
    /// stale (a real network keys caches by durable peer ids — the
    /// simulator models the loss of cached knowledge conservatively).
    ///
    /// # Panics
    /// Panics if removal would leave fewer than two peers.
    pub fn remove_peer(&mut self, p: usize) -> JxpPeer {
        assert!(self.peers.len() > 2, "cannot shrink below two peers");
        let peer = self.peers.swap_remove(p);
        self.synopses.swap_remove(p);
        if let Some(c) = &mut self.counter {
            c.remove_peer(p);
        }
        self.states = vec![SelectorState::default(); self.peers.len()];
        self.record_churn(p, false);
        peer
    }

    /// Trace a join/departure (no-op without an attached hub).
    fn record_churn(&self, peer: usize, joined: bool) {
        if let Some(t) = &self.telemetry {
            if joined {
                t.joins.inc();
            } else {
                t.departures.inc();
            }
            t.hub.events().record(Event::Churn {
                peer: peer as u64,
                joined,
            });
        }
    }
}

/// One meeting routed through the real wire codec: each payload is
/// encoded as a `jxp-wire` frame and decoded on the receiving side, so
/// the byte counts are exact frame lengths (12-byte header included)
/// and any codec regression breaks the simulation loudly. The responder
/// builds its reply from pre-absorption state, matching the networked
/// protocol in `jxp-node`.
pub(crate) fn meet_via_wire(a: &mut JxpPeer, b: &mut JxpPeer) -> MeetingStats {
    use jxp_core::meeting::deliver;
    use jxp_wire::{decode_frame, encode_frame, Frame};

    let request = encode_frame(&Frame::MeetRequest(a.payload()));
    let reply = encode_frame(&Frame::MeetReply(b.payload()));
    let bytes_a_to_b = request.len();
    let bytes_b_to_a = reply.len();

    let (frame, _) = decode_frame(&request).expect("self-encoded request must decode");
    let Frame::MeetRequest(payload_a) = frame else {
        unreachable!("encoded a MeetRequest");
    };
    let merge_time_b = deliver(b, &payload_a);

    let (frame, _) = decode_frame(&reply).expect("self-encoded reply must decode");
    let Frame::MeetReply(payload_b) = frame else {
        unreachable!("encoded a MeetReply");
    };
    let merge_time_a = deliver(a, &payload_b);

    MeetingStats {
        bytes_a_to_b,
        bytes_b_to_a,
        merge_time_a,
        merge_time_b,
    }
}

/// Mutable references to two distinct elements.
fn pair_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "cannot borrow the same element twice");
    if i < j {
        let (l, r) = v.split_at_mut(j);
        (&mut l[i], &mut r[0])
    } else {
        let (l, r) = v.split_at_mut(i);
        (&mut r[0], &mut l[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_core::selection::PreMeetingsConfig;
    use jxp_pagerank::{metrics, pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::PageId;

    fn small_world() -> (CategorizedGraph, Vec<Subgraph>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 3,
                nodes_per_category: 100,
                intra_out_per_node: 4,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let params = crate::assign::CrawlerParams {
            peers_per_category: 2,
            seeds_per_peer: 4,
            max_depth: 3,
            ..Default::default()
        };
        let frags = crate::assign::assign_by_crawlers(&cg, &params, &mut StdRng::seed_from_u64(2));
        (cg, frags)
    }

    #[test]
    fn network_runs_and_counts_meetings() {
        let (cg, frags) = small_world();
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            7,
        );
        net.run(20);
        assert_eq!(net.meetings(), 20);
        assert!(net.bandwidth().total_bytes() > 0);
        assert_eq!(net.num_peers(), 6);
    }

    #[test]
    fn convergence_toward_centralized_pagerank() {
        let (cg, frags) = small_world();
        let truth = pagerank(&cg.graph, &PageRankConfig::default());
        let truth_ranking = jxp_core::evaluate::centralized_ranking(truth.scores());
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            7,
        );
        let early = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        net.run(150);
        let late = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        assert!(late < early, "footrule did not improve: {early} → {late}");
        assert!(late < 0.35, "footrule after 150 meetings: {late}");
    }

    #[test]
    fn premeetings_strategy_runs() {
        let (cg, frags) = small_world();
        let config = NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            ..Default::default()
        };
        let mut net = Network::new(frags, cg.graph.num_nodes() as u64, config, 9);
        net.run(60);
        assert_eq!(net.meetings(), 60);
        // Synopses piggyback on messages, so totals include them.
        assert!(net.bandwidth().total_bytes() > 0);
    }

    #[test]
    fn estimate_n_mode_converges_to_network_coverage() {
        let (_cg, frags) = small_world();
        // The gossip target is the number of *distinct pages the network
        // holds* (crawlers may not reach every page of the global graph).
        let covered = {
            let mut s = jxp_webgraph::FxHashSet::default();
            for f in &frags {
                s.extend(f.pages().iter().copied());
            }
            s.len() as f64
        };
        let config = NetworkConfig {
            estimate_n: true,
            ..Default::default()
        };
        let mut net = Network::new(frags, 0 /* unused */, config, 11);
        let spread_initial: f64 = (0..net.num_peers())
            .map(|p| (net.peer(p).n_total() - covered).abs())
            .sum();
        net.run(100);
        for p in 0..net.num_peers() {
            let est = net.peer(p).n_total();
            assert!(
                (est - covered).abs() / covered < 0.35,
                "peer {p} N estimate {est} vs covered {covered}"
            );
        }
        let spread_final: f64 = (0..net.num_peers())
            .map(|p| (net.peer(p).n_total() - covered).abs())
            .sum();
        assert!(
            spread_final < spread_initial,
            "gossip did not tighten estimates"
        );
    }

    #[test]
    fn bandwidth_pins_each_direction_to_its_own_payload_and_synopses() {
        let (cg, frags) = small_world();
        let config = NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            ..Default::default()
        };
        let mut net = Network::new(frags, cg.graph.num_nodes() as u64, config, 17);
        let record = net.step();
        // Each side's logged bytes = its payload + its OWN synopses. A
        // regression that charges one side's synopses to both directions
        // (or drops a direction) breaks this equality.
        let a = record.initiator;
        let b = record.partner;
        assert_eq!(
            net.bandwidth().peer_history(a),
            &[record.stats.bytes_a_to_b as u64 + net.synopses[a].wire_size() as u64]
        );
        assert_eq!(
            net.bandwidth().peer_history(b),
            &[record.stats.bytes_b_to_a as u64 + net.synopses[b].wire_size() as u64]
        );
        assert_eq!(
            net.bandwidth().total_bytes(),
            record.stats.total_bytes() as u64
                + net.synopses[a].wire_size() as u64
                + net.synopses[b].wire_size() as u64
                + net.bandwidth().premeeting_bytes()
        );
    }

    #[test]
    fn wire_routed_meetings_add_exactly_one_header_per_direction() {
        let (cg, frags) = small_world();
        let n = cg.graph.num_nodes() as u64;
        // Same seed ⇒ same initiator/partner and same pre-meeting state,
        // so the only difference in the first meeting's byte counts must
        // be the codec's fixed frame header, once per direction.
        let mut direct = Network::new(frags.clone(), n, NetworkConfig::default(), 23);
        let mut wired = Network::new(
            frags,
            n,
            NetworkConfig {
                route_via_wire: true,
                ..Default::default()
            },
            23,
        );
        let d = direct.step();
        let w = wired.step();
        assert_eq!(d.initiator, w.initiator);
        assert_eq!(d.partner, w.partner);
        assert_eq!(
            w.stats.bytes_a_to_b,
            d.stats.bytes_a_to_b + jxp_wire::HEADER_LEN
        );
        assert_eq!(
            w.stats.bytes_b_to_a,
            d.stats.bytes_b_to_a + jxp_wire::HEADER_LEN
        );
    }

    #[test]
    fn wire_routed_network_converges_like_direct() {
        let (cg, frags) = small_world();
        let n = cg.graph.num_nodes() as u64;
        let mut direct = Network::new(frags.clone(), n, NetworkConfig::default(), 29);
        let mut wired = Network::new(
            frags,
            n,
            NetworkConfig {
                route_via_wire: true,
                ..Default::default()
            },
            29,
        );
        direct.run(80);
        wired.run(80);
        // The codec is lossless, so routing through it must not change
        // the resulting scores at all (same seed, same meetings).
        for p in 0..direct.num_peers() {
            assert_eq!(direct.peer(p).scores(), wired.peer(p).scores());
        }
    }

    #[test]
    fn churn_join_and_leave() {
        let (cg, frags) = small_world();
        let extra = frags[0].clone();
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            13,
        );
        net.run(10);
        net.add_peer(extra);
        assert_eq!(net.num_peers(), 7);
        net.run(10);
        let gone = net.remove_peer(0);
        assert!(gone.num_pages() > 0);
        assert_eq!(net.num_peers(), 6);
        net.run(10);
        assert_eq!(net.meetings(), 30);
    }

    #[test]
    fn telemetry_mirrors_bandwidth_log_and_traces_churn() {
        let (cg, frags) = small_world();
        let extra = frags[0].clone();
        let config = NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            ..Default::default()
        };
        let mut net = Network::new(frags, cg.graph.num_nodes() as u64, config, 13);
        let hub = jxp_telemetry::TelemetryHub::shared();
        net.attach_telemetry(Arc::clone(&hub));
        net.run(25);
        net.add_peer(extra);
        net.run(5);
        let departed_index = net.num_peers() - 1;
        let _ = net.remove_peer(departed_index);

        let snap = hub.snapshot();
        let counters = &snap.metrics.counters;
        assert_eq!(counters["jxp_sim_meetings_total"], 30);
        assert_eq!(
            counters["jxp_sim_meeting_bytes_total"] + counters["jxp_sim_premeeting_bytes_total"],
            net.bandwidth().total_bytes()
        );
        assert_eq!(
            counters["jxp_sim_premeeting_bytes_total"],
            net.bandwidth().premeeting_bytes()
        );
        assert!(counters["jxp_sim_premeeting_bytes_total"] > 0);
        assert_eq!(counters["jxp_sim_churn_joins_total"], 1);
        assert_eq!(counters["jxp_sim_churn_departures_total"], 1);
        // The sequential path runs no rounds.
        assert_eq!(counters["jxp_sim_rounds_total"], 0);

        let churn: Vec<(u64, bool)> = snap
            .events
            .iter()
            .filter_map(|r| match r.event {
                jxp_telemetry::Event::Churn { peer, joined } => Some((peer, joined)),
                _ => None,
            })
            .collect();
        assert_eq!(churn, vec![(6, true), (departed_index as u64, false)]);
        // 30 meetings × (started + completed) + 2 churn events.
        assert_eq!(hub.events().recorded(), 62);
    }

    #[test]
    fn per_peer_l1_gauges_shrink_and_are_thread_count_invariant() {
        let (cg, frags) = small_world();
        let truth = pagerank(&cg.graph, &PageRankConfig::default());

        // Run the parallel engine at a given thread count and return
        // (initial gauges, final gauges, score fingerprint).
        let run = |threads: usize| {
            let config = NetworkConfig {
                threads,
                ..NetworkConfig::default()
            };
            let mut net = Network::new(frags.clone(), cg.graph.num_nodes() as u64, config, 13);
            let hub = jxp_telemetry::TelemetryHub::shared();
            net.attach_telemetry(Arc::clone(&hub));
            net.attach_convergence_truth(truth.scores());
            let read = |hub: &jxp_telemetry::TelemetryHub, n: usize| -> Vec<f64> {
                let gauges = hub.snapshot().metrics.gauges;
                (0..n)
                    .map(|p| gauges[&format!("jxp_sim_peer_l1_distance{{peer=\"{p}\"}}")])
                    .collect()
            };
            let initial = read(&hub, net.num_peers());
            net.run_parallel(120);
            let fin = read(&hub, net.num_peers());
            let scores: Vec<f64> = net
                .peers()
                .iter()
                .flat_map(|p| p.scores().to_vec())
                .collect();
            (initial, fin, scores)
        };

        let (initial, final_1, scores_1) = run(1);
        // Gauges exist for every peer before the first meeting and the
        // network as a whole moved toward the centralized scores.
        assert_eq!(initial.len(), 6);
        assert!(initial.iter().all(|d| d.is_finite() && *d >= 0.0));
        assert!(
            final_1.iter().sum::<f64>() < initial.iter().sum::<f64>(),
            "total L1 distance should shrink: {initial:?} -> {final_1:?}"
        );

        // The serial accounting phase updates the gauges, so they are
        // bit-identical at any thread count — like the scores.
        let (_, final_8, scores_8) = run(8);
        assert_eq!(final_1, final_8);
        assert_eq!(scores_1, scores_8);
    }

    #[test]
    #[should_panic(expected = "attach_telemetry before")]
    fn convergence_truth_requires_a_hub() {
        let (cg, frags) = small_world();
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            13,
        );
        net.attach_convergence_truth(&[0.0; 4]);
    }

    #[test]
    fn pair_mut_returns_distinct_references() {
        let mut v = vec![1, 2, 3];
        let (a, b) = pair_mut(&mut v, 2, 0);
        *a += 10;
        *b += 100;
        assert_eq!(v, vec![101, 2, 13]);
    }

    #[test]
    #[should_panic(expected = "same element")]
    fn pair_mut_same_index_panics() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least two peers")]
    fn single_fragment_network_panics() {
        let (cg, frags) = small_world();
        let _ = Network::new(
            vec![frags[0].clone()],
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            1,
        );
    }

    #[test]
    fn total_ranking_has_scores_for_covered_pages() {
        let (cg, frags) = small_world();
        let covered: usize = {
            let mut s = jxp_webgraph::FxHashSet::default();
            for f in &frags {
                s.extend(f.pages().iter().copied());
            }
            s.len()
        };
        let net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            3,
        );
        let r = net.total_ranking();
        assert_eq!(r.len(), covered);
        assert!(r.score(PageId(0)).is_some() || covered < cg.graph.num_nodes());
    }
}
