//! Network bandwidth accounting (§6.2, Figures 11/12).
//!
//! The paper measures "the message size of a peer at each meeting" and
//! plots, per meeting index, the median and first/third quartiles over all
//! peers, for the first ~50 meetings of each peer. It also reports
//! cumulative totals ("the total message cost to make the footrule
//! distance drop below 0.2 was around 461 MBytes…").

/// Per-peer, per-meeting message sizes plus running totals.
#[derive(Debug, Clone, Default)]
pub struct BandwidthLog {
    /// `per_peer[p][k]` = bytes peer `p` sent in its `k`-th meeting
    /// (payload plus piggybacked synopses).
    per_peer: Vec<Vec<u64>>,
    /// Total bytes on the wire across all meetings (both directions).
    total_bytes: u64,
    /// Bytes attributable to pre-meeting MIPs fetches.
    premeeting_bytes: u64,
}

impl BandwidthLog {
    /// Create a log for `num_peers` peers.
    pub fn new(num_peers: usize) -> Self {
        BandwidthLog {
            per_peer: vec![Vec::new(); num_peers],
            total_bytes: 0,
            premeeting_bytes: 0,
        }
    }

    /// Grow the log when a peer joins.
    pub fn add_peer(&mut self) {
        self.per_peer.push(Vec::new());
    }

    /// Record a meeting: each side sent `bytes_a` / `bytes_b` respectively.
    pub fn record_meeting(&mut self, peer_a: usize, bytes_a: u64, peer_b: usize, bytes_b: u64) {
        self.per_peer[peer_a].push(bytes_a);
        self.per_peer[peer_b].push(bytes_b);
        self.total_bytes += bytes_a + bytes_b;
    }

    /// Record extra bytes spent on pre-meeting synopsis fetches.
    pub fn record_premeeting(&mut self, bytes: u64) {
        self.premeeting_bytes += bytes;
        self.total_bytes += bytes;
    }

    /// Total bytes on the wire so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes spent on pre-meeting fetches.
    pub fn premeeting_bytes(&self) -> u64 {
        self.premeeting_bytes
    }

    /// Message sizes of peer `p` across its meetings.
    pub fn peer_history(&self, p: usize) -> &[u64] {
        &self.per_peer[p]
    }

    /// Quartiles (`q1, median, q3`) over all peers of the message size at
    /// each peer's `k`-th meeting (0-based) — one point of Figure 11/12.
    /// Returns `None` if no peer has had `k+1` meetings yet.
    pub fn quartiles_at_meeting(&self, k: usize) -> Option<(u64, u64, u64)> {
        let mut values: Vec<u64> = self
            .per_peer
            .iter()
            .filter_map(|h| h.get(k).copied())
            .collect();
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        Some((
            percentile(&values, 0.25),
            percentile(&values, 0.50),
            percentile(&values, 0.75),
        ))
    }

    /// Largest number of meetings any single peer has performed.
    pub fn max_meetings_per_peer(&self) -> usize {
        self.per_peer.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut log = BandwidthLog::new(3);
        log.record_meeting(0, 100, 1, 200);
        log.record_meeting(0, 150, 2, 50);
        assert_eq!(log.total_bytes(), 500);
        assert_eq!(log.peer_history(0), &[100, 150]);
        assert_eq!(log.peer_history(1), &[200]);
        assert_eq!(log.max_meetings_per_peer(), 2);
    }

    #[test]
    fn premeeting_bytes_counted_separately_but_in_total() {
        let mut log = BandwidthLog::new(2);
        log.record_meeting(0, 100, 1, 100);
        log.record_premeeting(40);
        assert_eq!(log.premeeting_bytes(), 40);
        assert_eq!(log.total_bytes(), 240);
    }

    #[test]
    fn quartiles_over_peers() {
        let mut log = BandwidthLog::new(4);
        // First meeting of each peer: sizes 10, 20, 30, 40.
        log.record_meeting(0, 10, 1, 20);
        log.record_meeting(2, 30, 3, 40);
        let (q1, med, q3) = log.quartiles_at_meeting(0).unwrap();
        assert!(q1 <= med && med <= q3);
        assert_eq!(med, 30); // nearest-rank on [10,20,30,40]
        assert!(log.quartiles_at_meeting(1).is_none());
    }

    #[test]
    fn quartiles_with_partial_histories() {
        let mut log = BandwidthLog::new(3);
        log.record_meeting(0, 10, 1, 20);
        log.record_meeting(0, 30, 1, 40);
        // Only peers 0 and 1 have a second meeting.
        let (q1, _, q3) = log.quartiles_at_meeting(1).unwrap();
        assert_eq!((q1, q3), (30, 40));
    }

    #[test]
    fn add_peer_grows_log() {
        let mut log = BandwidthLog::new(1);
        log.add_peer();
        log.record_meeting(0, 5, 1, 6);
        assert_eq!(log.peer_history(1), &[6]);
    }
}
