//! Deterministic round-based parallel meeting engine.
//!
//! The paper's §3 premise is that JXP meetings happen "asynchronously and
//! independently of each other" — concurrency is the algorithm's native
//! shape, and two meetings that share no peer commute exactly: each one
//! reads and writes only its two peers' state. This module exploits that:
//!
//! 1. **Schedule serially.** A round is drawn on the simulator thread
//!    with the seeded RNG and the normal [`SelectionStrategy`] machinery
//!    (`initiator ~ U(peers)`, partner via `select_partner`), greedily
//!    accepting pairs until a drawn pair conflicts with the round's
//!    **matching** (shares an endpoint). The conflicting pair is not
//!    discarded — it carries over as the first meeting of the next round,
//!    so the executed meeting sequence is exactly the drawn sequence.
//! 2. **Execute concurrently.** The round's pairs are pairwise disjoint,
//!    so each meeting gets true `&mut JxpPeer` borrows of its two peers
//!    (handed out safely via take-from-slot splitting) and the meetings
//!    run on `std::thread::scope` workers.
//! 3. **Account serially.** Bandwidth, pre-meetings bookkeeping, gossip
//!    merges and the meeting counter replay in schedule order through the
//!    same code path as [`Network::step`].
//!
//! **Determinism argument.** All randomness is consumed in phase 1 on one
//! thread; phase 2 touches pairwise-disjoint state, so its result is
//! independent of execution order and interleaving (each meeting performs
//! the identical float operations it would perform alone); phase 3 is
//! serial in schedule order. Hence the final state is **bit-identical**
//! for every thread count, including the serial fallback — which is the
//! canonical sequential replay of the same schedule. This is verified by
//! tests at 1/2/8 threads and enforced in CI.
//!
//! The only observable difference vs. the one-at-a-time [`Network::run`]
//! loop is *scheduling granularity*: within a round, partner selection
//! sees the selector state as of the round's start (candidates queued by
//! a meeting of the same round become visible one round later). That
//! matches the paper's asynchronous model — a peer cannot observe the
//! outcome of a meeting that is still in flight.
//!
//! [`SelectionStrategy`]: jxp_core::selection::SelectionStrategy

use crate::sim::{meet_via_wire, Network};
use jxp_core::meeting::{meet, MeetingStats};
use jxp_core::selection::select_partner;
use jxp_core::JxpPeer;
use jxp_pagerank::par::resolve_threads;
use jxp_telemetry::Event;
use rand::Rng;

/// Summary of one [`Network::run_parallel`] invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelRunReport {
    /// Meetings executed (== the requested count).
    pub meetings: u64,
    /// Rounds the schedule was partitioned into.
    pub rounds: u64,
    /// Size of the largest round (meetings executed concurrently).
    pub max_round: usize,
    /// Worker threads used for round execution.
    pub threads: usize,
}

impl Network {
    /// Draw the next round: a greedy maximal matching of disjoint
    /// `(initiator, partner)` pairs, at most `budget` of them. `pending`
    /// carries the pair whose draw closed the previous round.
    fn draw_round(
        &mut self,
        budget: usize,
        pending: &mut Option<(usize, usize)>,
    ) -> Vec<(usize, usize)> {
        let n = self.peers.len();
        let mut busy = vec![false; n];
        let mut pairs = Vec::new();
        if let Some((i, p)) = pending.take() {
            busy[i] = true;
            busy[p] = true;
            pairs.push((i, p));
        }
        while pairs.len() < budget {
            let initiator = self.rng.gen_range(0..n);
            let partner = select_partner(
                &mut self.states[initiator],
                &self.config.strategy,
                initiator,
                n,
                &mut self.rng,
            );
            debug_assert_ne!(initiator, partner);
            if busy[initiator] || busy[partner] {
                // The matching is maximal for this draw sequence; the
                // conflicting pair opens the next round.
                *pending = Some((initiator, partner));
                break;
            }
            busy[initiator] = true;
            busy[partner] = true;
            pairs.push((initiator, partner));
        }
        pairs
    }

    /// Execute one round of pairwise-disjoint meetings on up to
    /// `threads` scoped workers, returning per-pair stats in schedule
    /// order.
    fn execute_round(&mut self, pairs: &[(usize, usize)], threads: usize) -> Vec<MeetingStats> {
        let via_wire = self.config.route_via_wire;
        let run_one = |a: &mut JxpPeer, b: &mut JxpPeer| {
            if via_wire {
                meet_via_wire(a, b)
            } else {
                meet(a, b)
            }
        };
        // Hand out disjoint `&mut JxpPeer` pairs: every peer reference
        // sits in a take-once slot, so a non-disjoint schedule is a
        // loud panic instead of undefined behavior.
        let mut slots: Vec<Option<&mut JxpPeer>> = self.peers.iter_mut().map(Some).collect();
        let mut results: Vec<Option<MeetingStats>> = pairs.iter().map(|_| None).collect();
        let mut tasks: Vec<(&mut JxpPeer, &mut JxpPeer, &mut Option<MeetingStats>)> = pairs
            .iter()
            .zip(results.iter_mut())
            .map(|(&(i, j), slot)| {
                let a = slots[i].take().expect("round pairs must be disjoint");
                let b = slots[j].take().expect("round pairs must be disjoint");
                (a, b, slot)
            })
            .collect();
        let workers = threads.min(tasks.len()).max(1);
        if workers == 1 {
            for (a, b, slot) in tasks {
                *slot = Some(run_one(a, b));
            }
        } else {
            // Round-robin deal; meetings commute, so placement only
            // affects wall clock, never results.
            let mut buckets: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
            for (k, task) in tasks.drain(..).enumerate() {
                buckets[k % workers].push(task);
            }
            let run_one = &run_one;
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for (a, b, slot) in bucket {
                            *slot = Some(run_one(a, b));
                        }
                    });
                }
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every pair executed"))
            .collect()
    }

    /// Run `count` meetings through the round-based parallel engine,
    /// using [`NetworkConfig::threads`](crate::sim::NetworkConfig)
    /// workers (`0` = available parallelism).
    ///
    /// The resulting scores, bandwidth log and selector statistics are
    /// **bit-identical** for every thread count (see the module docs for
    /// the argument); only wall-clock time differs.
    pub fn run_parallel(&mut self, count: usize) -> ParallelRunReport {
        let threads = resolve_threads(self.config.threads);
        let mut report = ParallelRunReport {
            threads,
            ..Default::default()
        };
        let mut pending = None;
        while (report.meetings as usize) < count {
            let budget = count - report.meetings as usize;
            let pairs = self.draw_round(budget, &mut pending);
            debug_assert!(!pairs.is_empty(), "a round always holds >= 1 pair");
            let started = std::time::Instant::now();
            let stats = self.execute_round(&pairs, threads);
            let elapsed = started.elapsed().as_secs_f64();
            for (&(initiator, partner), s) in pairs.iter().zip(&stats) {
                self.account_meeting(initiator, partner, s);
            }
            if let Some(t) = &self.telemetry {
                t.rounds.inc();
                // Matching width is schedule-determined (identical at
                // every thread count); round wall time is the slowest
                // worker — the straggler — and lives only in a
                // histogram, never in an event.
                t.round_width.observe(pairs.len() as f64);
                t.round_seconds.observe(elapsed);
                t.hub.events().record(Event::RoundExecuted {
                    round: report.rounds,
                    pairs: pairs.len() as u64,
                    threads: threads.min(pairs.len()).max(1) as u64,
                });
            }
            report.rounds += 1;
            report.max_round = report.max_round.max(pairs.len());
            report.meetings += pairs.len() as u64;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::CrawlerParams;
    use crate::sim::NetworkConfig;
    use jxp_core::selection::{PreMeetingsConfig, SelectionStrategy};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_world() -> (CategorizedGraph, Vec<Subgraph>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 3,
                nodes_per_category: 80,
                intra_out_per_node: 4,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(21),
        );
        let params = CrawlerParams {
            peers_per_category: 3,
            seeds_per_peer: 4,
            max_depth: 3,
            ..Default::default()
        };
        let frags = crate::assign::assign_by_crawlers(&cg, &params, &mut StdRng::seed_from_u64(22));
        (cg, frags)
    }

    fn net_with(threads: usize, config: NetworkConfig) -> Network {
        let (cg, frags) = small_world();
        let config = NetworkConfig { threads, ..config };
        Network::new(frags, cg.graph.num_nodes() as u64, config, 77)
    }

    type Fingerprint = (Vec<Vec<u64>>, Vec<u64>, (usize, usize, usize, usize));

    fn fingerprint(net: &Network) -> Fingerprint {
        let scores: Vec<Vec<u64>> = net
            .peers()
            .iter()
            .map(|p| p.scores().iter().map(|s| s.to_bits()).collect())
            .collect();
        let history: Vec<u64> = (0..net.num_peers())
            .flat_map(|p| net.bandwidth().peer_history(p).iter().copied())
            .collect();
        (scores, history, net.selection_stats())
    }

    #[test]
    fn parallel_run_is_bit_identical_across_thread_counts() {
        for config in [
            NetworkConfig::default(),
            NetworkConfig {
                strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
                ..Default::default()
            },
            NetworkConfig {
                estimate_n: true,
                ..Default::default()
            },
            NetworkConfig {
                route_via_wire: true,
                ..Default::default()
            },
        ] {
            let mut serial = net_with(1, config.clone());
            serial.run_parallel(120);
            let want = fingerprint(&serial);
            for threads in [2, 8] {
                let mut par = net_with(threads, config.clone());
                let report = par.run_parallel(120);
                assert_eq!(report.meetings, 120);
                assert_eq!(report.threads, threads);
                assert_eq!(
                    fingerprint(&par),
                    want,
                    "nondeterminism at {threads} threads ({config:?})"
                );
            }
        }
    }

    #[test]
    fn rounds_batch_more_than_one_meeting() {
        let mut net = net_with(4, NetworkConfig::default());
        let report = net.run_parallel(100);
        assert_eq!(report.meetings, 100);
        assert!(
            report.rounds < 100,
            "9 peers should batch >1 meeting per round ({report:?})"
        );
        assert!(report.max_round >= 2);
        assert_eq!(net.meetings(), 100);
    }

    #[test]
    fn two_peer_network_degenerates_to_serial_rounds() {
        let (cg, frags) = small_world();
        let mut net = Network::new(
            frags.into_iter().take(2).collect(),
            cg.graph.num_nodes() as u64,
            NetworkConfig {
                threads: 4,
                ..Default::default()
            },
            5,
        );
        let report = net.run_parallel(10);
        assert_eq!(report.meetings, 10);
        assert_eq!(report.max_round, 1);
        assert_eq!(net.meetings(), 10);
    }

    #[test]
    fn parallel_run_converges_like_sequential() {
        use jxp_pagerank::{metrics, pagerank, PageRankConfig};
        let (cg, frags) = small_world();
        let truth = pagerank(&cg.graph, &PageRankConfig::default());
        let truth_ranking = jxp_core::evaluate::centralized_ranking(truth.scores());
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            7,
        );
        let early = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        net.run_parallel(200);
        let late = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        assert!(late < early, "footrule did not improve: {early} → {late}");
        assert!(late < 0.35, "footrule after 200 parallel meetings: {late}");
    }

    #[test]
    fn telemetry_is_deterministic_across_thread_counts() {
        use jxp_telemetry::{Event, EventRecord, TelemetryHub, TelemetrySnapshot};
        use std::sync::Arc;

        // `threads` in RoundExecuted reflects the actual worker count,
        // the one field that legitimately varies with the knob; zero it
        // before comparing streams.
        fn normalized(snap: &TelemetrySnapshot) -> Vec<EventRecord> {
            snap.events
                .iter()
                .cloned()
                .map(|mut r| {
                    if let Event::RoundExecuted { threads, .. } = &mut r.event {
                        *threads = 0;
                    }
                    r
                })
                .collect()
        }

        let config = NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            ..Default::default()
        };
        let run = |threads: usize| {
            let mut net = net_with(threads, config.clone());
            let hub = TelemetryHub::shared();
            net.attach_telemetry(Arc::clone(&hub));
            net.run_parallel(120);
            let totals = (
                net.bandwidth().total_bytes(),
                net.bandwidth().premeeting_bytes(),
            );
            (fingerprint(&net), hub.snapshot(), totals)
        };

        let (fp1, snap1, (total1, pre1)) = run(1);
        // Counters mirror the serial bandwidth log exactly.
        let counters = &snap1.metrics.counters;
        assert_eq!(counters["jxp_sim_meetings_total"], 120);
        assert_eq!(
            counters["jxp_sim_meeting_bytes_total"] + counters["jxp_sim_premeeting_bytes_total"],
            total1
        );
        assert_eq!(counters["jxp_sim_premeeting_bytes_total"], pre1);
        assert!(counters["jxp_sim_rounds_total"] > 0);
        // And instrumentation must not perturb the engine itself.
        let mut plain = net_with(1, config.clone());
        plain.run_parallel(120);
        assert_eq!(fingerprint(&plain), fp1, "telemetry perturbed the run");

        for threads in [2, 8] {
            let (fp, snap, totals) = run(threads);
            assert_eq!(fp, fp1, "nondeterminism at {threads} threads");
            assert_eq!(totals, (total1, pre1));
            assert_eq!(
                snap.metrics.counters, snap1.metrics.counters,
                "counter totals diverge at {threads} threads"
            );
            assert_eq!(
                normalized(&snap),
                normalized(&snap1),
                "event streams diverge at {threads} threads"
            );
        }
    }

    #[test]
    fn run_and_run_parallel_can_interleave() {
        // The engines share all state; switching between them mid-run
        // keeps every invariant (counters, bandwidth, selector state).
        let mut net = net_with(4, NetworkConfig::default());
        net.run(15);
        let report = net.run_parallel(30);
        net.run(5);
        assert_eq!(report.meetings, 30);
        assert_eq!(net.meetings(), 50);
        assert!(net.bandwidth().total_bytes() > 0);
    }
}
