//! Deterministic round-based parallel meeting engine.
//!
//! The paper's §3 premise is that JXP meetings happen "asynchronously and
//! independently of each other" — concurrency is the algorithm's native
//! shape, and two meetings that share no peer commute exactly: each one
//! reads and writes only its two peers' state. This module exploits that:
//!
//! 1. **Schedule serially.** A round is drawn on the simulator thread
//!    with the seeded RNG and the normal [`SelectionStrategy`] machinery
//!    (`initiator ~ U(peers)`, partner via `select_partner`), greedily
//!    accepting pairs until a drawn pair conflicts with the round's
//!    **matching** (shares an endpoint). The conflicting pair is not
//!    discarded — it carries over as the first meeting of the next round,
//!    so the executed meeting sequence is exactly the drawn sequence.
//! 2. **Execute concurrently.** The round's pairs are pairwise disjoint,
//!    so each meeting gets true `&mut JxpPeer` borrows of its two peers
//!    (handed out safely via take-from-slot splitting) and the meetings
//!    run on the persistent [`jxp_pool`] workers — dealt round-robin,
//!    with work-stealing of the dealt buckets (meetings commute, so
//!    placement only moves wall clock, never results).
//! 3. **Account serially.** Bandwidth, pre-meetings bookkeeping, gossip
//!    merges and the meeting counter replay in schedule order through the
//!    same code path as [`Network::step`].
//!
//! **Pipelining.** While round *k* executes on the pool, the scheduler
//! thread already draws round *k + 1*; once the draw is done it joins
//! the round's execution, and accounting of round *k* runs after the
//! round barrier. This is safe because the two overlapped phases touch
//! disjoint state — drawing reads/writes only the RNG and the selector
//! states, execution only the peers — and Rust's borrow splitting proves
//! it at compile time. The observable consequence: partner selection for
//! round *k + 1* sees the selector state as of round *k − 1*'s
//! accounting, so pre-meeting candidates observed while accounting round
//! *k* become eligible in round *k + 2* (one round later than the
//! pre-pipelining engine). Under the `Random` strategy, accounting does
//! not feed selection at all and the schedule is unchanged.
//!
//! **Determinism argument.** All randomness is consumed in the draw
//! phase on one thread, and the draw/execute/account interleaving on
//! that thread is fixed by program order — never by the worker count.
//! Execution touches pairwise-disjoint state, so its result is
//! independent of placement and interleaving (each meeting performs the
//! identical float operations it would perform alone); accounting is
//! serial in schedule order. Hence the final state is **bit-identical**
//! for every thread count, including `threads = 1` — which executes the
//! same canonical sequence inline without touching the pool. This is
//! verified by tests at 1/2/8 threads and enforced in CI.
//!
//! The only observable difference vs. the one-at-a-time [`Network::run`]
//! loop is *scheduling granularity*: within a round, partner selection
//! sees a slightly older selector state (see above). That matches the
//! paper's asynchronous model — a peer cannot observe the outcome of a
//! meeting that is still in flight.
//!
//! [`SelectionStrategy`]: jxp_core::selection::SelectionStrategy

use crate::sim::{meet_via_wire, Network};
use jxp_core::meeting::{meet, MeetingStats};
use jxp_core::selection::{select_partner, SelectionStrategy, SelectorState};
use jxp_core::JxpPeer;
use jxp_pagerank::par::resolve_threads;
use jxp_telemetry::Event;
use rand::rngs::StdRng;
use rand::Rng;

/// Summary of one [`Network::run_parallel`] invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelRunReport {
    /// Meetings executed (== the requested count).
    pub meetings: u64,
    /// Rounds the schedule was partitioned into.
    pub rounds: u64,
    /// Size of the largest round (meetings executed concurrently).
    pub max_round: usize,
    /// The resolved worker-thread knob (`NetworkConfig::threads` with
    /// `0` replaced by the machine's available parallelism). This is
    /// the **one** definition of "threads" the engine reports; each
    /// round actually engages `min(threads, pairs)` executors, a
    /// scheduling detail that is deliberately not part of any report
    /// or event (it varies per round).
    pub threads: usize,
    /// Meetings executed by a pool worker other than the one they were
    /// dealt to (work-stealing traffic; scheduling-dependent).
    pub stolen: u64,
}

/// Draw the next round: a greedy maximal matching of disjoint
/// `(initiator, partner)` pairs, at most `budget` of them. `pending`
/// carries the pair whose draw closed the previous round.
///
/// A free function over exactly the state drawing touches — the RNG and
/// the selector states — so the borrow checker proves it can overlap
/// with round execution (which touches only the peers).
fn draw_round(
    rng: &mut StdRng,
    states: &mut [SelectorState],
    strategy: &SelectionStrategy,
    n: usize,
    budget: usize,
    pending: &mut Option<(usize, usize)>,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    if budget == 0 {
        return pairs;
    }
    let mut busy = vec![false; n];
    if let Some((i, p)) = pending.take() {
        busy[i] = true;
        busy[p] = true;
        pairs.push((i, p));
    }
    while pairs.len() < budget {
        let initiator = rng.gen_range(0..n);
        let partner = select_partner(&mut states[initiator], strategy, initiator, n, rng);
        debug_assert_ne!(initiator, partner);
        if busy[initiator] || busy[partner] {
            // The matching is maximal for this draw sequence; the
            // conflicting pair opens the next round.
            *pending = Some((initiator, partner));
            break;
        }
        busy[initiator] = true;
        busy[partner] = true;
        pairs.push((initiator, partner));
    }
    pairs
}

/// Execute one round of pairwise-disjoint meetings on the shared
/// [`jxp_pool`] while `draw_next` runs on the calling thread, returning
/// the next round's pairs, this round's per-pair stats in schedule
/// order, and the pool's round stats.
fn execute_and_draw<D>(
    peers: &mut [JxpPeer],
    via_wire: bool,
    pairs: &[(usize, usize)],
    threads: usize,
    draw_next: D,
) -> (Vec<(usize, usize)>, Vec<MeetingStats>, jxp_pool::RoundStats)
where
    D: FnOnce() -> Vec<(usize, usize)>,
{
    let run_one = |a: &mut JxpPeer, b: &mut JxpPeer| {
        if via_wire {
            meet_via_wire(a, b)
        } else {
            meet(a, b)
        }
    };
    // Hand out disjoint `&mut JxpPeer` pairs: every peer reference
    // sits in a take-once slot, so a non-disjoint schedule is a
    // loud panic instead of undefined behavior.
    let mut slots: Vec<Option<&mut JxpPeer>> = peers.iter_mut().map(Some).collect();
    let mut results: Vec<Option<MeetingStats>> = pairs.iter().map(|_| None).collect();
    let tasks: Vec<(&mut JxpPeer, &mut JxpPeer, &mut Option<MeetingStats>)> = pairs
        .iter()
        .zip(results.iter_mut())
        .map(|(&(i, j), slot)| {
            let a = slots[i].take().expect("round pairs must be disjoint");
            let b = slots[j].take().expect("round pairs must be disjoint");
            (a, b, slot)
        })
        .collect();
    // Each task writes only its own two peers and its own stats slot —
    // placement-invariant by construction, as the pool requires. With
    // `threads = 1` the pool runs the round inline (exact serial replay).
    let (next, round) = jxp_pool::global().run_with(
        threads,
        tasks,
        |(a, b, slot)| *slot = Some(run_one(a, b)),
        draw_next,
    );
    let stats = results
        .into_iter()
        .map(|r| r.expect("every pair executed"))
        .collect();
    (next, stats, round)
}

impl Network {
    /// Run `count` meetings through the round-based parallel engine,
    /// using [`NetworkConfig::threads`](crate::sim::NetworkConfig)
    /// workers (`0` = available parallelism).
    ///
    /// The resulting scores, bandwidth log and selector statistics are
    /// **bit-identical** for every thread count (see the module docs for
    /// the argument); only wall-clock time differs.
    ///
    /// # Panics
    /// Panics if the network holds fewer than two peers — a meeting
    /// needs a distinct partner, so no schedule can be drawn.
    pub fn run_parallel(&mut self, count: usize) -> ParallelRunReport {
        let n = self.peers.len();
        assert!(
            n >= 2,
            "run_parallel needs at least two peers (got {n}): every meeting \
             requires a partner distinct from its initiator"
        );
        let threads = resolve_threads(self.config.threads);
        let mut report = ParallelRunReport {
            threads,
            ..Default::default()
        };
        let mut pending = None;
        let mut drawn = 0usize;
        let mut pairs = draw_round(
            &mut self.rng,
            &mut self.states,
            &self.config.strategy,
            n,
            count,
            &mut pending,
        );
        drawn += pairs.len();
        while !pairs.is_empty() {
            let started = std::time::Instant::now();
            let budget = count - drawn;
            let queue_depth = self.telemetry.as_ref().map(|_| jxp_pool::global().queued());
            // Disjoint field borrows: execution mutates `peers`, the
            // overlapped draw mutates `rng` + `states` — never both.
            let (next, stats, round) = {
                let Network {
                    peers,
                    states,
                    rng,
                    config,
                    ..
                } = self;
                let strategy = &config.strategy;
                execute_and_draw(peers, config.route_via_wire, &pairs, threads, || {
                    draw_round(rng, states, strategy, n, budget, &mut pending)
                })
            };
            drawn += next.len();
            let elapsed = started.elapsed().as_secs_f64();
            for (&(initiator, partner), s) in pairs.iter().zip(&stats) {
                self.account_meeting(initiator, partner, s);
            }
            if let Some(t) = &self.telemetry {
                t.rounds.inc();
                // Matching width is schedule-determined (identical at
                // every thread count). Wall clock, steal traffic and
                // pool backlog are scheduling-dependent and live only
                // in histograms, never in counters or events.
                t.round_width.observe(pairs.len() as f64);
                t.round_seconds.observe(elapsed);
                t.pool_steals.observe(round.stolen as f64);
                if let Some(depth) = queue_depth {
                    t.pool_queue_depth.observe(depth as f64);
                }
                t.hub.events().record(Event::RoundExecuted {
                    round: report.rounds,
                    pairs: pairs.len() as u64,
                });
            }
            report.rounds += 1;
            report.max_round = report.max_round.max(pairs.len());
            report.meetings += pairs.len() as u64;
            report.stolen += round.stolen;
            pairs = next;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::CrawlerParams;
    use crate::sim::NetworkConfig;
    use jxp_core::selection::{PreMeetingsConfig, SelectionStrategy};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_world() -> (CategorizedGraph, Vec<Subgraph>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 3,
                nodes_per_category: 80,
                intra_out_per_node: 4,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(21),
        );
        let params = CrawlerParams {
            peers_per_category: 3,
            seeds_per_peer: 4,
            max_depth: 3,
            ..Default::default()
        };
        let frags = crate::assign::assign_by_crawlers(&cg, &params, &mut StdRng::seed_from_u64(22));
        (cg, frags)
    }

    fn net_with(threads: usize, config: NetworkConfig) -> Network {
        let (cg, frags) = small_world();
        let config = NetworkConfig { threads, ..config };
        Network::new(frags, cg.graph.num_nodes() as u64, config, 77)
    }

    type Fingerprint = (Vec<Vec<u64>>, Vec<u64>, (usize, usize, usize, usize));

    fn fingerprint(net: &Network) -> Fingerprint {
        let scores: Vec<Vec<u64>> = net
            .peers()
            .iter()
            .map(|p| p.scores().iter().map(|s| s.to_bits()).collect())
            .collect();
        let history: Vec<u64> = (0..net.num_peers())
            .flat_map(|p| net.bandwidth().peer_history(p).iter().copied())
            .collect();
        (scores, history, net.selection_stats())
    }

    #[test]
    fn parallel_run_is_bit_identical_across_thread_counts() {
        for config in [
            NetworkConfig::default(),
            NetworkConfig {
                strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
                ..Default::default()
            },
            NetworkConfig {
                estimate_n: true,
                ..Default::default()
            },
            NetworkConfig {
                route_via_wire: true,
                ..Default::default()
            },
        ] {
            let mut serial = net_with(1, config.clone());
            serial.run_parallel(120);
            let want = fingerprint(&serial);
            for threads in [2, 8] {
                let mut par = net_with(threads, config.clone());
                let report = par.run_parallel(120);
                assert_eq!(report.meetings, 120);
                assert_eq!(report.threads, threads);
                assert_eq!(
                    fingerprint(&par),
                    want,
                    "nondeterminism at {threads} threads ({config:?})"
                );
            }
        }
    }

    #[test]
    fn rounds_batch_more_than_one_meeting() {
        let mut net = net_with(4, NetworkConfig::default());
        let report = net.run_parallel(100);
        assert_eq!(report.meetings, 100);
        assert!(
            report.rounds < 100,
            "9 peers should batch >1 meeting per round ({report:?})"
        );
        assert!(report.max_round >= 2);
        assert_eq!(net.meetings(), 100);
    }

    #[test]
    fn two_peer_network_degenerates_to_serial_rounds() {
        let (cg, frags) = small_world();
        let mut net = Network::new(
            frags.into_iter().take(2).collect(),
            cg.graph.num_nodes() as u64,
            NetworkConfig {
                threads: 4,
                ..Default::default()
            },
            5,
        );
        let report = net.run_parallel(10);
        assert_eq!(report.meetings, 10);
        assert_eq!(report.max_round, 1);
        assert_eq!(net.meetings(), 10);
    }

    #[test]
    #[should_panic(expected = "at least two peers")]
    fn single_peer_network_cannot_run_parallel() {
        // `Network::new` already rejects < 2 fragments, but churn-style
        // surgery (or a future constructor) could leave a degenerate
        // network; `run_parallel` must fail loudly instead of feeding
        // `select_partner` an empty candidate set (a hang or a
        // context-free debug_assert deep in the selector).
        let mut net = net_with(4, NetworkConfig::default());
        while net.peers.len() > 1 {
            net.peers.pop();
            net.synopses.pop();
            net.states.pop();
        }
        let _ = net.run_parallel(5);
    }

    #[test]
    fn parallel_run_converges_like_sequential() {
        use jxp_pagerank::{metrics, pagerank, PageRankConfig};
        let (cg, frags) = small_world();
        let truth = pagerank(&cg.graph, &PageRankConfig::default());
        let truth_ranking = jxp_core::evaluate::centralized_ranking(truth.scores());
        let mut net = Network::new(
            frags,
            cg.graph.num_nodes() as u64,
            NetworkConfig::default(),
            7,
        );
        let early = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        net.run_parallel(200);
        let late = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        assert!(late < early, "footrule did not improve: {early} → {late}");
        assert!(late < 0.35, "footrule after 200 parallel meetings: {late}");
    }

    #[test]
    fn telemetry_is_deterministic_across_thread_counts() {
        use jxp_telemetry::{TelemetryHub, TelemetrySnapshot};
        use std::sync::Arc;

        let config = NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            ..Default::default()
        };
        let run = |threads: usize| -> (Fingerprint, TelemetrySnapshot, (u64, u64)) {
            let mut net = net_with(threads, config.clone());
            let hub = TelemetryHub::shared();
            net.attach_telemetry(Arc::clone(&hub));
            net.run_parallel(120);
            let totals = (
                net.bandwidth().total_bytes(),
                net.bandwidth().premeeting_bytes(),
            );
            (fingerprint(&net), hub.snapshot(), totals)
        };

        let (fp1, snap1, (total1, pre1)) = run(1);
        // Counters mirror the serial bandwidth log exactly.
        let counters = &snap1.metrics.counters;
        assert_eq!(counters["jxp_sim_meetings_total"], 120);
        assert_eq!(
            counters["jxp_sim_meeting_bytes_total"] + counters["jxp_sim_premeeting_bytes_total"],
            total1
        );
        assert_eq!(counters["jxp_sim_premeeting_bytes_total"], pre1);
        assert!(counters["jxp_sim_rounds_total"] > 0);
        // And instrumentation must not perturb the engine itself.
        let mut plain = net_with(1, config.clone());
        plain.run_parallel(120);
        assert_eq!(fingerprint(&plain), fp1, "telemetry perturbed the run");

        for threads in [2, 8] {
            let (fp, snap, totals) = run(threads);
            assert_eq!(fp, fp1, "nondeterminism at {threads} threads");
            assert_eq!(totals, (total1, pre1));
            assert_eq!(
                snap.metrics.counters, snap1.metrics.counters,
                "counter totals diverge at {threads} threads"
            );
            // Events carry only schedule-determined fields, so the
            // streams compare bit-for-bit — no normalization. (The
            // worker count lives in reports and histograms instead;
            // see ParallelRunReport::threads.)
            assert_eq!(
                snap.events, snap1.events,
                "event streams diverge at {threads} threads"
            );
        }
    }

    #[test]
    fn run_and_run_parallel_can_interleave() {
        // The engines share all state; switching between them mid-run
        // keeps every invariant (counters, bandwidth, selector state).
        // Repeated `run_parallel` calls also reuse the same persistent
        // pool workers — interleaving engines must not wedge or leak
        // rounds (pool lifecycle coverage through the public API).
        let mut net = net_with(4, NetworkConfig::default());
        net.run(15);
        let report = net.run_parallel(30);
        net.run(5);
        let again = net.run_parallel(25);
        assert_eq!(report.meetings, 30);
        assert_eq!(again.meetings, 25);
        assert_eq!(net.meetings(), 75);
        assert!(net.bandwidth().total_bytes() > 0);
    }

    #[test]
    fn pipelined_schedule_is_reproducible_for_same_seed() {
        // Two identical networks must draw the identical round
        // structure — the pipelined draw consumes the RNG on the
        // scheduler thread only, so the schedule is a pure function of
        // the seed regardless of pool scheduling.
        let run = |threads: usize| {
            let mut net = net_with(threads, NetworkConfig::default());
            let report = net.run_parallel(150);
            (report.rounds, report.max_round, fingerprint(&net))
        };
        let (rounds1, max1, fp1) = run(1);
        for threads in [2, 8] {
            let (rounds, max_round, fp) = run(threads);
            assert_eq!((rounds, max_round), (rounds1, max1));
            assert_eq!(fp, fp1);
        }
    }
}
