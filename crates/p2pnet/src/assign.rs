//! Assigning pages to peers (§6.1 and §6.3).
//!
//! §6.1: "Pages were assigned to peers by simulating a crawler in each
//! peer, starting with a set of random seed pages from one of the thematic
//! categories and following the links and fetching nodes in a
//! breadth-first approach, up to a certain predefined depth. […] During
//! the crawling process, when the peer encounters a page that does not
//! belong to its category, it randomly decides to follow links from this
//! page or not with equal probabilities."
//!
//! The resulting fragments **overlap arbitrarily** — the very situation
//! JXP exists for.

use jxp_webgraph::generators::CategorizedGraph;
use jxp_webgraph::{FxHashSet, PageId, Subgraph};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// Parameters of the simulated focused crawlers.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlerParams {
    /// Peers per thematic category (the paper uses 10 × 10 categories).
    pub peers_per_category: usize,
    /// Random seed pages each crawler starts from.
    pub seeds_per_peer: usize,
    /// BFS depth limit.
    pub max_depth: usize,
    /// Hard cap on pages per peer (`None` = depth-limited only).
    pub max_pages: Option<usize>,
    /// Log-scale jitter applied per peer to `max_pages`: each crawler's
    /// cap is multiplied by `exp(U(−jitter, jitter))`. Real peers differ
    /// widely in crawl budget (the paper's Table 1 spans 5,505-page to
    /// 269-page peers); 0.0 disables.
    pub max_pages_jitter: f64,
    /// Probability of following the links of an off-category page
    /// (the paper uses "equal probabilities", i.e. 0.5).
    pub off_category_follow_prob: f64,
}

impl Default for CrawlerParams {
    fn default() -> Self {
        CrawlerParams {
            peers_per_category: 10,
            seeds_per_peer: 5,
            max_depth: 4,
            max_pages: None,
            max_pages_jitter: 0.0,
            off_category_follow_prob: 0.5,
        }
    }
}

/// Simulate one focused crawler: BFS from `seeds`, staying `max_depth`
/// hops deep, expanding off-category pages with the configured
/// probability. Returns the set of fetched pages.
pub fn crawl(
    cg: &CategorizedGraph,
    category: usize,
    seeds: &[PageId],
    params: &CrawlerParams,
    rng: &mut impl Rng,
) -> Vec<PageId> {
    let mut fetched: FxHashSet<PageId> = FxHashSet::default();
    let mut queue: VecDeque<(PageId, usize)> = VecDeque::new();
    for &s in seeds {
        if fetched.insert(s) {
            queue.push_back((s, 0));
        }
    }
    while let Some((page, depth)) = queue.pop_front() {
        if let Some(cap) = params.max_pages {
            if fetched.len() >= cap {
                break;
            }
        }
        if depth >= params.max_depth {
            continue;
        }
        // Off-category pages are fetched but expanded only half the time.
        let expand = cg.category(page) == category || rng.gen_bool(params.off_category_follow_prob);
        if !expand {
            continue;
        }
        for t in cg.graph.successors(page) {
            if fetched.len() >= params.max_pages.unwrap_or(usize::MAX) {
                break;
            }
            if fetched.insert(t) {
                queue.push_back((t, depth + 1));
            }
        }
    }
    // jxp-analyze: allow(D1, reason = "drained ids are sorted on the next line before anything consumes them")
    let mut pages: Vec<PageId> = fetched.into_iter().collect();
    pages.sort_unstable();
    pages
}

/// The full §6.1 assignment: `num_categories × peers_per_category` peers,
/// each crawling from random seeds of its category. Fragments may overlap
/// within and across categories.
pub fn assign_by_crawlers(
    cg: &CategorizedGraph,
    params: &CrawlerParams,
    rng: &mut impl Rng,
) -> Vec<Subgraph> {
    let mut fragments = Vec::with_capacity(cg.num_categories * params.peers_per_category);
    for category in 0..cg.num_categories {
        let pool: Vec<PageId> = cg.pages_in_category(category).collect();
        assert!(
            pool.len() >= params.seeds_per_peer,
            "category {category} has too few pages for seeding"
        );
        for _ in 0..params.peers_per_category {
            let seeds: Vec<PageId> = pool
                .choose_multiple(rng, params.seeds_per_peer)
                .copied()
                .collect();
            let mut peer_params = params.clone();
            if params.max_pages_jitter > 0.0 {
                if let Some(cap) = params.max_pages {
                    let j = params.max_pages_jitter;
                    let mult = rng.gen_range(-j..j).exp();
                    peer_params.max_pages =
                        Some(((cap as f64 * mult).round() as usize).max(params.seeds_per_peer));
                }
            }
            let pages = crawl(cg, category, &seeds, &peer_params, rng);
            fragments.push(Subgraph::from_pages(&cg.graph, pages));
        }
    }
    fragments
}

/// The §6.3 Minerva layout: each category's page set is split into
/// `fragments_per_category` disjoint fragments; one peer is created per
/// fragment, hosting **all but that one** fragment of its category
/// ("each of the 40 peers hosts 3 out of 4 fragments from the same topic,
/// thus forming high overlap among same-topic peers").
pub fn minerva_fragments(
    cg: &CategorizedGraph,
    fragments_per_category: usize,
    rng: &mut impl Rng,
) -> Vec<Subgraph> {
    assert!(fragments_per_category >= 2, "need at least two fragments");
    let mut peers = Vec::with_capacity(cg.num_categories * fragments_per_category);
    for category in 0..cg.num_categories {
        let mut pool: Vec<PageId> = cg.pages_in_category(category).collect();
        pool.shuffle(rng);
        let chunk = pool.len().div_ceil(fragments_per_category);
        let fragments: Vec<&[PageId]> = pool.chunks(chunk.max(1)).collect();
        for omit in 0..fragments_per_category {
            let pages: Vec<PageId> = fragments
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != omit)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            peers.push(Subgraph::from_pages(&cg.graph, pages));
        }
    }
    peers
}

/// Fraction of graph pages covered by at least one fragment.
pub fn coverage(fragments: &[Subgraph], total_pages: usize) -> f64 {
    let mut seen: FxHashSet<PageId> = FxHashSet::default();
    for f in fragments {
        seen.extend(f.pages().iter().copied());
    }
    seen.len() as f64 / total_pages as f64
}

/// Mean pairwise overlap (Jaccard) between fragments — the quantity that
/// distinguishes the JXP setting from disjoint-partition approaches.
pub fn mean_pairwise_jaccard(fragments: &[Subgraph]) -> f64 {
    let sets: Vec<FxHashSet<PageId>> = fragments
        .iter()
        .map(|f| f.pages().iter().copied().collect())
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            let inter = sets[i].intersection(&sets[j]).count();
            let union = sets[i].len() + sets[j].len() - inter;
            if union > 0 {
                total += inter as f64 / union as f64;
            }
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> CategorizedGraph {
        let params = CategorizedParams {
            num_categories: 4,
            nodes_per_category: 200,
            intra_out_per_node: 4,
            cross_fraction: 0.15,
        };
        CategorizedGraph::generate(&params, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn crawl_respects_page_cap() {
        let cg = graph();
        let seeds: Vec<PageId> = cg.pages_in_category(0).take(3).collect();
        let params = CrawlerParams {
            max_pages: Some(50),
            max_depth: 10,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let pages = crawl(&cg, 0, &seeds, &params, &mut rng);
        assert!(pages.len() <= 50);
        assert!(pages.len() >= 3);
    }

    #[test]
    fn crawl_is_mostly_on_category() {
        let cg = graph();
        // Seed from *late* nodes of the category: in the preferential-
        // attachment process out-links point backwards, so the oldest
        // nodes have almost no intra-category out-links and a crawl from
        // them can only escape through cross links.
        let all: Vec<PageId> = cg.pages_in_category(2).collect();
        let seeds: Vec<PageId> = all[all.len() - 10..].to_vec();
        // Shallow depth: deep crawls funnel into the old hub nodes (which
        // have no out-links to continue on-category) while off-category
        // expansion keeps finding fresh blocks, so focus decays with depth.
        let params = CrawlerParams {
            max_depth: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let pages = crawl(&cg, 2, &seeds, &params, &mut rng);
        let on = pages.iter().filter(|&&p| cg.category(p) == 2).count();
        assert!(
            on as f64 / pages.len() as f64 > 0.5,
            "{on}/{} on-category",
            pages.len()
        );
    }

    #[test]
    fn assignment_produces_overlapping_fragments() {
        let cg = graph();
        let params = CrawlerParams {
            peers_per_category: 3,
            seeds_per_peer: 4,
            max_depth: 3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let fragments = assign_by_crawlers(&cg, &params, &mut rng);
        assert_eq!(fragments.len(), 12);
        assert!(fragments.iter().all(|f| f.num_pages() > 0));
        // Same-category crawlers share hub pages: overlap must be real.
        assert!(
            mean_pairwise_jaccard(&fragments[..3]) > 0.01,
            "jaccard {}",
            mean_pairwise_jaccard(&fragments[..3])
        );
    }

    #[test]
    fn assignment_is_deterministic_for_seed() {
        let cg = graph();
        let params = CrawlerParams {
            peers_per_category: 2,
            ..Default::default()
        };
        let f1 = assign_by_crawlers(&cg, &params, &mut StdRng::seed_from_u64(9));
        let f2 = assign_by_crawlers(&cg, &params, &mut StdRng::seed_from_u64(9));
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(f2.iter()) {
            assert_eq!(a.pages(), b.pages());
        }
    }

    #[test]
    fn minerva_layout_has_high_same_topic_overlap() {
        let cg = graph();
        let mut rng = StdRng::seed_from_u64(5);
        let peers = minerva_fragments(&cg, 4, &mut rng);
        assert_eq!(peers.len(), 16);
        // Peers of the same category share 2 of 4 fragments pairwise:
        // Jaccard = 2/4 ÷ (3+3−2)/4 = 0.5.
        let j = mean_pairwise_jaccard(&peers[..4]);
        assert!((j - 0.5).abs() < 0.05, "jaccard {j}");
        // Same-category peers jointly cover the whole category.
        let cat_pages = cg.pages_in_category(0).count();
        let covered = coverage(&peers[..4], cg.graph.num_nodes());
        assert!(covered * cg.graph.num_nodes() as f64 >= cat_pages as f64);
    }

    #[test]
    fn minerva_each_peer_hosts_three_quarters() {
        let cg = graph();
        let mut rng = StdRng::seed_from_u64(6);
        let peers = minerva_fragments(&cg, 4, &mut rng);
        let cat_size = cg.pages_in_category(0).count();
        for p in &peers[..4] {
            let frac = p.num_pages() as f64 / cat_size as f64;
            assert!((frac - 0.75).abs() < 0.05, "fraction {frac}");
        }
    }

    #[test]
    fn coverage_of_full_assignment() {
        let cg = graph();
        let fragments = vec![Subgraph::from_pages(
            &cg.graph,
            cg.graph.nodes().collect::<Vec<_>>(),
        )];
        assert!((coverage(&fragments, cg.graph.num_nodes()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_of_identical_fragments_is_one() {
        let cg = graph();
        let f = Subgraph::from_pages(&cg.graph, (0..50).map(PageId));
        assert!((mean_pairwise_jaccard(&[f.clone(), f]) - 1.0).abs() < 1e-12);
    }
}
