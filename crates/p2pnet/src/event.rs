//! Discrete-event **asynchronous** network simulation.
//!
//! The paper's meetings are asynchronous: "The information is then
//! combined by both of the two meeting peers, asynchronously and
//! independently of each other" (§3), over a real network with latency
//! and loss. [`sim::Network`](crate::sim::Network) idealizes this as an
//! atomic pairwise exchange; this module drops the idealization: peers
//! initiate meetings on their own (exponential) clocks, payloads travel
//! with latency, may be lost, and each side absorbs whatever arrives,
//! whenever it arrives. JXP must keep converging — and the integration
//! tests verify it does, which is the substance behind the paper's claim
//! that the algorithm "has been designed to handle high dynamics".

use jxp_core::{JxpConfig, JxpPeer, MeetingPayload};
use jxp_pagerank::Ranking;
use jxp_webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Timing/loss model of the asynchronous network.
#[derive(Debug, Clone)]
pub struct EventSimConfig {
    /// JXP parameters shared by all peers.
    pub jxp: JxpConfig,
    /// Mean time between meeting initiations *per peer* (exponential).
    pub mean_meeting_interval: f64,
    /// Mean one-way message latency (exponential).
    pub mean_latency: f64,
    /// Probability that any single message is lost in transit.
    pub drop_probability: f64,
}

impl Default for EventSimConfig {
    fn default() -> Self {
        EventSimConfig {
            jxp: JxpConfig::default(),
            mean_meeting_interval: 10.0,
            mean_latency: 0.5,
            drop_probability: 0.0,
        }
    }
}

#[derive(Debug)]
enum EventKind {
    /// Peer `initiator` starts a meeting with a random partner.
    Initiate { initiator: usize },
    /// A payload arrives at `to`; if `expects_reply`, the receiver sends
    /// its own payload back (completing the bidirectional exchange).
    Deliver {
        to: usize,
        from: usize,
        payload: Box<MeetingPayload>,
        expects_reply: bool,
    },
}

struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, seq): reverse the natural order.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Statistics of an asynchronous run.
#[derive(Debug, Clone, Default)]
pub struct EventStats {
    /// Payloads successfully delivered and absorbed.
    pub delivered: u64,
    /// Payloads lost in transit.
    pub dropped: u64,
    /// Meetings initiated.
    pub initiated: u64,
    /// Bytes delivered (request and reply directions both count here,
    /// each at its own delivery).
    pub bytes: u64,
    /// Bytes put on the wire by senders — includes messages later lost,
    /// because the sender pays for them either way. With zero loss this
    /// equals `bytes` exactly.
    pub bytes_sent: u64,
}

/// An asynchronous, discrete-event JXP network.
pub struct EventNetwork {
    peers: Vec<JxpPeer>,
    config: EventSimConfig,
    clock: f64,
    seq: u64,
    queue: BinaryHeap<Event>,
    rng: StdRng,
    stats: EventStats,
}

impl EventNetwork {
    /// Build the network and schedule every peer's first initiation.
    ///
    /// # Panics
    /// Panics with fewer than two fragments or invalid timing parameters.
    pub fn new(fragments: Vec<Subgraph>, n_total: u64, config: EventSimConfig, seed: u64) -> Self {
        assert!(fragments.len() >= 2, "a network needs at least two peers");
        assert!(
            config.mean_meeting_interval > 0.0,
            "interval must be positive"
        );
        assert!(config.mean_latency >= 0.0, "latency must be non-negative");
        assert!(
            (0.0..1.0).contains(&config.drop_probability),
            "drop probability must be in [0, 1)"
        );
        let peers: Vec<JxpPeer> = fragments
            .into_iter()
            .map(|f| JxpPeer::new(f, n_total, config.jxp.clone()))
            .collect();
        let mut net = EventNetwork {
            peers,
            config,
            clock: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: EventStats::default(),
        };
        for p in 0..net.peers.len() {
            let delay = net.exponential(net.config.mean_meeting_interval);
            net.push(delay, EventKind::Initiate { initiator: p });
        }
        net
    }

    fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    fn push(&mut self, delay: f64, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Event {
            time: self.clock + delay,
            seq: self.seq,
            kind,
        });
    }

    fn send(&mut self, from: usize, to: usize, expects_reply: bool) {
        let payload = self.peers[from].payload();
        self.stats.bytes_sent += payload.wire_size() as u64;
        if self.rng.gen_bool(self.config.drop_probability) {
            self.stats.dropped += 1;
            return;
        }
        let latency = self.exponential(self.config.mean_latency);
        self.push(
            latency,
            EventKind::Deliver {
                to,
                from,
                payload: Box::new(payload),
                expects_reply,
            },
        );
    }

    /// Process one event. Returns `false` only if the queue is empty
    /// (cannot happen: initiations reschedule themselves).
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.clock, "time went backwards");
        self.clock = ev.time;
        match ev.kind {
            EventKind::Initiate { initiator } => {
                self.stats.initiated += 1;
                let n = self.peers.len();
                let mut partner = self.rng.gen_range(0..n - 1);
                if partner >= initiator {
                    partner += 1;
                }
                self.send(initiator, partner, true);
                // Schedule this peer's next initiation.
                let delay = self.exponential(self.config.mean_meeting_interval);
                self.push(delay, EventKind::Initiate { initiator });
            }
            EventKind::Deliver {
                to,
                from,
                payload,
                expects_reply,
            } => {
                self.stats.delivered += 1;
                self.stats.bytes += payload.wire_size() as u64;
                self.peers[to].absorb(&payload);
                if expects_reply {
                    self.send(to, from, false);
                }
            }
        }
        true
    }

    /// Run until the simulated clock passes `t`.
    pub fn run_until(&mut self, t: f64) {
        while self.clock < t && self.step() {}
    }

    /// Run exactly `count` events.
    pub fn run_events(&mut self, count: usize) {
        for _ in 0..count {
            if !self.step() {
                break;
            }
        }
    }

    /// Current simulated time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The peers (read-only).
    pub fn peers(&self) -> &[JxpPeer] {
        &self.peers
    }

    /// Run statistics.
    pub fn stats(&self) -> &EventStats {
        &self.stats
    }

    /// The network-wide total ranking (§6.2 evaluation construction).
    pub fn total_ranking(&self) -> Ranking {
        jxp_core::evaluate::total_ranking(self.peers.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_pagerank::{metrics, pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::PageId;

    fn world() -> (CategorizedGraph, Vec<Subgraph>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 3,
                nodes_per_category: 70,
                intra_out_per_node: 3,
                cross_fraction: 0.2,
            },
            &mut StdRng::seed_from_u64(61),
        );
        // Overlapping random slices covering every page.
        let n = cg.graph.num_nodes() as u32;
        let mut rng = StdRng::seed_from_u64(62);
        let mut frags: Vec<Vec<PageId>> = vec![Vec::new(); 8];
        for p in 0..n {
            frags[rng.gen_range(0..8usize)].push(PageId(p));
            if rng.gen_bool(0.3) {
                frags[rng.gen_range(0..8usize)].push(PageId(p));
            }
        }
        let subs = frags
            .into_iter()
            .map(|ps| Subgraph::from_pages(&cg.graph, ps))
            .collect();
        (cg, subs)
    }

    #[test]
    fn clock_advances_and_events_flow() {
        let (cg, frags) = world();
        let mut net = EventNetwork::new(
            frags,
            cg.graph.num_nodes() as u64,
            EventSimConfig::default(),
            63,
        );
        net.run_events(200);
        assert!(net.clock() > 0.0);
        assert!(net.stats().initiated > 0);
        assert!(net.stats().delivered > 0);
        assert!(net.stats().bytes > 0);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn lossless_sent_equals_delivered_bytes() {
        let (cg, frags) = world();
        let mut net = EventNetwork::new(
            frags,
            cg.graph.num_nodes() as u64,
            EventSimConfig::default(), // drop_probability = 0
            67,
        );
        // Drain in-flight messages too: run until the queue holds only
        // Initiate events by stepping well past the last delivery.
        net.run_events(501);
        let s = net.stats().clone();
        assert!(s.bytes_sent > 0);
        // Everything sent is eventually delivered; any gap is messages
        // still in flight, which is bounded by latency — so pin the two
        // counters after the in-flight window has drained.
        net.run_until(net.clock() + 100.0 * EventSimConfig::default().mean_latency);
        let s = net.stats().clone();
        assert_eq!(
            s.bytes_sent,
            s.bytes + in_flight_bytes(&net),
            "sender-side and receiver-side accounting diverged"
        );
    }

    /// Bytes of Deliver events still queued (sent but not yet received).
    fn in_flight_bytes(net: &EventNetwork) -> u64 {
        net.queue
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Deliver { payload, .. } => Some(payload.wire_size() as u64),
                _ => None,
            })
            .sum()
    }

    #[test]
    fn lost_messages_cost_the_sender() {
        let (cg, frags) = world();
        let mut net = EventNetwork::new(
            frags,
            cg.graph.num_nodes() as u64,
            EventSimConfig {
                drop_probability: 0.5,
                ..Default::default()
            },
            68,
        );
        net.run_events(400);
        let s = net.stats();
        assert!(s.dropped > 0, "loss model never fired");
        assert!(
            s.bytes_sent > s.bytes,
            "lost messages must still be charged to the sender: sent {} vs delivered {}",
            s.bytes_sent,
            s.bytes
        );
    }

    #[test]
    fn converges_under_latency() {
        let (cg, frags) = world();
        let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let truth_ranking = jxp_core::evaluate::centralized_ranking(&truth);
        let mut net = EventNetwork::new(
            frags,
            cg.graph.num_nodes() as u64,
            EventSimConfig {
                mean_latency: 5.0, // latency at half the meeting interval
                ..Default::default()
            },
            64,
        );
        let before = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        net.run_until(2_000.0);
        let after = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        assert!(after < before, "no improvement: {before} → {after}");
        assert!(after < 0.1, "footrule after async run: {after}");
    }

    #[test]
    fn survives_heavy_message_loss() {
        let (cg, frags) = world();
        let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let truth_ranking = jxp_core::evaluate::centralized_ranking(&truth);
        let mut net = EventNetwork::new(
            frags,
            cg.graph.num_nodes() as u64,
            EventSimConfig {
                drop_probability: 0.5,
                ..Default::default()
            },
            65,
        );
        net.run_until(3_000.0);
        assert!(net.stats().dropped > 0, "loss model never fired");
        for p in net.peers() {
            jxp_core::invariants::check_mass_conservation(p).unwrap();
        }
        let f = metrics::footrule_distance(&net.total_ranking(), &truth_ranking, 50);
        assert!(f < 0.15, "footrule under 50% loss: {f}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (cg, frags) = world();
        let run = |seed| {
            let mut net = EventNetwork::new(
                frags.clone(),
                cg.graph.num_nodes() as u64,
                EventSimConfig::default(),
                seed,
            );
            net.run_events(300);
            (
                net.clock(),
                net.stats().delivered,
                net.peers()[0].scores().to_vec(),
            )
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        let c = run(10);
        assert_ne!(a.0, c.0, "different seeds should give different clocks");
    }

    #[test]
    fn async_matches_synchronous_accuracy() {
        // The idealized synchronous simulator and the async one must land
        // in the same accuracy regime for comparable meeting counts.
        let (cg, frags) = world();
        let n = cg.graph.num_nodes() as u64;
        let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let truth_ranking = jxp_core::evaluate::centralized_ranking(&truth);

        let mut sync_net =
            crate::sim::Network::new(frags.clone(), n, crate::sim::NetworkConfig::default(), 66);
        sync_net.run(200);
        let sync_f = metrics::footrule_distance(&sync_net.total_ranking(), &truth_ranking, 50);

        let mut async_net = EventNetwork::new(frags, n, EventSimConfig::default(), 66);
        while async_net.stats().initiated < 200 {
            async_net.step();
        }
        let async_f = metrics::footrule_distance(&async_net.total_ranking(), &truth_ranking, 50);
        assert!(
            (async_f - sync_f).abs() < 0.1,
            "async {async_f} vs sync {sync_f}"
        );
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_drop_probability_panics() {
        let (cg, frags) = world();
        let _ = EventNetwork::new(
            frags,
            cg.graph.num_nodes() as u64,
            EventSimConfig {
                drop_probability: 1.0,
                ..Default::default()
            },
            1,
        );
    }
}
