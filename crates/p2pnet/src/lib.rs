#![deny(missing_docs)]
//! # jxp-p2pnet
//!
//! The P2P network simulator the JXP evaluation runs on. The paper ran
//! "all 100 peers on a single PC" (§6.1) — this crate is that machinery:
//!
//! * [`assign`] — the §6.1 page→peer assignment: one simulated focused
//!   crawler per peer (BFS from thematic seed pages, off-category links
//!   followed with probability ½), plus the §6.3 Minerva fragment layout;
//! * [`sim`] — the [`Network`]: owns the peers, schedules
//!   meetings (random or pre-meetings strategy), tracks the global meeting
//!   counter that is the x-axis of every convergence figure;
//! * [`bandwidth`] — per-meeting message-size logging with the quartile
//!   summaries of Figures 11/12 and cumulative totals;
//! * [`churn`] — peer join/leave dynamics (§5.3: JXP "has been designed
//!   to handle high dynamics"), including a durable mode where departing
//!   peers checkpoint into a `jxp-store` and rejoin with their state;
//! * [`event`] — a discrete-event **asynchronous** simulator (latency,
//!   message loss, independent peer clocks) for stress-testing beyond the
//!   idealized atomic meetings;
//! * [`count`] — gossip-based estimation of the global page count `N`
//!   with duplicate-insensitive FM sketches (the "work without knowing N"
//!   modification mentioned in §3);
//! * [`parallel`] — the deterministic round-based parallel meeting
//!   engine: meetings on disjoint peer pairs run concurrently with
//!   results bit-identical to the sequential replay of the same schedule.

pub mod assign;
pub mod bandwidth;
pub mod churn;
pub mod count;
pub mod event;
pub mod parallel;
pub mod sim;

pub use assign::{assign_by_crawlers, minerva_fragments, CrawlerParams};
pub use bandwidth::BandwidthLog;
pub use churn::{ChurnEvent, ChurnModel, DurableChurn};
pub use parallel::ParallelRunReport;
pub use sim::{Network, NetworkConfig};
