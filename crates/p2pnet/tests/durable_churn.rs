//! Durable churn through the crate's public API: departing peers
//! checkpoint into a `jxp-store`, rejoiners resume with their state, and
//! the whole scenario — parallel rounds, pre-meetings selection, real
//! wire framing — stays bit-identical across thread counts and across
//! store backends (in-memory vs on-disk).

use jxp_core::selection::{PreMeetingsConfig, SelectionStrategy};
use jxp_p2pnet::assign::{assign_by_crawlers, CrawlerParams};
use jxp_p2pnet::{ChurnEvent, ChurnModel, DurableChurn, Network, NetworkConfig};
use jxp_store::{DirStore, MemStore, StateStore};
use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp_webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> (CategorizedGraph, Vec<Subgraph>) {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 3,
            nodes_per_category: 80,
            intra_out_per_node: 3,
            cross_fraction: 0.2,
        },
        &mut StdRng::seed_from_u64(81),
    );
    let params = CrawlerParams {
        peers_per_category: 3,
        seeds_per_peer: 3,
        max_depth: 3,
        ..Default::default()
    };
    let frags = assign_by_crawlers(&cg, &params, &mut StdRng::seed_from_u64(82));
    (cg, frags)
}

/// The scripted scenario: meetings interleaved with durable churn ticks
/// aggressive enough to force both departures and resurrections, over
/// pre-meetings selection with every payload routed through the wire
/// codec.
fn durable_scenario<S: StateStore>(threads: usize, store: S) -> (Network, usize, usize, usize) {
    let (cg, frags) = dataset();
    let pool = frags.clone();
    let mut net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        NetworkConfig {
            strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
            route_via_wire: true,
            threads,
            ..NetworkConfig::default()
        },
        41,
    );
    let model = ChurnModel {
        leave_prob: 0.5,
        join_prob: 0.5,
        min_peers: 4,
        max_peers: 12,
    };
    let mut churn = DurableChurn::new(model, store);
    let mut rng = StdRng::seed_from_u64(43);
    let mut cursor = 0;
    let (mut leaves, mut rejoins, mut fresh) = (0, 0, 0);
    for _ in 0..12 {
        net.run_parallel(15);
        match churn.tick(&mut net, &pool, &mut cursor, &mut rng) {
            ChurnEvent::Left(_) => leaves += 1,
            ChurnEvent::Rejoined(_) => rejoins += 1,
            ChurnEvent::Joined(_) => fresh += 1,
            ChurnEvent::None => {}
        }
    }
    (net, leaves, rejoins, fresh)
}

fn score_bits(net: &Network) -> Vec<Vec<u64>> {
    net.peers()
        .iter()
        .map(|p| p.scores().iter().map(|s| s.to_bits()).collect())
        .collect()
}

#[test]
fn durable_churn_exercises_departures_and_resurrections() {
    let (net, leaves, rejoins, _) = durable_scenario(1, MemStore::new());
    assert!(leaves > 0, "scenario produced no departures");
    assert!(rejoins > 0, "scenario produced no resurrections");
    for p in net.peers() {
        jxp_core::invariants::check_mass_conservation(p).unwrap();
    }
}

#[test]
fn durable_churn_is_bit_identical_across_thread_counts() {
    let (baseline, leaves, rejoins, fresh) = durable_scenario(1, MemStore::new());
    let want = score_bits(&baseline);
    for threads in [2, 8] {
        let (net, l, r, f) = durable_scenario(threads, MemStore::new());
        assert_eq!((l, r, f), (leaves, rejoins, fresh), "{threads} threads");
        assert_eq!(
            score_bits(&net),
            want,
            "scores diverged at {threads} threads"
        );
    }
}

#[test]
fn dir_store_backend_matches_the_in_memory_one() {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "jxp-durable-churn-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let (mem_net, ..) = durable_scenario(2, MemStore::new());
    let (dir_net, ..) = durable_scenario(2, DirStore::open(&dir).expect("open state dir"));
    assert_eq!(score_bits(&dir_net), score_bits(&mem_net));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_resurrected_peer_keeps_its_accumulated_state() {
    let (cg, frags) = dataset();
    let pool = frags.clone();
    let mut net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        NetworkConfig::default(),
        47,
    );
    net.run_parallel(40);
    let before: Vec<Vec<u64>> = score_bits(&net);

    // Force a departure, then resurrect immediately.
    let model = ChurnModel {
        leave_prob: 1.0,
        join_prob: 0.0,
        min_peers: 2,
        max_peers: 64,
    };
    let mut churn = DurableChurn::new(model, MemStore::new());
    let mut rng = StdRng::seed_from_u64(48);
    let mut cursor = 0;
    let event = churn.tick(&mut net, &pool, &mut cursor, &mut rng);
    let ChurnEvent::Left(victim) = event else {
        panic!("forced leave did not happen: {event:?}");
    };
    assert_eq!(churn.departed().count(), 1);
    let revived = churn.revive(&mut net).expect("a departed peer is waiting");

    // The revived peer carries the exact score bits it left with —
    // world knowledge survived the store round-trip.
    let after = score_bits(&net);
    assert_eq!(after[revived], before[victim]);
    assert_eq!(churn.departed().count(), 0);
}
