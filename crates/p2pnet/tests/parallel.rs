//! Integration tests of the round-based parallel meeting engine through
//! the crate's public API: thread-count invariance of a full workload,
//! and the engine surviving churn combined with the pre-meetings
//! strategy (the combination that exercises the selector's cache-revisit
//! and candidate paths while peer indices shift underneath them).

use jxp_core::evaluate::centralized_ranking;
use jxp_core::selection::{PreMeetingsConfig, SelectionStrategy};
use jxp_p2pnet::assign::{assign_by_crawlers, CrawlerParams};
use jxp_p2pnet::{Network, NetworkConfig};
use jxp_pagerank::metrics::footrule_distance;
use jxp_pagerank::{pagerank, PageRankConfig};
use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
use jxp_webgraph::Subgraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> (CategorizedGraph, Vec<Subgraph>) {
    let cg = CategorizedGraph::generate(
        &CategorizedParams {
            num_categories: 4,
            nodes_per_category: 120,
            intra_out_per_node: 4,
            cross_fraction: 0.2,
        },
        &mut StdRng::seed_from_u64(71),
    );
    let params = CrawlerParams {
        peers_per_category: 4,
        seeds_per_peer: 4,
        max_depth: 3,
        ..Default::default()
    };
    let frags = assign_by_crawlers(&cg, &params, &mut StdRng::seed_from_u64(72));
    (cg, frags)
}

fn premeetings_config(threads: usize) -> NetworkConfig {
    NetworkConfig {
        strategy: SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
        threads,
        ..NetworkConfig::default()
    }
}

/// The same scripted churn scenario, replayed at a given thread count:
/// run, a peer joins, run, a peer leaves (renumbering the last one), run.
fn churn_scenario(threads: usize) -> Network {
    let (cg, frags) = dataset();
    let spare = frags[0].clone();
    let mut net = Network::new(
        frags,
        cg.graph.num_nodes() as u64,
        premeetings_config(threads),
        31,
    );
    net.run_parallel(60);
    net.add_peer(spare);
    net.run_parallel(60);
    net.remove_peer(2);
    net.run_parallel(60);
    net
}

fn score_bits(net: &Network) -> Vec<Vec<u64>> {
    net.peers()
        .iter()
        .map(|p| p.scores().iter().map(|s| s.to_bits()).collect())
        .collect()
}

#[test]
fn churn_with_premeetings_survives_parallel_rounds() {
    let net = churn_scenario(4);
    assert_eq!(net.meetings(), 180);
    assert_eq!(net.num_peers(), 16);
    // remove_peer resets every SelectorState (cached ids go stale under
    // swap-remove renumbering), so only the post-churn meetings count.
    let (selections, _, _, _) = net.selection_stats();
    assert_eq!(selections, 60);
    assert!(net.bandwidth().total_bytes() > 0);
}

#[test]
fn churn_scenario_is_bit_identical_across_thread_counts() {
    let baseline = churn_scenario(1);
    let want = score_bits(&baseline);
    let want_stats = baseline.selection_stats();
    for threads in [2, 8] {
        let net = churn_scenario(threads);
        assert_eq!(
            score_bits(&net),
            want,
            "scores diverged at {threads} threads"
        );
        assert_eq!(net.selection_stats(), want_stats);
    }
}

#[test]
fn footrule_is_bit_identical_across_thread_counts() {
    let (cg, frags) = dataset();
    let truth = pagerank(&cg.graph, &PageRankConfig::default());
    let truth_ranking = centralized_ranking(truth.scores());
    let run = |threads: usize| {
        let mut net = Network::new(
            frags.clone(),
            cg.graph.num_nodes() as u64,
            NetworkConfig {
                threads,
                ..NetworkConfig::default()
            },
            13,
        );
        net.run_parallel(250);
        (
            footrule_distance(&net.total_ranking(), &truth_ranking, 100).to_bits(),
            score_bits(&net),
        )
    };
    let (serial_footrule, serial_scores) = run(1);
    assert!(
        f64::from_bits(serial_footrule) < 0.4,
        "engine failed to converge: footrule {}",
        f64::from_bits(serial_footrule)
    );
    for threads in [2, 8] {
        let (footrule, scores) = run(threads);
        assert_eq!(footrule, serial_footrule, "{threads} threads");
        assert_eq!(scores, serial_scores, "{threads} threads");
    }
}
