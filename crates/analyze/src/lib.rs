//! `jxp-analyze`: determinism & concurrency static analysis for the
//! JXP workspace.
//!
//! JXP's headline invariant — bit-identical score hashes at any thread
//! count — is only as strong as the discipline of the code that
//! computes them. This crate machine-checks that discipline with seven
//! rules:
//!
//! | Rule | What it forbids |
//! |------|-----------------|
//! | `D1` | hash-map/set iteration in determinism-critical modules |
//! | `D2` | `Instant::now` / `SystemTime::now` / ambient RNG outside the timing whitelist |
//! | `C1` | `.lock().unwrap()`-style poison panics on shared state |
//! | `C2` | `Ordering::Relaxed` on atomics without a reasoned annotation |
//! | `C3` | unbounded `mpsc::channel()` in runtime modules (use `sync_channel`) |
//! | `C4` | detached `thread::spawn` whose `JoinHandle` is discarded |
//! | `N1` | blocking socket calls (`read_exact`, `connect_timeout`, `set_nonblocking(false)`) inside the reactor |
//! | `D1X` | cross-file hash-container flow into a determinism-critical iteration site |
//! | `L1` | lock-order cycles (lock A held while acquiring B, B held while acquiring A) |
//! | `P1` | blocking calls inside closures submitted to `jxp-pool` executors |
//!
//! The engine runs in two passes. Pass 1 ([`index`]) builds a
//! workspace-wide symbol index — struct fields, function signatures,
//! impl contexts — with a token-tree reader layered on the [`scan`]
//! stripper. Pass 2 runs the per-line rules ([`rules`]) file by file
//! and the cross-file dataflow rules ([`flow`]) against the index.
//!
//! Findings can be suppressed inline with
//! `// jxp-analyze: allow(D2, reason = "...")` (same line or the line
//! above) or file-wide with `// jxp-analyze: allow-file(C2, reason = "...")`.
//! A reason is mandatory; a pragma without one is itself a diagnostic.
//!
//! The scanner is hand-rolled (no crates.io dependencies): it strips
//! comments and string/char literals, truncates each file at its
//! trailing `#[cfg(test)]` module, and matches token patterns over
//! what remains. See `DESIGN.md` §11 for the full rule catalog.

#![deny(missing_docs)]

pub mod config;
pub mod flow;
pub mod index;
pub mod rules;
pub mod scan;

pub use config::Config;

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of one analysis rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-ordered iteration in a determinism-critical module.
    D1,
    /// Wall clock / ambient RNG outside the timing whitelist.
    D2,
    /// Poison-panicking lock acquisition.
    C1,
    /// Unjustified `Ordering::Relaxed`.
    C2,
    /// Unbounded channel construction in a runtime module.
    C3,
    /// Detached spawn: `thread::spawn` with its `JoinHandle` discarded.
    C4,
    /// Blocking socket call inside the non-blocking reactor.
    N1,
    /// Cross-file hash-container flow into a critical iteration site.
    D1X,
    /// Lock-order cycle across the workspace lock graph.
    L1,
    /// Blocking call inside a pool-submitted closure.
    P1,
    /// Malformed suppression pragma.
    Pragma,
}

impl RuleId {
    /// Parse a rule id as written in a pragma.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "C1" => Some(RuleId::C1),
            "C2" => Some(RuleId::C2),
            "C3" => Some(RuleId::C3),
            "C4" => Some(RuleId::C4),
            "N1" => Some(RuleId::N1),
            "D1X" => Some(RuleId::D1X),
            "L1" => Some(RuleId::L1),
            "P1" => Some(RuleId::P1),
            _ => None,
        }
    }

    /// One-line description for `jxp-analyze rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "no HashMap/HashSet iteration in determinism-critical modules \
                 (use BTreeMap/BTreeSet or an explicit sort)"
            }
            RuleId::D2 => {
                "no Instant::now / SystemTime::now / thread_rng outside the \
                 timing whitelist (meeting timers, bench, straggler clocks)"
            }
            RuleId::C1 => {
                "no .lock().unwrap() / .read().unwrap() on shared state \
                 (use the poison-recovering jxp_telemetry::sync helpers)"
            }
            RuleId::C2 => {
                "Ordering::Relaxed must not publish data across threads; \
                 pure counters carry a reasoned allow pragma"
            }
            RuleId::C3 => {
                "no unbounded mpsc::channel() in runtime modules — a slow \
                 consumer buffers without limit; use sync_channel with an \
                 explicit bound"
            }
            RuleId::C4 => {
                "thread::spawn as a statement discards its JoinHandle; bind \
                 it and join on shutdown, or use a scoped thread"
            }
            RuleId::N1 => {
                "no blocking socket calls in the reactor — read_exact, \
                 connect_timeout, or set_nonblocking(false) stalls every \
                 in-flight meeting behind one peer"
            }
            RuleId::D1X => {
                "no hash-ordered iteration over containers declared in another \
                 module (fields or returned values followed across files); \
                 sort or convert to BTree at the module boundary"
            }
            RuleId::L1 => {
                "no lock-order cycles: if any code path acquires lock B while \
                 holding lock A, no path may acquire A while holding B \
                 (directly or through calls)"
            }
            RuleId::P1 => {
                "no blocking calls (sleep, recv, lock acquisition, socket \
                 reads, join) inside closures submitted to jxp-pool — a \
                 parked worker can deadlock the round"
            }
            RuleId::Pragma => "suppression pragmas must name known rules and give a reason",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleId::D1 => write!(f, "D1"),
            RuleId::D2 => write!(f, "D2"),
            RuleId::C1 => write!(f, "C1"),
            RuleId::C2 => write!(f, "C2"),
            RuleId::C3 => write!(f, "C3"),
            RuleId::C4 => write!(f, "C4"),
            RuleId::N1 => write!(f, "N1"),
            RuleId::D1X => write!(f, "D1X"),
            RuleId::L1 => write!(f, "L1"),
            RuleId::P1 => write!(f, "P1"),
            RuleId::Pragma => write!(f, "pragma"),
        }
    }
}

/// One finding: rule, location, and a human-oriented message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One diagnostic plus its pragma disposition. Suppressed findings
/// stay visible to `--format json` (pragma-status auditing) while the
/// human-facing report and the exit code only count active ones.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The underlying diagnostic.
    pub diag: Diagnostic,
    /// `true` when a reasoned pragma suppresses it.
    pub suppressed: bool,
}

/// Analyze one source string as if it lived at `rel_path` (workspace
/// relative — rule applicability is path-dependent). Runs both passes
/// over the single file; cross-file rules see only this file's symbols.
pub fn analyze_source(rel_path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    analyze_sources(&[(rel_path, source)], config)
}

/// Analyze a set of in-memory sources as one workspace: per-line rules
/// on each file, then the pass-2 dataflow rules (D1X/L1/P1) over the
/// combined symbol index. Returns active (non-suppressed) diagnostics
/// sorted by `(file, line, rule)`.
pub fn analyze_sources(sources: &[(&str, &str)], config: &Config) -> Vec<Diagnostic> {
    analyze_sources_report(sources, config)
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| f.diag)
        .collect()
}

/// [`analyze_sources`], but keeping suppressed findings (tagged) for
/// pragma-status reporting.
pub fn analyze_sources_report(sources: &[(&str, &str)], config: &Config) -> Vec<Finding> {
    let files: Vec<index::FileIndex> = sources
        .iter()
        .map(|(rel, src)| index::FileIndex::build(rel, scan::preprocess(src)))
        .collect();
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(rules::check_file_report(&file.rel, &file.prepared, config));
    }
    let symbols = index::WorkspaceIndex::build(&files);
    for diag in flow::check(&files, &symbols, config) {
        let suppressed = files
            .iter()
            .find(|f| f.rel == diag.file)
            .is_some_and(|f| f.prepared.is_allowed(diag.rule, diag.line));
        findings.push(Finding { diag, suppressed });
    }
    findings.sort_by(|a, b| {
        (&a.diag.file, a.diag.line, a.diag.rule).cmp(&(&b.diag.file, b.diag.line, b.diag.rule))
    });
    findings
}

/// Walk the workspace at `root` and analyze every `.rs` file under the
/// configured include patterns. Returns active diagnostics sorted by
/// `(file, line, rule)`; I/O problems surface as `Err`.
pub fn check_workspace(root: &Path, config: &Config) -> Result<Vec<Diagnostic>, String> {
    Ok(check_workspace_report(root, config)?
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| f.diag)
        .collect())
}

/// [`check_workspace`], but keeping suppressed findings (tagged) for
/// `--format json` pragma-status records.
pub fn check_workspace_report(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        sources.push((rel, source));
    }
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    Ok(analyze_sources_report(&borrowed, config))
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            // Prune directories that cannot contain included files:
            // a dir is worth entering if it is a prefix of some include
            // pattern or some include pattern is a prefix of it.
            if dir_may_contain_includes(&rel, config) {
                collect_rs_files(root, &path, config, out)?;
            }
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) && config.includes(&rel) {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether descending into `rel` (a directory) can reach an include.
fn dir_may_contain_includes(rel: &str, config: &Config) -> bool {
    let segs: Vec<&str> = rel.split('/').collect();
    config.include.iter().any(|pattern| {
        let pat: Vec<&str> = pattern.split('/').collect();
        pat.iter().zip(&segs).all(|(p, s)| *p == "*" || p == s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_file_line_rule() {
        let d = Diagnostic {
            rule: RuleId::D2,
            file: "crates/core/src/peer.rs".into(),
            line: 42,
            message: "nope".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/peer.rs:42: D2: nope");
    }

    #[test]
    fn rule_ids_roundtrip() {
        for id in [
            RuleId::D1,
            RuleId::D2,
            RuleId::C1,
            RuleId::C2,
            RuleId::C3,
            RuleId::C4,
            RuleId::N1,
            RuleId::D1X,
            RuleId::L1,
            RuleId::P1,
        ] {
            assert_eq!(RuleId::parse(&id.to_string()), Some(id));
        }
        assert_eq!(RuleId::parse("D9"), None);
    }

    #[test]
    fn dir_pruning_allows_partial_glob_prefixes() {
        let c = Config::default();
        assert!(dir_may_contain_includes("crates", &c));
        assert!(dir_may_contain_includes("crates/core", &c));
        assert!(dir_may_contain_includes("crates/core/src", &c));
        assert!(dir_may_contain_includes("src", &c));
        assert!(!dir_may_contain_includes("vendor", &c));
        assert!(!dir_may_contain_includes("target", &c));
    }
}
