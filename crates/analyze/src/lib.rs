//! `jxp-analyze`: determinism & concurrency static analysis for the
//! JXP workspace.
//!
//! JXP's headline invariant — bit-identical score hashes at any thread
//! count — is only as strong as the discipline of the code that
//! computes them. This crate machine-checks that discipline with seven
//! rules:
//!
//! | Rule | What it forbids |
//! |------|-----------------|
//! | `D1` | hash-map/set iteration in determinism-critical modules |
//! | `D2` | `Instant::now` / `SystemTime::now` / ambient RNG outside the timing whitelist |
//! | `C1` | `.lock().unwrap()`-style poison panics on shared state |
//! | `C2` | `Ordering::Relaxed` on atomics without a reasoned annotation |
//! | `C3` | unbounded `mpsc::channel()` in runtime modules (use `sync_channel`) |
//! | `C4` | detached `thread::spawn` whose `JoinHandle` is discarded |
//! | `N1` | blocking socket calls (`read_exact`, `connect_timeout`, `set_nonblocking(false)`) inside the reactor |
//!
//! Findings can be suppressed inline with
//! `// jxp-analyze: allow(D2, reason = "...")` (same line or the line
//! above) or file-wide with `// jxp-analyze: allow-file(C2, reason = "...")`.
//! A reason is mandatory; a pragma without one is itself a diagnostic.
//!
//! The scanner is hand-rolled (no crates.io dependencies): it strips
//! comments and string/char literals, truncates each file at its
//! trailing `#[cfg(test)]` module, and matches token patterns over
//! what remains. See `DESIGN.md` §11 for the full rule catalog.

#![deny(missing_docs)]

pub mod config;
pub mod rules;
pub mod scan;

pub use config::Config;

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of one analysis rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-ordered iteration in a determinism-critical module.
    D1,
    /// Wall clock / ambient RNG outside the timing whitelist.
    D2,
    /// Poison-panicking lock acquisition.
    C1,
    /// Unjustified `Ordering::Relaxed`.
    C2,
    /// Unbounded channel construction in a runtime module.
    C3,
    /// Detached spawn: `thread::spawn` with its `JoinHandle` discarded.
    C4,
    /// Blocking socket call inside the non-blocking reactor.
    N1,
    /// Malformed suppression pragma.
    Pragma,
}

impl RuleId {
    /// Parse a rule id as written in a pragma.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "C1" => Some(RuleId::C1),
            "C2" => Some(RuleId::C2),
            "C3" => Some(RuleId::C3),
            "C4" => Some(RuleId::C4),
            "N1" => Some(RuleId::N1),
            _ => None,
        }
    }

    /// One-line description for `jxp-analyze rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "no HashMap/HashSet iteration in determinism-critical modules \
                 (use BTreeMap/BTreeSet or an explicit sort)"
            }
            RuleId::D2 => {
                "no Instant::now / SystemTime::now / thread_rng outside the \
                 timing whitelist (meeting timers, bench, straggler clocks)"
            }
            RuleId::C1 => {
                "no .lock().unwrap() / .read().unwrap() on shared state \
                 (use the poison-recovering jxp_telemetry::sync helpers)"
            }
            RuleId::C2 => {
                "Ordering::Relaxed must not publish data across threads; \
                 pure counters carry a reasoned allow pragma"
            }
            RuleId::C3 => {
                "no unbounded mpsc::channel() in runtime modules — a slow \
                 consumer buffers without limit; use sync_channel with an \
                 explicit bound"
            }
            RuleId::C4 => {
                "thread::spawn as a statement discards its JoinHandle; bind \
                 it and join on shutdown, or use a scoped thread"
            }
            RuleId::N1 => {
                "no blocking socket calls in the reactor — read_exact, \
                 connect_timeout, or set_nonblocking(false) stalls every \
                 in-flight meeting behind one peer"
            }
            RuleId::Pragma => "suppression pragmas must name known rules and give a reason",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleId::D1 => write!(f, "D1"),
            RuleId::D2 => write!(f, "D2"),
            RuleId::C1 => write!(f, "C1"),
            RuleId::C2 => write!(f, "C2"),
            RuleId::C3 => write!(f, "C3"),
            RuleId::C4 => write!(f, "C4"),
            RuleId::N1 => write!(f, "N1"),
            RuleId::Pragma => write!(f, "pragma"),
        }
    }
}

/// One finding: rule, location, and a human-oriented message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Analyze one source string as if it lived at `rel_path` (workspace
/// relative — rule applicability is path-dependent).
pub fn analyze_source(rel_path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    let prepared = scan::preprocess(source);
    rules::check_file(rel_path, &prepared, config)
}

/// Walk the workspace at `root` and analyze every `.rs` file under the
/// configured include patterns. Returns diagnostics sorted by
/// `(file, line, rule)`; I/O problems surface as `Err`.
pub fn check_workspace(root: &Path, config: &Config) -> Result<Vec<Diagnostic>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        diags.extend(analyze_source(&rel, &source, config));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diags)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            // Prune directories that cannot contain included files:
            // a dir is worth entering if it is a prefix of some include
            // pattern or some include pattern is a prefix of it.
            if dir_may_contain_includes(&rel, config) {
                collect_rs_files(root, &path, config, out)?;
            }
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) && config.includes(&rel) {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether descending into `rel` (a directory) can reach an include.
fn dir_may_contain_includes(rel: &str, config: &Config) -> bool {
    let segs: Vec<&str> = rel.split('/').collect();
    config.include.iter().any(|pattern| {
        let pat: Vec<&str> = pattern.split('/').collect();
        pat.iter().zip(&segs).all(|(p, s)| *p == "*" || p == s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_file_line_rule() {
        let d = Diagnostic {
            rule: RuleId::D2,
            file: "crates/core/src/peer.rs".into(),
            line: 42,
            message: "nope".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/peer.rs:42: D2: nope");
    }

    #[test]
    fn rule_ids_roundtrip() {
        for id in [
            RuleId::D1,
            RuleId::D2,
            RuleId::C1,
            RuleId::C2,
            RuleId::C3,
            RuleId::C4,
            RuleId::N1,
        ] {
            assert_eq!(RuleId::parse(&id.to_string()), Some(id));
        }
        assert_eq!(RuleId::parse("D9"), None);
    }

    #[test]
    fn dir_pruning_allows_partial_glob_prefixes() {
        let c = Config::default();
        assert!(dir_may_contain_includes("crates", &c));
        assert!(dir_may_contain_includes("crates/core", &c));
        assert!(dir_may_contain_includes("crates/core/src", &c));
        assert!(dir_may_contain_includes("src", &c));
        assert!(!dir_may_contain_includes("vendor", &c));
        assert!(!dir_may_contain_includes("target", &c));
    }
}
