//! Source preprocessing: comment/string stripping, pragma collection,
//! and a minimal identifier/punctuation tokenizer.
//!
//! The rules in [`crate::rules`] never want to fire on text inside a
//! string literal or a comment, so the preprocessor rewrites every line
//! into its *code-only* form (stripped regions become spaces) while
//! harvesting `// jxp-analyze: allow(...)` pragmas from the comments it
//! removes. Everything from the conventional trailing `#[cfg(test)]`
//! module onward is dropped: test code may freely use wall clocks,
//! hash-ordered iteration, and panicking locks.

use crate::RuleId;

/// One line of code after stripping, with its 1-based source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The line with comments and literals blanked out.
    pub code: String,
}

/// An `allow` pragma resolved to the line it suppresses.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rules the pragma suppresses.
    pub rules: Vec<RuleId>,
    /// 1-based line the pragma applies to (`None` = whole file).
    pub line: Option<usize>,
}

/// The result of preprocessing one file.
#[derive(Debug, Default)]
pub struct Prepared {
    /// Code-only lines, truncated at the trailing `#[cfg(test)]` module.
    pub lines: Vec<SourceLine>,
    /// Resolved allow pragmas.
    pub allows: Vec<Allow>,
    /// Malformed pragmas: `(line, problem)`.
    pub pragma_errors: Vec<(usize, String)>,
}

impl Prepared {
    /// Whether `rule` is suppressed on `line` by a pragma.
    pub fn is_allowed(&self, rule: RuleId, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rules.contains(&rule) && (a.line.is_none() || a.line == Some(line)))
    }
}

/// What multi-line region the scanner is inside between lines.
#[derive(Debug, Clone, PartialEq)]
enum Region {
    Code,
    /// `/* ... */`, possibly nested (`depth`).
    BlockComment(u32),
    /// A normal `"..."` string (may span lines via trailing content).
    Str,
    /// A raw string `r##"..."##` with its hash count.
    RawStr(u32),
}

/// Strip one file into code-only lines and collect its pragmas.
pub fn preprocess(source: &str) -> Prepared {
    let mut prepared = Prepared::default();
    let mut region = Region::Code;
    // A pragma on a comment-only line applies to the next code line.
    let mut pending: Vec<(usize, PragmaText)> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let (code, comments) = strip_line(raw, &mut region);
        if code.contains("#[cfg(test)]") {
            break; // trailing test module: rules do not apply
        }
        let has_code = !code.trim().is_empty();
        for text in comments {
            if let Some(pragma) = extract_pragma(&text) {
                match parse_pragma(&pragma) {
                    Ok(parsed) => {
                        if parsed.file_wide {
                            prepared.allows.push(Allow {
                                rules: parsed.rules,
                                line: None,
                            });
                        } else if has_code {
                            prepared.allows.push(Allow {
                                rules: parsed.rules,
                                line: Some(number),
                            });
                        } else {
                            pending.push((number, parsed));
                        }
                    }
                    Err(problem) => prepared.pragma_errors.push((number, problem)),
                }
            }
        }
        if has_code {
            for (_, parsed) in pending.drain(..) {
                prepared.allows.push(Allow {
                    rules: parsed.rules,
                    line: Some(number),
                });
            }
            prepared.lines.push(SourceLine { number, code });
        }
    }
    for (line, _) in pending {
        prepared
            .pragma_errors
            .push((line, "pragma attaches to no code line".to_string()));
    }
    prepared
}

/// Parsed `allow(...)` content.
#[derive(Debug)]
struct PragmaText {
    rules: Vec<RuleId>,
    file_wide: bool,
}

/// Pull the `allow...` payload out of a comment carrying the marker.
/// The marker must *start* the comment (after `//`/`//!`/`/*`-style
/// leaders) — a mid-sentence mention of the syntax is not a pragma.
fn extract_pragma(comment: &str) -> Option<String> {
    let body = comment.trim_start_matches(['/', '!', '*']).trim_start();
    let rest = body.strip_prefix("jxp-analyze:")?;
    Some(rest.trim().to_string())
}

/// Parse `allow(D1, C2, reason = "...")` / `allow-file(...)`.
fn parse_pragma(text: &str) -> Result<PragmaText, String> {
    let (file_wide, rest) = if let Some(r) = text.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = text.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "expected allow(...) or allow-file(...), got {text:?}"
        ));
    };
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| "pragma arguments must be parenthesized".to_string())?;
    let mut rules = Vec::new();
    let mut reason = None;
    // Split on commas outside the reason string.
    for part in split_args(inner) {
        let part = part.trim();
        if let Some(r) = part.strip_prefix("reason") {
            let r = r.trim_start().strip_prefix('=').unwrap_or("").trim();
            let quoted = r
                .strip_prefix('"')
                .and_then(|q| q.strip_suffix('"'))
                .ok_or_else(|| "reason must be a quoted string".to_string())?;
            reason = Some(quoted.to_string());
        } else {
            rules.push(RuleId::parse(part).ok_or_else(|| format!("unknown rule id {part:?}"))?);
        }
    }
    if rules.is_empty() {
        return Err("pragma names no rule".to_string());
    }
    match reason {
        Some(r) if !r.trim().is_empty() => Ok(PragmaText { rules, file_wide }),
        _ => Err("pragma requires a non-empty reason = \"...\"".to_string()),
    }
}

/// Split pragma arguments on commas, respecting one quoted string.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            '\\' if in_quotes => {
                current.push(c);
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Strip comments and literals from one raw line, returning the
/// code-only text and any comment bodies encountered.
fn strip_line(raw: &str, region: &mut Region) -> (String, Vec<String>) {
    let bytes: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comments = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match region {
            Region::BlockComment(depth) => {
                let start = i;
                while i < bytes.len() {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        i += 2;
                        if *depth == 0 {
                            comments.push(bytes[start..i].iter().collect());
                            *region = Region::Code;
                            break;
                        }
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if matches!(region, Region::BlockComment(_)) {
                    comments.push(bytes[start..].iter().collect());
                    i = bytes.len();
                }
                code.push(' ');
            }
            Region::Str => {
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            *region = Region::Code;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                code.push(' ');
            }
            Region::RawStr(hashes) => {
                // Scan for `"` followed by exactly the opener's hash
                // count, walking *chars*. (An earlier version searched a
                // re-collected String and mixed the byte offset it got
                // back into the char index `i`: any multibyte content
                // before the closer made `i` overshoot, silently eating
                // the code after the literal — and when the overshoot
                // swallowed the opening quote of a following string,
                // that string's body leaked into the code stream.)
                let want = *hashes as usize;
                let close = (i..bytes.len()).find(|&j| {
                    bytes[j] == '"'
                        && bytes[j + 1..]
                            .iter()
                            .take(want)
                            .filter(|c| **c == '#')
                            .count()
                            == want
                });
                match close {
                    Some(j) => {
                        i = j + 1 + want;
                        *region = Region::Code;
                    }
                    None => i = bytes.len(),
                }
                code.push(' ');
            }
            Region::Code => {
                let c = bytes[i];
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    comments.push(bytes[i..].iter().collect());
                    i = bytes.len();
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    *region = Region::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    *region = Region::Str;
                    i += 1;
                } else if c == 'r'
                    && !prev_is_ident(&bytes, i)
                    && raw_string_hashes(&bytes, i).is_some()
                {
                    let hashes = raw_string_hashes(&bytes, i).unwrap();
                    *region = Region::RawStr(hashes);
                    i += 1 + hashes as usize + 1; // r, #*, "
                } else if (c == 'b' || c == 'c')
                    && !prev_is_ident(&bytes, i)
                    && bytes.get(i + 1) == Some(&'"')
                {
                    // Byte/C string `b"..."` / `c"..."`: same escape
                    // rules as a normal string.
                    *region = Region::Str;
                    i += 2;
                } else if (c == 'b' || c == 'c')
                    && !prev_is_ident(&bytes, i)
                    && bytes.get(i + 1) == Some(&'r')
                    && raw_string_hashes(&bytes, i + 1).is_some()
                {
                    // Raw byte/C string `br#"..."#`: without this arm the
                    // `b` prefix hid the raw opener, so the literal was
                    // scanned as a normal string whose `\` "escapes"
                    // desynchronized the closer — leaking literal text
                    // (and stray `#`) into the code stream.
                    let hashes = raw_string_hashes(&bytes, i + 1).unwrap();
                    *region = Region::RawStr(hashes);
                    i += 2 + hashes as usize + 1; // b, r, #*, "
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few characters; a lifetime has no closing quote.
                    if let Some(end) = char_literal_end(&bytes, i) {
                        code.push(' ');
                        i = end;
                    } else {
                        i += 1; // lifetime tick: drop it, keep the ident
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comments)
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If `bytes[i..]` starts a raw string (`r"` / `r#"` / ...), its hash count.
fn raw_string_hashes(bytes: &[char], i: usize) -> Option<u32> {
    let mut j = i + 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some(hashes)
}

/// End index (exclusive) of a char literal starting at `i`, or `None`
/// if the tick is a lifetime.
fn char_literal_end(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote (bounded).
            let mut j = i + 2;
            while j < bytes.len() && j < i + 12 {
                if bytes[j] == '\'' {
                    return Some(j + 1);
                }
                j += 1;
            }
            None
        }
        Some(_) if bytes.get(i + 2) == Some(&'\'') => Some(i + 3),
        _ => None,
    }
}

/// Split code-only text into identifier and punctuation tokens. `::` is
/// one token; every other punctuation character stands alone.
pub fn tokenize(code: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(chars[start..i].iter().collect());
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            tokens.push("::".to_string());
            i += 2;
        } else {
            tokens.push(c.to_string());
            i += 1;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_strings() {
        let p = preprocess("let x = \"Instant::now\"; // Instant::now\nlet y = 1;\n");
        assert_eq!(p.lines.len(), 2);
        assert!(!p.lines[0].code.contains("Instant"));
        assert!(p.lines[0].code.contains("let x ="));
    }

    #[test]
    fn strips_nested_block_comments() {
        let p = preprocess("a /* x /* y */ z */ b\n");
        assert_eq!(p.lines[0].code.trim(), "a   b");
    }

    #[test]
    fn block_comment_spans_lines() {
        let p = preprocess("a /* start\nmiddle\nend */ b\n");
        assert_eq!(p.lines.len(), 2);
        assert_eq!(p.lines[0].code.trim(), "a");
        assert_eq!(p.lines[1].number, 3);
        assert_eq!(p.lines[1].code.trim(), "b");
    }

    #[test]
    fn raw_string_multibyte_content_does_not_leak_following_text() {
        // Regression: the closer search used to return a *byte* offset
        // that was added to a *char* index, so multibyte content inside
        // a raw string overshot the closer. Here the overshoot used to
        // swallow `;` and the opening quote of the next string, leaking
        // its body (`Instant::now() // junk`) into the code stream —
        // an unbalanced quote followed by `//`, exactly the text the
        // rules must never see.
        let src = "let s = r#\"h\u{e9}\u{e9}\"#;\"Instant::now() // junk\";ok();\n";
        let p = preprocess(src);
        let code = &p.lines[0].code;
        assert!(!code.contains("Instant"), "leaked literal text: {code:?}");
        assert!(
            code.contains("ok()"),
            "code after the literal lost: {code:?}"
        );
        // The same shape with multibyte content spanning to a comment.
        let src2 = "let s = r#\"\u{e9} \" \u{e9}\u{e9}\"#; keep(); // tail\n";
        let p2 = preprocess(src2);
        assert!(
            p2.lines[0].code.contains("keep()"),
            "{:?}",
            p2.lines[0].code
        );
    }

    #[test]
    fn byte_and_raw_byte_strings_are_stripped() {
        // `br#"..."#` used to be scanned as code `b` + `r` + `#` plus a
        // *normal* string, so backslashes inside desynchronized the
        // closer and stray `#` tokens leaked into the code stream.
        let src = "let b = br#\"a \\\" // thread_rng\"#; ok();\n";
        let p = preprocess(src);
        let code = &p.lines[0].code;
        assert!(!code.contains("thread_rng"), "{code:?}");
        assert!(!code.contains('#'), "raw-byte closer leaked: {code:?}");
        assert!(code.contains("ok()"), "{code:?}");
        let p2 = preprocess("let v = b\"Instant::now\"; ok();\n");
        assert!(
            !p2.lines[0].code.contains("Instant"),
            "{:?}",
            p2.lines[0].code
        );
    }

    #[test]
    fn raw_string_unbalanced_quote_then_comment_stays_contained() {
        // An unbalanced `"` followed by `//` inside the literal must not
        // leak: the closer is the quote-then-hashes pair, nothing else.
        let src = "let s = r#\"foo \" bar // thread_rng\"#; ok();\n";
        let p = preprocess(src);
        assert!(!p.lines[0].code.contains("thread_rng"));
        assert!(p.lines[0].code.contains("ok()"));
        // With two hashes, a lesser `"#` inside the literal is content.
        let src2 = "let s = r##\"x \"# y // thread_rng\"##; ok();\n";
        let p2 = preprocess(src2);
        assert!(!p2.lines[0].code.contains("thread_rng"));
        assert!(p2.lines[0].code.contains("ok()"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let p = preprocess("let s = r#\"thread_rng\"#; let c = '\\n'; let l: &'static str = x;\n");
        let code = &p.lines[0].code;
        assert!(!code.contains("thread_rng"));
        assert!(code.contains("static")); // lifetime ident survives
    }

    #[test]
    fn truncates_at_cfg_test() {
        let p = preprocess("let a = 1;\n#[cfg(test)]\nmod tests { thread_rng(); }\n");
        assert_eq!(p.lines.len(), 1);
    }

    #[test]
    fn pragma_on_same_line_and_next_line() {
        let src = "foo(); // jxp-analyze: allow(D2, reason = \"timing\")\n\
                   // jxp-analyze: allow(C1, reason = \"next line\")\n\
                   bar();\n";
        let p = preprocess(src);
        assert!(p.pragma_errors.is_empty(), "{:?}", p.pragma_errors);
        assert!(p.is_allowed(RuleId::D2, 1));
        assert!(!p.is_allowed(RuleId::C1, 1));
        assert!(p.is_allowed(RuleId::C1, 3));
    }

    #[test]
    fn file_pragma_covers_every_line() {
        let p = preprocess("// jxp-analyze: allow-file(C2, reason = \"counters\")\nfoo();\n");
        assert!(p.is_allowed(RuleId::C2, 2));
        assert!(p.is_allowed(RuleId::C2, 999));
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let p = preprocess("foo(); // jxp-analyze: allow(D1)\n");
        assert_eq!(p.pragma_errors.len(), 1);
        assert!(p.pragma_errors[0].1.contains("reason"));
    }

    #[test]
    fn pragma_with_unknown_rule_is_an_error() {
        let p = preprocess("foo(); // jxp-analyze: allow(D9, reason = \"x\")\n");
        assert_eq!(p.pragma_errors.len(), 1);
        assert!(p.pragma_errors[0].1.contains("unknown rule"));
    }

    #[test]
    fn mid_comment_mention_is_not_a_pragma() {
        let src = "foo(); // docs cite `// jxp-analyze: allow(D2, reason = \"x\")` here\n";
        let p = preprocess(src);
        assert!(p.pragma_errors.is_empty());
        assert!(p.allows.is_empty());
    }

    #[test]
    fn multi_rule_pragma() {
        let p = preprocess("foo(); // jxp-analyze: allow(D1, C2, reason = \"both\")\n");
        assert!(p.is_allowed(RuleId::D1, 1));
        assert!(p.is_allowed(RuleId::C2, 1));
        assert!(!p.is_allowed(RuleId::D2, 1));
    }

    #[test]
    fn tokenizer_splits_paths() {
        assert_eq!(
            tokenize("Instant::now()"),
            vec!["Instant", "::", "now", "(", ")"]
        );
        assert_eq!(
            tokenize("self.entries.iter()"),
            vec!["self", ".", "entries", ".", "iter", "(", ")"]
        );
    }
}
