//! `jxp-analyze` CLI: run the determinism/concurrency rules over the
//! workspace (`check`) or list the rule catalog (`rules`).

use std::path::PathBuf;
use std::process::ExitCode;

use jxp_analyze::{check_workspace, Config, RuleId};

const USAGE: &str = "\
jxp-analyze: determinism & concurrency static analysis for the JXP workspace

USAGE:
    jxp-analyze check [--root DIR] [--config FILE]
    jxp-analyze rules

SUBCOMMANDS:
    check    scan workspace sources, print file:line diagnostics,
             exit 1 if any rule fires (2 on usage/IO errors)
    rules    print the rule catalog and pragma syntax

By default the workspace root is found by walking up from the current
directory to the nearest analyze.toml.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("jxp-analyze: unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match it.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "jxp-analyze: no analyze.toml found walking up from the \
                 current directory; pass --root"
            );
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("analyze.toml"));
    let config = if config_path.exists() {
        match std::fs::read_to_string(&config_path)
            .map_err(|e| e.to_string())
            .and_then(|text| Config::parse(&text))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("jxp-analyze: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };

    match check_workspace(&root, &config) {
        Ok(diags) if diags.is_empty() => {
            println!("jxp-analyze: clean (rules D1 D2 C1 C2 C3 C4 N1)");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("jxp-analyze: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("jxp-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("jxp-analyze: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walk up from the current directory to the nearest `analyze.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("analyze.toml").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_rules() {
    println!("jxp-analyze rule catalog:\n");
    for id in [
        RuleId::D1,
        RuleId::D2,
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::C4,
        RuleId::N1,
        RuleId::Pragma,
    ] {
        println!("  {:<7} {}", id.to_string(), id.describe());
    }
    println!(
        "\nSuppression pragmas (reason is mandatory):\n\
         \n\
         \x20   code(); // jxp-analyze: allow(D2, reason = \"UI-only timer\")\n\
         \x20   // jxp-analyze: allow(C1, reason = \"...\")   <- applies to next line\n\
         \x20   // jxp-analyze: allow-file(C2, reason = \"pure counters\")\n\
         \n\
         Path-level scoping lives in analyze.toml ([rules.D1] critical,\n\
         [rules.D2] allow, [rules.C2] allow, [rules.C3] critical,\n\
         [rules.C4] allow, [rules.N1] critical)."
    );
}
