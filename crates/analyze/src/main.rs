//! `jxp-analyze` CLI: run the determinism/concurrency rules over the
//! workspace (`check`) or list the rule catalog (`rules`).

use std::path::PathBuf;
use std::process::ExitCode;

use jxp_analyze::{check_workspace_report, Config, Finding, RuleId};

const USAGE: &str = "\
jxp-analyze: determinism & concurrency static analysis for the JXP workspace

USAGE:
    jxp-analyze check [--root DIR] [--config FILE] [--format text|json]
    jxp-analyze rules

SUBCOMMANDS:
    check    scan workspace sources, print file:line diagnostics,
             exit 1 if any rule fires (2 on usage/IO errors)
    rules    print the rule catalog and pragma syntax

FLAGS:
    --format json    emit one JSON record per finding — file, line,
                     rule, message, pragma status — including findings
                     suppressed by reasoned pragmas (pragma: \"suppressed\").
                     The exit code still counts only active findings.

By default the workspace root is found by walking up from the current
directory to the nearest analyze.toml.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("jxp-analyze: unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Output format for `check`.
#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match it.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => {
                    return usage_error(&format!("unknown format {other:?} (text|json)"))
                }
                None => return usage_error("--format needs a value (text|json)"),
            },
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "jxp-analyze: no analyze.toml found walking up from the \
                 current directory; pass --root"
            );
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("analyze.toml"));
    let config = if config_path.exists() {
        match std::fs::read_to_string(&config_path)
            .map_err(|e| e.to_string())
            .and_then(|text| Config::parse(&text))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("jxp-analyze: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };

    match check_workspace_report(&root, &config) {
        Ok(findings) => {
            let active = findings.iter().filter(|f| !f.suppressed).count();
            match format {
                Format::Json => print_json(&findings),
                Format::Text => {
                    for f in findings.iter().filter(|f| !f.suppressed) {
                        println!("{}", f.diag);
                    }
                    if active == 0 {
                        println!("jxp-analyze: clean (rules D1 D1X D2 C1 C2 C3 C4 N1 L1 P1)");
                    } else {
                        println!("jxp-analyze: {active} violation(s)");
                    }
                }
            }
            if active == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("jxp-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

/// Emit findings as a JSON array of records. Hand-rolled (this crate
/// takes no dependencies); the only dynamic strings are escaped.
fn print_json(findings: &[Finding]) {
    println!("[");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        println!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"pragma\": \"{}\"}}{comma}",
            json_escape(&f.diag.file),
            f.diag.line,
            f.diag.rule,
            json_escape(&f.diag.message),
            if f.suppressed { "suppressed" } else { "active" },
        );
    }
    println!("]");
}

/// Escape a string for a JSON double-quoted literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("jxp-analyze: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walk up from the current directory to the nearest `analyze.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("analyze.toml").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_rules() {
    println!("jxp-analyze rule catalog:\n");
    for id in [
        RuleId::D1,
        RuleId::D1X,
        RuleId::D2,
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::C4,
        RuleId::N1,
        RuleId::L1,
        RuleId::P1,
        RuleId::Pragma,
    ] {
        println!("  {:<7} {}", id.to_string(), id.describe());
    }
    println!(
        "\nSuppression pragmas (reason is mandatory):\n\
         \n\
         \x20   code(); // jxp-analyze: allow(D2, reason = \"UI-only timer\")\n\
         \x20   // jxp-analyze: allow(C1, reason = \"...\")   <- applies to next line\n\
         \x20   // jxp-analyze: allow(D1, C2, reason = \"...\")  <- several rules, one reason\n\
         \x20   // jxp-analyze: allow-file(C2, reason = \"pure counters\")\n\
         \n\
         Path-level scoping lives in analyze.toml ([rules.D1] critical,\n\
         [rules.D1X] critical, [rules.D2] allow, [rules.C2] allow,\n\
         [rules.C3] critical, [rules.C4] allow, [rules.N1] critical,\n\
         [rules.L1] allow, [rules.P1] submit)."
    );
}
