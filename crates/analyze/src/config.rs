//! `analyze.toml` loading: a tiny TOML-subset parser.
//!
//! The analyzer deliberately takes no crates.io dependencies, so the
//! config file is restricted to the subset we need: `[section]` /
//! `[section.sub]` headers, `key = ["string", ...]` arrays (single- or
//! multi-line), and `#` comments. That covers the committed baseline
//! without pulling in a full TOML implementation.

/// Analyzer configuration, normally read from `analyze.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directory prefixes (workspace-relative) to scan, with one
    /// `*` segment allowed (e.g. `crates/*/src`).
    pub include: Vec<String>,
    /// Path prefixes where D1 (hash-iteration) is enforced.
    pub d1_critical: Vec<String>,
    /// Path prefixes exempt from D2 (wall clock / RNG).
    pub d2_allow: Vec<String>,
    /// Path prefixes exempt from C2 (Relaxed ordering).
    pub c2_allow: Vec<String>,
    /// Path prefixes where C3 (unbounded channels) is enforced —
    /// long-lived runtime modules where queue growth is unbounded by
    /// construction.
    pub c3_critical: Vec<String>,
    /// Path prefixes exempt from C4 (detached spawns).
    pub c4_allow: Vec<String>,
    /// Path prefixes where N1 (blocking socket calls) is enforced —
    /// the reactor's event loop, where one blocking call stalls every
    /// in-flight exchange.
    pub n1_critical: Vec<String>,
    /// Path prefixes where D1X (cross-file hash flow) is enforced.
    /// Empty means "mirror `d1_critical`" — the two rules guard the
    /// same modules, D1X just sees across file boundaries.
    pub d1x_critical: Vec<String>,
    /// Path prefixes exempt from L1 (lock-order cycles). L1 is
    /// workspace-wide by default: a cycle is a deadlock wherever the
    /// two halves live.
    pub l1_allow: Vec<String>,
    /// Pool-submission points for P1 as `name:closure_arg_index`
    /// entries (0-based), e.g. `run_dealt:2` — the third argument of
    /// any `run_dealt(...)` call is a task closure executed on pool
    /// workers and must not block.
    pub p1_submit: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            include: vec![
                "src".to_string(),
                "examples".to_string(),
                "crates/*/src".to_string(),
            ],
            d1_critical: vec![
                "crates/core/src".to_string(),
                "crates/p2pnet/src".to_string(),
                "crates/pagerank/src".to_string(),
            ],
            d2_allow: vec![
                "crates/core/src/meeting.rs".to_string(),
                "crates/bench".to_string(),
                "crates/p2pnet/src/parallel.rs".to_string(),
            ],
            c2_allow: vec![],
            c3_critical: vec![
                "crates/node/src".to_string(),
                "crates/p2pnet/src".to_string(),
            ],
            c4_allow: vec![],
            n1_critical: vec!["crates/reactor/src".to_string()],
            d1x_critical: vec![],
            l1_allow: vec![],
            p1_submit: vec!["run_dealt:2".to_string(), "run_with:2".to_string()],
        }
    }
}

impl Config {
    /// Parse the TOML-subset text of an `analyze.toml` file.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config {
            include: Vec::new(),
            d1_critical: Vec::new(),
            d2_allow: Vec::new(),
            c2_allow: Vec::new(),
            c3_critical: Vec::new(),
            c4_allow: Vec::new(),
            n1_critical: Vec::new(),
            d1x_critical: Vec::new(),
            l1_allow: Vec::new(),
            p1_submit: Vec::new(),
        };
        let mut section = String::new();
        // Multi-line arrays accumulate until the closing bracket.
        let mut open_key: Option<(String, String)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some((key, mut acc)) = open_key.take() {
                acc.push_str(&line);
                if line.ends_with(']') {
                    let values =
                        parse_array(&acc).map_err(|e| format!("analyze.toml:{lineno}: {e}"))?;
                    config.assign(&section, &key, values)?;
                } else {
                    open_key = Some((key, acc));
                }
                continue;
            }
            if line.starts_with('[') {
                section = line
                    .strip_prefix('[')
                    .and_then(|l| l.strip_suffix(']'))
                    .ok_or_else(|| format!("analyze.toml:{lineno}: malformed section header"))?
                    .trim()
                    .to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("analyze.toml:{lineno}: expected key = [...]"))?;
            let key = key.trim().to_string();
            let value = value.trim().to_string();
            if value.starts_with('[') && !value.ends_with(']') {
                open_key = Some((key, value));
            } else {
                let values =
                    parse_array(&value).map_err(|e| format!("analyze.toml:{lineno}: {e}"))?;
                config.assign(&section, &key, values)?;
            }
        }
        if open_key.is_some() {
            return Err("analyze.toml: unclosed array".to_string());
        }
        Ok(config)
    }

    fn assign(&mut self, section: &str, key: &str, values: Vec<String>) -> Result<(), String> {
        match (section, key) {
            ("scan", "include") => self.include = values,
            ("rules.D1", "critical") => self.d1_critical = values,
            ("rules.D2", "allow") => self.d2_allow = values,
            ("rules.C2", "allow") => self.c2_allow = values,
            ("rules.C3", "critical") => self.c3_critical = values,
            ("rules.C4", "allow") => self.c4_allow = values,
            ("rules.N1", "critical") => self.n1_critical = values,
            ("rules.D1X", "critical") => self.d1x_critical = values,
            ("rules.L1", "allow") => self.l1_allow = values,
            ("rules.P1", "submit") => self.p1_submit = values,
            _ => return Err(format!("analyze.toml: unknown key [{section}] {key}")),
        }
        Ok(())
    }

    /// Whether a workspace-relative path matches any `include` pattern.
    pub fn includes(&self, rel: &str) -> bool {
        self.include.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether D1 applies to this path.
    pub fn d1_applies(&self, rel: &str) -> bool {
        self.d1_critical.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether this path is exempt from D2.
    pub fn d2_exempt(&self, rel: &str) -> bool {
        self.d2_allow.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether this path is exempt from C2.
    pub fn c2_exempt(&self, rel: &str) -> bool {
        self.c2_allow.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether C3 applies to this path.
    pub fn c3_applies(&self, rel: &str) -> bool {
        self.c3_critical.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether this path is exempt from C4.
    pub fn c4_exempt(&self, rel: &str) -> bool {
        self.c4_allow.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether N1 applies to this path.
    pub fn n1_applies(&self, rel: &str) -> bool {
        self.n1_critical.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether D1X applies to this path (falls back to the D1 set when
    /// no dedicated `[rules.D1X] critical` list is configured).
    pub fn d1x_applies(&self, rel: &str) -> bool {
        let set = if self.d1x_critical.is_empty() {
            &self.d1_critical
        } else {
            &self.d1x_critical
        };
        set.iter().any(|p| prefix_match(p, rel))
    }

    /// Whether this path is exempt from L1.
    pub fn l1_exempt(&self, rel: &str) -> bool {
        self.l1_allow.iter().any(|p| prefix_match(p, rel))
    }

    /// Parsed P1 submission points: `(function name, 0-based closure
    /// argument index)`. Malformed entries are ignored.
    pub fn p1_submits(&self) -> Vec<(String, usize)> {
        self.p1_submit
            .iter()
            .filter_map(|entry| {
                let (name, idx) = entry.split_once(':')?;
                Some((name.trim().to_string(), idx.trim().parse().ok()?))
            })
            .collect()
    }
}

/// Match `pattern` as a `/`-separated prefix of `path`, where a
/// pattern segment of `*` matches exactly one path segment.
fn prefix_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    if pat.len() > segs.len() {
        return false;
    }
    pat.iter().zip(&segs).all(|(p, s)| *p == "*" || p == s)
}

/// Drop a `#` comment (TOML has no `#` inside our string values
/// except paths, which never contain `#`).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Parse `["a", "b"]` into its strings.
fn parse_array(text: &str) -> Result<Vec<String>, String> {
    let inner = text
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| "expected a [\"...\"] array".to_string())?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let value = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("array element {part:?} is not a quoted string"))?;
        out.push(value.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baseline_shape() {
        let text = r#"
# comment
[scan]
include = ["src", "crates/*/src"]

[rules.D1]
critical = ["crates/core/src"]

[rules.D2]
allow = [
    "crates/bench",
    "crates/core/src/meeting.rs",
]

[rules.C2]
allow = []
"#;
        let c = Config::parse(text).unwrap();
        assert_eq!(c.include, vec!["src", "crates/*/src"]);
        assert_eq!(c.d1_critical, vec!["crates/core/src"]);
        assert_eq!(c.d2_allow.len(), 2);
        assert!(c.c2_allow.is_empty());
    }

    #[test]
    fn glob_segment_matches_one_level() {
        let c = Config::default();
        assert!(c.includes("crates/core/src/world.rs"));
        assert!(c.includes("src/lib.rs"));
        assert!(!c.includes("vendor/rand/src/lib.rs"));
        assert!(!c.includes("crates/core/tests/equivalence.rs"));
    }

    #[test]
    fn file_pattern_matches_exact_file() {
        let c = Config::default();
        assert!(c.d2_exempt("crates/core/src/meeting.rs"));
        assert!(!c.d2_exempt("crates/core/src/peer.rs"));
        assert!(c.d2_exempt("crates/bench/src/main.rs"));
    }

    #[test]
    fn rejects_unknown_keys_and_garbage() {
        assert!(Config::parse("[scan]\nwhat = [\"x\"]\n").is_err());
        assert!(Config::parse("[scan]\ninclude = [x]\n").is_err());
        assert!(Config::parse("include = [\"x\"\n").is_err());
    }
}
