//! The rule engine: D1/D2/C1/C2/C3/C4/N1 checks over preprocessed source.
//!
//! All rules operate on the code-only token stream produced by
//! [`crate::scan`]. They are deliberately heuristic — this is a lint
//! for a codebase that `cargo fmt` keeps in canonical form, not a full
//! parser — but each heuristic is chosen so that false negatives are
//! unlikely on this workspace's idiom, and false positives can always
//! be silenced with a reasoned pragma.

use crate::config::Config;
use crate::scan::{self, Prepared};
use crate::{Diagnostic, Finding, RuleId};

/// Hash-container type names whose iteration order is nondeterministic
/// (or deterministic-but-hash-ordered, which is just as bad for float
/// accumulation).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods that observe a container in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

/// Run every applicable rule over one file's prepared source,
/// returning only active (non-suppressed) diagnostics.
pub fn check_file(rel_path: &str, prepared: &Prepared, config: &Config) -> Vec<Diagnostic> {
    check_file_report(rel_path, prepared, config)
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| f.diag)
        .collect()
}

/// [`check_file`], but keeping pragma-suppressed findings (tagged) so
/// `--format json` can report pragma status.
pub fn check_file_report(rel_path: &str, prepared: &Prepared, config: &Config) -> Vec<Finding> {
    let mut diags = Vec::new();
    for (line, problem) in &prepared.pragma_errors {
        diags.push(Diagnostic {
            rule: RuleId::Pragma,
            file: rel_path.to_string(),
            line: *line,
            message: format!("malformed pragma: {problem}"),
        });
    }
    if config.d1_applies(rel_path) {
        rule_d1(rel_path, prepared, &mut diags);
    }
    if !config.d2_exempt(rel_path) {
        rule_d2(rel_path, prepared, &mut diags);
    }
    rule_c1(rel_path, prepared, &mut diags);
    if !config.c2_exempt(rel_path) {
        rule_c2(rel_path, prepared, &mut diags);
    }
    if config.c3_applies(rel_path) {
        rule_c3(rel_path, prepared, &mut diags);
    }
    if !config.c4_exempt(rel_path) {
        rule_c4(rel_path, prepared, &mut diags);
    }
    if config.n1_applies(rel_path) {
        rule_n1(rel_path, prepared, &mut diags);
    }
    diags.sort_by_key(|a| (a.line, a.rule));
    diags
        .into_iter()
        .map(|d| {
            let suppressed = d.rule != RuleId::Pragma && prepared.is_allowed(d.rule, d.line);
            Finding {
                diag: d,
                suppressed,
            }
        })
        .collect()
}

/// D1: no hash-map/set iteration in determinism-critical modules.
///
/// Pass 1 registers identifiers bound to hash types (`let x: FxHashMap<..>`,
/// `x = FxHashMap::new()`, struct fields `entries: FxHashMap<..>`).
/// Pass 2 flags `ident.iter()` / `for x in &ident` on registered names,
/// plus direct iteration-method calls on fields of `self`.
fn rule_d1(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    let mut hash_bound: Vec<String> = Vec::new();
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        for (i, tok) in tokens.iter().enumerate() {
            if !HASH_TYPES.contains(&tok.as_str()) {
                continue;
            }
            // Skip `FxHashMap` appearing as a path qualifier we already
            // counted (`hash::FxHashMap`): the binding name is found by
            // walking left past `::`-qualification to the `:` or `=`.
            if let Some(name) = binding_name(&tokens, i) {
                if !hash_bound.contains(&name) {
                    hash_bound.push(name);
                }
            }
        }
    }
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        for (i, tok) in tokens.iter().enumerate() {
            if ITER_METHODS.contains(&tok.as_str())
                && tokens.get(i + 1).map(String::as_str) == Some("(")
                && tokens.get(i.wrapping_sub(1)).map(String::as_str) == Some(".")
            {
                if let Some(recv) = receiver_name(&tokens, i - 1) {
                    if hash_bound.contains(&recv) {
                        diags.push(Diagnostic {
                            rule: RuleId::D1,
                            file: rel_path.to_string(),
                            line: line.number,
                            message: format!(
                                "hash-ordered iteration `{recv}.{tok}()` in a \
                                 determinism-critical module; use BTreeMap/BTreeSet \
                                 or sort before consuming"
                            ),
                        });
                    }
                }
            }
        }
        // `for x in &ident` / `for x in ident`
        if let Some(pos) = tokens.iter().position(|t| t == "for") {
            if let Some(in_pos) = tokens[pos..].iter().position(|t| t == "in") {
                let mut j = pos + in_pos + 1;
                while tokens.get(j).map(String::as_str) == Some("&") {
                    j += 1;
                }
                if let Some(name) = tokens.get(j) {
                    let next = tokens.get(j + 1).map(String::as_str);
                    let terminates = matches!(next, Some("{") | None);
                    if terminates && hash_bound.contains(name) {
                        diags.push(Diagnostic {
                            rule: RuleId::D1,
                            file: rel_path.to_string(),
                            line: line.number,
                            message: format!(
                                "hash-ordered `for _ in {name}` in a determinism-critical \
                                 module; use BTreeMap/BTreeSet or sort before consuming"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Name being bound when `tokens[type_pos]` is a hash-type token:
/// walk left past generics/qualifiers to a `:` (binding/field) or `=`
/// (assignment), then take the identifier before it.
fn binding_name(tokens: &[String], type_pos: usize) -> Option<String> {
    let mut i = type_pos;
    // Walk left past `path::` qualification: `hash :: FxHashMap`.
    while i >= 2 && tokens[i - 1] == "::" {
        i -= 2;
    }
    // ...and past reference/mutability sigils: `counts: &mut FxHashMap`.
    while i >= 1 && matches!(tokens[i - 1].as_str(), "&" | "mut") {
        i -= 1;
    }
    if i == 0 {
        return None;
    }
    match tokens[i - 1].as_str() {
        ":" | "=" => {
            let name = tokens.get(i.checked_sub(2)?)?;
            let c = name.chars().next()?;
            (c.is_alphabetic() || c == '_').then(|| name.clone())
        }
        _ => None,
    }
}

/// Receiver of a `.method(` call at `dot_pos`: the identifier chain
/// ending just before the dot, skipping one `self.` hop and one
/// balanced `[...]` index.
fn receiver_name(tokens: &[String], dot_pos: usize) -> Option<String> {
    let mut i = dot_pos;
    // Skip a balanced index: `sets[i].iter()` → receiver `sets`.
    if i >= 1 && tokens[i - 1] == "]" {
        let mut depth = 1;
        i -= 1;
        while i > 0 && depth > 0 {
            i -= 1;
            match tokens[i].as_str() {
                "]" => depth += 1,
                "[" => depth -= 1,
                _ => {}
            }
        }
    }
    let name = tokens.get(i.checked_sub(1)?)?;
    let c = name.chars().next()?;
    if !(c.is_alphabetic() || c == '_') {
        return None;
    }
    Some(name.clone())
}

/// D2: no wall-clock or ambient-RNG reads outside whitelisted modules.
fn rule_d2(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    const FORBIDDEN: &[(&str, &[&str])] = &[
        ("Instant::now", &["Instant", "::", "now"]),
        ("SystemTime::now", &["SystemTime", "::", "now"]),
        ("thread_rng", &["thread_rng"]),
        ("from_entropy", &["from_entropy"]),
    ];
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        for (name, pattern) in FORBIDDEN {
            if contains_seq(&tokens, pattern) {
                diags.push(Diagnostic {
                    rule: RuleId::D2,
                    file: rel_path.to_string(),
                    line: line.number,
                    message: format!(
                        "`{name}` outside the timing whitelist breaks serial replay; \
                         thread a logical clock or seeded RNG through instead"
                    ),
                });
            }
        }
    }
}

/// C1: no panicking lock acquisition on shared state.
fn rule_c1(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    const LOCKS: &[&str] = &["lock", "read", "write"];
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        for (i, tok) in tokens.iter().enumerate() {
            if !LOCKS.contains(&tok.as_str()) {
                continue;
            }
            // `.lock() . unwrap (` / `.lock() . expect (`
            let call = tokens.get(i + 1).map(String::as_str) == Some("(")
                && tokens.get(i + 2).map(String::as_str) == Some(")")
                && tokens.get(i.wrapping_sub(1)).map(String::as_str) == Some(".");
            if !call {
                continue;
            }
            let after = (
                tokens.get(i + 3).map(String::as_str),
                tokens.get(i + 4).map(String::as_str),
            );
            if after.0 == Some(".") && matches!(after.1, Some("unwrap") | Some("expect")) {
                diags.push(Diagnostic {
                    rule: RuleId::C1,
                    file: rel_path.to_string(),
                    line: line.number,
                    message: format!(
                        "`.{tok}().{}` panics on poison; use \
                         jxp_telemetry::sync::{}_unpoisoned (or \
                         unwrap_or_else(|e| e.into_inner()))",
                        after.1.unwrap_or("unwrap"),
                        tok
                    ),
                });
            }
        }
    }
}

/// C2: `Ordering::Relaxed` audit — every Relaxed use must be justified
/// (telemetry counters get a file-level pragma; everything else either
/// upgrades to Acquire/Release or carries a reasoned line pragma).
fn rule_c2(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        // A `use` import of the ordering is not a use site.
        if tokens.first().map(String::as_str) == Some("use") {
            continue;
        }
        let relaxed = contains_seq(&tokens, &["Ordering", "::", "Relaxed"])
            || (tokens.iter().any(|t| t == "Relaxed")
                && tokens.iter().any(|t| {
                    matches!(
                        t.as_str(),
                        "load"
                            | "store"
                            | "fetch_add"
                            | "fetch_sub"
                            | "swap"
                            | "compare_exchange"
                            | "compare_exchange_weak"
                    )
                }));
        if relaxed {
            diags.push(Diagnostic {
                rule: RuleId::C2,
                file: rel_path.to_string(),
                line: line.number,
                message: "`Ordering::Relaxed` on an atomic: if this atomic publishes \
                          data to another thread, use Release/Acquire; if it is a \
                          pure counter, annotate with a reasoned allow pragma"
                    .to_string(),
            });
        }
    }
}

/// C3: no unbounded channels in runtime modules. A long-lived meeting
/// loop with an unbounded `mpsc::channel()` buffers without limit when
/// the consumer stalls; `sync_channel(n)` turns that into backpressure.
/// The `channel` token must head a call (`channel(`) and not be a
/// method (`.channel(`), which keeps field accesses and unrelated APIs
/// out; `sync_channel` is a different token and never matches.
fn rule_c3(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        for (i, tok) in tokens.iter().enumerate() {
            if tok != "channel" {
                continue;
            }
            // Skip a turbofish: `channel::<u64>(` is still a call.
            let mut k = i + 1;
            if tokens.get(k).map(String::as_str) == Some("::")
                && tokens.get(k + 1).map(String::as_str) == Some("<")
            {
                let mut depth = 1;
                k += 2;
                while k < tokens.len() && depth > 0 {
                    match tokens[k].as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
            let is_call = tokens.get(k).map(String::as_str) == Some("(");
            let is_method = i >= 1 && tokens[i - 1] == ".";
            if is_call && !is_method {
                diags.push(Diagnostic {
                    rule: RuleId::C3,
                    file: rel_path.to_string(),
                    line: line.number,
                    message: "unbounded `channel()` in a runtime module: a stalled \
                              consumer buffers memory without limit; use \
                              `sync_channel(n)` so the producer blocks instead"
                        .to_string(),
                });
            }
        }
    }
}

/// C4: no detached `thread::spawn`. A spawn whose `JoinHandle` is
/// dropped outlives every shutdown path silently. The heuristic flags a
/// `thread::spawn(` chain used as a *statement* — the token before the
/// chain is `;`, `{`, `}`, or line start — and accepts any use where
/// the handle flows somewhere (`let h = …`, `workers.push(…)`, a tail
/// expression after `(` or `=`). Scoped spawns (`scope.spawn`) are
/// inherently joined and never match the `thread::spawn` pattern.
fn rule_c4(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        for i in 0..tokens.len() {
            if tokens[i] != "thread"
                || tokens.get(i + 1).map(String::as_str) != Some("::")
                || tokens.get(i + 2).map(String::as_str) != Some("spawn")
                || tokens.get(i + 3).map(String::as_str) != Some("(")
            {
                continue;
            }
            // Walk left past `std::`-style qualification.
            let mut j = i;
            while j >= 2 && tokens[j - 1] == "::" {
                j -= 2;
            }
            let before = if j == 0 {
                None
            } else {
                Some(tokens[j - 1].as_str())
            };
            if matches!(before, None | Some(";") | Some("{") | Some("}")) {
                diags.push(Diagnostic {
                    rule: RuleId::C4,
                    file: rel_path.to_string(),
                    line: line.number,
                    message: "detached `thread::spawn` discards its JoinHandle; bind \
                              the handle and join it on shutdown, or use a scoped \
                              thread"
                        .to_string(),
                });
            }
        }
    }
    rule_c4_builder(rel_path, prepared, diags);
}

/// C4 (builder form): `thread::Builder::new()…spawn(...)` whose
/// `JoinHandle` is discarded via `let _ = …` or `….ok()` — the tcp.rs
/// acceptor leak pattern. Builder chains are normally formatted across
/// lines, so this sub-pass matches over the flat token stream.
fn rule_c4_builder(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    let mut toks: Vec<(usize, String)> = Vec::new();
    for line in &prepared.lines {
        for t in scan::tokenize(&line.code) {
            toks.push((line.number, t));
        }
    }
    let at = |i: usize| toks.get(i).map(|t| t.1.as_str());
    for i in 0..toks.len() {
        if toks[i].1 != "Builder"
            || at(i + 1) != Some("::")
            || at(i + 2) != Some("new")
            || at(i + 3) != Some("(")
            || at(i + 4) != Some(")")
        {
            continue;
        }
        // Walk the postfix chain forward to a `.spawn(` link.
        let mut j = i + 5;
        let mut spawn_line = None;
        while at(j) == Some(".") {
            let name = at(j + 1);
            if at(j + 2) != Some("(") {
                break;
            }
            let close = balanced_end(&toks, j + 2);
            if name == Some("spawn") {
                spawn_line = Some(toks[j + 1].0);
                j = close;
                break;
            }
            j = close;
        }
        let Some(spawn_line) = spawn_line else {
            continue;
        };
        // Discarded backward: `let _ = std::thread::Builder…`.
        let mut b = i;
        while b >= 2 && toks[b - 1].1 == "::" {
            b -= 2;
        }
        let let_discard =
            b >= 3 && toks[b - 1].1 == "=" && toks[b - 2].1 == "_" && toks[b - 3].1 == "let";
        // Discarded forward: `…spawn(...).ok()`.
        let ok_discard = at(j) == Some(".")
            && at(j + 1) == Some("ok")
            && at(j + 2) == Some("(")
            && at(j + 3) == Some(")");
        if let_discard || ok_discard {
            diags.push(Diagnostic {
                rule: RuleId::C4,
                file: rel_path.to_string(),
                line: spawn_line,
                message: "`Builder::new()…spawn()` handle discarded (the tcp.rs \
                          leak pattern): bind the JoinHandle and join it on \
                          shutdown instead of `let _ =` / `.ok()`"
                    .to_string(),
            });
        }
    }
}

/// Index after the balanced paren group opening at `open`.
fn balanced_end(toks: &[(usize, String)], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].1.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// N1: no blocking socket calls inside the reactor. Its contract is
/// that one loop thread drives every connection through non-blocking
/// readiness polling; a single blocking call — a `read_exact` that
/// waits for bytes, a `connect_timeout` that waits for a handshake, or
/// flipping a socket back to blocking mode — stalls every in-flight
/// meeting behind one slow peer.
fn rule_n1(rel_path: &str, prepared: &Prepared, diags: &mut Vec<Diagnostic>) {
    const FORBIDDEN: &[(&str, &[&str], &str)] = &[
        (
            "read_exact",
            &["read_exact", "("],
            "a blocking read parks the loop on one peer; do non-blocking \
             reads and accumulate partial frames with FrameAccumulator",
        ),
        (
            "connect_timeout",
            &["connect_timeout", "("],
            "a blocking connect parks the loop for the whole handshake; \
             connect without a timeout and bound it with a reactor timer",
        ),
        (
            "set_nonblocking(false)",
            &["set_nonblocking", "(", "false", ")"],
            "reactor sockets must stay non-blocking; flipping one back \
             lets any later I/O call park the loop thread",
        ),
    ];
    for line in &prepared.lines {
        let tokens = scan::tokenize(&line.code);
        for (name, pattern, why) in FORBIDDEN {
            if contains_seq(&tokens, pattern) {
                diags.push(Diagnostic {
                    rule: RuleId::N1,
                    file: rel_path.to_string(),
                    line: line.number,
                    message: format!("blocking socket call `{name}` in the reactor: {why}"),
                });
            }
        }
    }
}

/// Does `haystack` contain `needle` as a contiguous token run?
fn contains_seq(haystack: &[String], needle: &[&str]) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w.iter().zip(needle).all(|(a, b)| a == b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::preprocess;

    fn check(rel: &str, src: &str) -> Vec<Diagnostic> {
        check_file(rel, &preprocess(src), &Config::default())
    }

    #[test]
    fn d1_flags_iteration_of_bound_hash_map() {
        let src = "struct S { entries: FxHashMap<u64, f64> }\n\
                   fn f(s: &S) -> f64 { s.entries.values().sum() }\n";
        let diags = check("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::D1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn d1_registers_reference_parameters() {
        let src = "fn f(counts: &HashMap<u64, f64>) -> f64 {\n\
                   counts.values().sum()\n}\n\
                   fn g(seen: &mut FxHashSet<u64>) {\n\
                   seen.retain(|_| true);\n}\n";
        let diags = check("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RuleId::D1));
    }

    #[test]
    fn d1_flags_for_loop_over_hash_set() {
        let src = "let seen: FxHashSet<u64> = FxHashSet::default();\n\
                   for p in &seen {\n}\n";
        let diags = check("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn d1_ignores_lookup_only_maps_and_noncritical_paths() {
        let src = "let position: FxHashMap<u64, usize> = FxHashMap::default();\n\
                   let x = position.get(&7);\n";
        assert!(check("crates/core/src/x.rs", src).is_empty());
        let iterating = "let m: HashMap<u64, f64> = HashMap::new();\nfor v in &m {}\n";
        assert!(check("crates/node/src/x.rs", iterating).is_empty());
    }

    #[test]
    fn d1_indexed_receiver() {
        let src = "let sets: Vec<FxHashSet<u64>> = vec![];\n\
                   let n = sets[i].intersection(&sets[j]).count();\n";
        // `sets` is bound to Vec<FxHashSet>, registered via the `:` left of FxHashSet?
        // binding_name walks to `Vec` — not an ident followed by :/=, so `sets`
        // is registered through the `=`-less `:` path only if directly bound.
        // The nested generic means `sets` itself is NOT registered; the rule
        // relies on a pragma for container-of-hash cases. Document that here.
        let diags = check("crates/core/src/x.rs", src);
        assert!(diags.is_empty());
    }

    #[test]
    fn d2_flags_wall_clock_and_rng() {
        let src = "let t = Instant::now();\nlet r = rand::thread_rng();\n";
        let diags = check("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RuleId::D2));
    }

    #[test]
    fn d2_whitelist_and_pragma() {
        let src = "let t = Instant::now();\n";
        assert!(check("crates/core/src/meeting.rs", src).is_empty());
        assert!(check("crates/bench/src/main.rs", src).is_empty());
        let pragmad = "let t = Instant::now(); // jxp-analyze: allow(D2, reason = \"UI only\")\n";
        assert!(check("crates/core/src/x.rs", pragmad).is_empty());
    }

    #[test]
    fn c1_flags_unwrap_and_expect() {
        let src = "let g = self.state.lock().unwrap();\n\
                   let r = self.map.read().expect( \"poisoned\" );\n\
                   let w = self.map.write().unwrap();\n";
        let diags = check("crates/node/src/x.rs", src);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == RuleId::C1));
    }

    #[test]
    fn c1_accepts_recovering_idiom() {
        let src = "let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n\
                   let h = lock_unpoisoned(&self.state);\n";
        assert!(check("crates/node/src/x.rs", src).is_empty());
    }

    #[test]
    fn c2_flags_relaxed_and_respects_file_pragma() {
        let src = "self.flag.store(true, Ordering::Relaxed);\n";
        let diags = check("crates/node/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::C2);
        let pragmad = "// jxp-analyze: allow-file(C2, reason = \"pure counters\")\n\
                       self.flag.store(true, Ordering::Relaxed);\n";
        assert!(check("crates/node/src/x.rs", pragmad).is_empty());
    }

    #[test]
    fn c2_flags_short_form_relaxed() {
        let src = "use std::sync::atomic::Ordering::Relaxed;\n\
                   self.head.fetch_add(1, Relaxed);\n";
        let diags = check("crates/node/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn c3_flags_unbounded_channels_only_in_runtime_modules() {
        let src = "let (tx, rx) = std::sync::mpsc::channel();\n";
        let diags = check("crates/node/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::C3);
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn c3_accepts_bounded_channels_and_method_calls() {
        let src = "let (tx, rx) = std::sync::mpsc::sync_channel(64);\n\
                   let c = self.channel();\n\
                   let field = config.channel;\n";
        assert!(check("crates/node/src/x.rs", src).is_empty());
    }

    #[test]
    fn c4_flags_detached_spawn_statements() {
        let src = "fn serve() {\n\
                   std::thread::spawn(move || loop {});\n\
                   thread::spawn(|| {});\n\
                   }\n";
        let diags = check("crates/node/src/x.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RuleId::C4));
    }

    #[test]
    fn c4_accepts_bound_handles_and_scoped_spawns() {
        let src = "let h = std::thread::spawn(|| {});\n\
                   workers.push(std::thread::spawn(move || {}));\n\
                   let _ = thread::spawn(|| {});\n\
                   scope.spawn(move || {});\n\
                   handles.push(scope.spawn(job));\n";
        assert!(check("crates/node/src/x.rs", src).is_empty());
    }

    #[test]
    fn n1_flags_blocking_socket_calls_only_in_the_reactor() {
        let src = "stream.read_exact(&mut buf)?;\n\
                   let s = TcpStream::connect_timeout(&addr, dur)?;\n\
                   stream.set_nonblocking(false)?;\n";
        let diags = check("crates/reactor/src/machine.rs", src);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == RuleId::N1));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Outside the reactor the same calls are the intended blocking
        // idiom (the threaded TCP transport lives on them).
        assert!(check("crates/node/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn n1_accepts_the_nonblocking_idiom() {
        let src = "stream.set_nonblocking(true)?;\n\
                   let n = stream.read(&mut chunk);\n\
                   let c = TcpStream::connect(addr);\n";
        assert!(check("crates/reactor/src/machine.rs", src).is_empty());
    }

    #[test]
    fn n1_respects_reasoned_pragmas() {
        let src = "stream.read_exact(&mut buf)?; \
                   // jxp-analyze: allow(N1, reason = \"test harness\")\n";
        assert!(check("crates/reactor/src/machine.rs", src).is_empty());
    }

    #[test]
    fn malformed_pragma_is_reported_and_not_suppressing() {
        let src = "let t = Instant::now(); // jxp-analyze: allow(D2)\n";
        let diags = check("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 2); // Pragma error + the D2 hit itself
        assert!(diags.iter().any(|d| d.rule == RuleId::Pragma));
        assert!(diags.iter().any(|d| d.rule == RuleId::D2));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "let s = \"Instant::now\"; // .lock().unwrap()\n";
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }
}
