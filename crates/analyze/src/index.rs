//! Pass 1 of the two-pass engine: a workspace-wide symbol index.
//!
//! The single-file rules in [`crate::rules`] cannot see a hash map that
//! is *declared* in one module and *iterated* in another, or a pair of
//! mutexes acquired in opposite orders by two different files. This
//! module closes that gap with a lightweight token-tree reader layered
//! on the [`crate::scan`] stripper (no `syn`, no crates.io parsers): it
//! walks every scanned file once and records
//!
//! * **struct fields** with the head identifier of their type (wrapper
//!   types like `Arc`/`Rc`/`Box` unwrapped), flagging hash-ordered
//!   containers;
//! * **function signatures** — name, enclosing `impl` type, parameter
//!   names with their type heads, return-type head — plus the token
//!   range of the body;
//! * lookup tables that let pass 2 ([`crate::flow`]) resolve `self.a.b`
//!   chains, method receivers, and call targets across files.
//!
//! The reader is a heuristic over `cargo fmt`-canonical code, exactly
//! like the line rules: unresolvable constructs degrade to "unknown"
//! (pass 2 then under-approximates rather than guessing), and every
//! resulting diagnostic can carry a reasoned pragma.

use std::collections::BTreeMap;

use crate::scan::{self, Prepared};

/// Container types whose iteration order is hash-dependent.
pub const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Smart-pointer heads that are transparent for field-chain resolution
/// (`Arc<PoolShared>` behaves like `PoolShared` for `.field` access).
const TRANSPARENT_WRAPPERS: &[&str] = &["Arc", "Rc", "Box"];

/// One token with the 1-based source line it came from.
pub type Tok = (usize, String);

/// A named struct field and the resolved head of its type.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Head identifier of the field type after unwrapping transparent
    /// wrappers (`Arc<Mutex<Queue>>` → `Mutex`).
    pub type_head: String,
    /// Head identifier *inside* one `Mutex`/`RwLock`/wrapper layer, for
    /// chain resolution through lock fields (`Arc<PoolShared>` → the
    /// same as `type_head`; `Mutex<Queue>` → `Queue`).
    pub inner_head: String,
    /// Whether the (unwrapped) type is a hash-ordered container.
    pub is_hash: bool,
}

/// A struct declaration and its named fields.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// Workspace-relative file declaring it.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Named fields (tuple structs record none).
    pub fields: Vec<FieldInfo>,
}

/// A function (or method) signature plus its body's token range.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Workspace-relative file declaring it.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Enclosing `impl` type, if any (`Self` resolves to this).
    pub impl_type: Option<String>,
    /// Parameter names with their resolved type heads (`self` included,
    /// typed as the impl type).
    pub params: Vec<(String, String)>,
    /// Head identifier of the return type, if one was declared.
    pub ret_head: Option<String>,
    /// Whether the return type's head is a hash-ordered container.
    pub ret_hash: bool,
    /// Token range of the body in the file's token stream
    /// (`start..end`, exclusive; `start == end` for bodyless decls).
    pub body: (usize, usize),
}

/// One scanned file: its prepared source and flat token stream.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path.
    pub rel: String,
    /// Preprocessed source (code-only lines + pragmas).
    pub prepared: Prepared,
    /// Flat `(line, token)` stream over every code line.
    pub toks: Vec<Tok>,
}

impl FileIndex {
    /// Tokenize one prepared file into a flat line-tagged stream.
    pub fn build(rel: &str, prepared: Prepared) -> FileIndex {
        let mut toks = Vec::new();
        for line in &prepared.lines {
            for t in scan::tokenize(&line.code) {
                toks.push((line.number, t));
            }
        }
        FileIndex {
            rel: rel.to_string(),
            prepared,
            toks,
        }
    }
}

/// The workspace-wide symbol index produced by pass 1.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Structs by name. Duplicate names across files keep the first
    /// occurrence (resolution then under-approximates — acceptable for
    /// a lint, and this workspace has none).
    pub structs: BTreeMap<String, StructInfo>,
    /// Every indexed function, in file-then-token order.
    pub fns: Vec<FnInfo>,
    /// Function indexes by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Method indexes by `(impl type, name)`.
    pub by_method: BTreeMap<(String, String), usize>,
}

impl WorkspaceIndex {
    /// Build the index over every scanned file.
    pub fn build(files: &[FileIndex]) -> WorkspaceIndex {
        let mut index = WorkspaceIndex::default();
        for (file_no, file) in files.iter().enumerate() {
            index_file(&mut index, file, file_no);
        }
        for (i, f) in index.fns.iter().enumerate() {
            index.by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(t) = &f.impl_type {
                index
                    .by_method
                    .entry((t.clone(), f.name.clone()))
                    .or_insert(i);
            }
        }
        index
    }

    /// Resolve a free or path-qualified call by name: prefer a function
    /// in `file`, else accept a workspace-unique name, else give up.
    pub fn resolve_free(&self, name: &str, file: &str) -> Option<usize> {
        let candidates = self.by_name.get(name)?;
        if let Some(&i) = candidates.iter().find(|&&i| self.fns[i].file == file) {
            return Some(i);
        }
        match candidates.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }

    /// Resolve a method call on a receiver whose type head is known.
    pub fn resolve_method(&self, type_head: &str, name: &str) -> Option<usize> {
        self.by_method
            .get(&(type_head.to_string(), name.to_string()))
            .copied()
    }

    /// The head type of field `field` on struct `type_head`, following
    /// transparent wrappers (for walking `a.b.c` chains).
    pub fn field_head(&self, type_head: &str, field: &str) -> Option<&FieldInfo> {
        self.structs
            .get(type_head)?
            .fields
            .iter()
            .find(|f| f.name == field)
    }
}

/// Walk one file's token stream, recording structs, impls, and fns.
fn index_file(index: &mut WorkspaceIndex, file: &FileIndex, _file_no: usize) {
    let toks = &file.toks;
    // `impl` contexts as (brace depth of their body, type name).
    let mut impls: Vec<(u32, String)> = Vec::new();
    let mut depth: u32 = 0;
    let mut i = 0;
    while i < toks.len() {
        match toks[i].1.as_str() {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                while impls.last().is_some_and(|(d, _)| *d > depth) {
                    impls.pop();
                }
                i += 1;
            }
            "struct" => {
                i = index_struct(index, file, i);
            }
            "impl" => {
                if let Some((name, body_start)) = parse_impl_header(toks, i) {
                    impls.push((depth + 1, name));
                    depth += 1;
                    i = body_start + 1;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                let impl_type = impls.last().map(|(_, n)| n.clone());
                i = index_fn(index, file, i, impl_type);
            }
            _ => i += 1,
        }
    }
}

/// Parse `impl<G> Type {` / `impl<G> Trait for Type where … {`,
/// returning the implemented type name and the index of the body `{`.
fn parse_impl_header(toks: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut i = at + 1;
    i = skip_generics(toks, i);
    // First path (either the type, or the trait before `for`).
    let (first, mut i) = read_path_last(toks, i)?;
    let mut name = first;
    if toks.get(i).map(|t| t.1.as_str()) == Some("for") {
        i += 1;
        while matches!(toks.get(i).map(|t| t.1.as_str()), Some("&") | Some("mut")) {
            i += 1;
        }
        let (second, j) = read_path_last(toks, i)?;
        name = second;
        i = j;
    }
    // Skip a where clause (no braces can occur before the body `{`).
    while i < toks.len() && toks[i].1 != "{" {
        if toks[i].1 == ";" {
            return None; // `impl Trait for Type;`-like degenerate
        }
        i += 1;
    }
    (i < toks.len()).then_some((name, i))
}

/// Skip a balanced `<...>` generic list if one starts at `i`.
fn skip_generics(toks: &[Tok], mut i: usize) -> usize {
    if toks.get(i).map(|t| t.1.as_str()) != Some("<") {
        return i;
    }
    let mut angle = 0i32;
    while i < toks.len() {
        match toks[i].1.as_str() {
            "<" => angle += 1,
            ">" => {
                angle -= 1;
                if angle == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Read a type path (`a::b::Name<G>`), returning the last identifier
/// and the index after the whole path (generics skipped).
fn read_path_last(toks: &[Tok], mut i: usize) -> Option<(String, usize)> {
    let mut last: Option<String> = None;
    loop {
        let t = toks.get(i)?;
        if is_ident(&t.1) {
            last = Some(t.1.clone());
            i += 1;
            i = skip_generics(toks, i);
            if toks.get(i).map(|t| t.1.as_str()) == Some("::") {
                i += 1;
                continue;
            }
            break;
        }
        break;
    }
    last.map(|l| (l, i))
}

/// Index a `struct` declaration starting at token `at` (the keyword).
/// Returns the index to resume scanning from.
fn index_struct(index: &mut WorkspaceIndex, file: &FileIndex, at: usize) -> usize {
    let toks = &file.toks;
    let Some(name_tok) = toks.get(at + 1) else {
        return at + 1;
    };
    if !is_ident(&name_tok.1) {
        return at + 1;
    }
    let name = name_tok.1.clone();
    let line = name_tok.0;
    let mut i = skip_generics(toks, at + 2);
    // Tuple struct / unit struct / where clause: only brace bodies have
    // named fields. Scan to `{` or `;` (a `(` means a tuple struct).
    while i < toks.len() && !matches!(toks[i].1.as_str(), "{" | ";" | "(") {
        i += 1;
    }
    if toks.get(i).map(|t| t.1.as_str()) != Some("{") {
        // Tuple / unit struct: record it (fields unnamed → none).
        index.structs.entry(name.clone()).or_insert(StructInfo {
            name,
            file: file.rel.clone(),
            line,
            fields: Vec::new(),
        });
        return i;
    }
    let mut fields = Vec::new();
    let mut j = i + 1;
    let mut brace = 1u32;
    while j < toks.len() && brace > 0 {
        match toks[j].1.as_str() {
            "{" => {
                brace += 1;
                j += 1;
            }
            "}" => {
                brace -= 1;
                j += 1;
            }
            "#" => {
                // Attribute: skip the balanced `[...]`.
                j += 1;
                if toks.get(j).map(|t| t.1.as_str()) == Some("[") {
                    let mut sq = 0i32;
                    while j < toks.len() {
                        match toks[j].1.as_str() {
                            "[" => sq += 1,
                            "]" => {
                                sq -= 1;
                                if sq == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            "pub" => {
                j += 1;
                if toks.get(j).map(|t| t.1.as_str()) == Some("(") {
                    // pub(crate) / pub(super)
                    let mut par = 0i32;
                    while j < toks.len() {
                        match toks[j].1.as_str() {
                            "(" => par += 1,
                            ")" => {
                                par -= 1;
                                if par == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            t if brace == 1
                && is_ident(t)
                && toks.get(j + 1).map(|t| t.1.as_str()) == Some(":") =>
            {
                let fname = toks[j].1.clone();
                let fline = toks[j].0;
                let (ty, next) = read_type_tokens(toks, j + 2, &[",", "}"]);
                if let Some(info) = field_info(&fname, fline, &ty) {
                    fields.push(info);
                }
                j = next;
            }
            _ => j += 1,
        }
    }
    index.structs.entry(name.clone()).or_insert(StructInfo {
        name,
        file: file.rel.clone(),
        line,
        fields,
    });
    j
}

/// Collect the tokens of one type up to a terminator at nesting depth 0.
/// Returns the type tokens and the index after the terminator (commas
/// are consumed, a closing brace is left for the caller).
fn read_type_tokens<'t>(toks: &'t [Tok], mut i: usize, stop: &[&str]) -> (Vec<&'t str>, usize) {
    let mut out = Vec::new();
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut square = 0i32;
    while i < toks.len() {
        let t = toks[i].1.as_str();
        if angle == 0 && paren == 0 && square == 0 && stop.contains(&t) {
            return (out, if t == "," { i + 1 } else { i });
        }
        match t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" => paren += 1,
            ")" => {
                if paren == 0 {
                    return (out, i);
                }
                paren -= 1;
            }
            "[" => square += 1,
            "]" => square -= 1,
            _ => {}
        }
        out.push(t);
        i += 1;
    }
    (out, i)
}

/// Head identifier of a type token run: skip `&`/`mut`/`dyn`/`impl`
/// and a lifetime identifier, unwrap transparent wrappers, take the
/// last segment of the leading path.
pub fn type_head(ty: &[&str]) -> Option<String> {
    let mut i = 0;
    loop {
        match ty.get(i)? {
            &"&" | &"mut" | &"dyn" | &"impl" => i += 1,
            // The scanner drops lifetime ticks but keeps the ident:
            // `&'static str` tokenizes as `& static str`. A lowercase
            // ident directly followed by another ident (or `mut`) in
            // head position is such an orphaned lifetime.
            t if is_ident(t)
                && t.chars().next().is_some_and(|c| c.is_lowercase())
                && ty
                    .get(i + 1)
                    .is_some_and(|n| is_ident(n) || *n == "mut" || *n == "&") =>
            {
                i += 1;
            }
            _ => break,
        }
    }
    // Leading path: a::b::Head — walk `ident :: ident` pairs.
    let mut head = None;
    while let Some(t) = ty.get(i) {
        if !is_ident(t) {
            break;
        }
        head = Some(t.to_string());
        if ty.get(i + 1) == Some(&"::") {
            i += 2;
        } else {
            i += 1;
            break;
        }
    }
    let head = head?;
    if TRANSPARENT_WRAPPERS.contains(&head.as_str()) && ty.get(i) == Some(&"<") {
        return type_head(&ty[i + 1..]);
    }
    Some(head)
}

/// The head one generic layer *inside* the outermost type, when the
/// outer head is a cell the code dereferences through (`Mutex<Queue>` →
/// `Queue`); otherwise the head itself.
fn inner_head(ty: &[&str], outer: &str) -> String {
    if matches!(outer, "Mutex" | "RwLock" | "RefCell" | "Cell" | "OnceLock") {
        if let Some(pos) = ty.iter().position(|t| *t == "<") {
            if let Some(inner) = type_head(&ty[pos + 1..]) {
                return inner;
            }
        }
    }
    outer.to_string()
}

/// Build the [`FieldInfo`] for one declared field, if its type has a
/// resolvable head.
fn field_info(name: &str, line: usize, ty: &[&str]) -> Option<FieldInfo> {
    let head = type_head(ty)?;
    Some(FieldInfo {
        name: name.to_string(),
        line,
        inner_head: inner_head(ty, &head),
        is_hash: HASH_TYPES.contains(&head.as_str()),
        type_head: head,
    })
}

/// Index a `fn` starting at token `at`. Returns the index of the first
/// token after the *signature* (the body is walked by pass 2; nested
/// fns are found because scanning continues inside bodies).
fn index_fn(
    index: &mut WorkspaceIndex,
    file: &FileIndex,
    at: usize,
    impl_type: Option<String>,
) -> usize {
    let toks = &file.toks;
    let Some(name_tok) = toks.get(at + 1) else {
        return at + 1;
    };
    if !is_ident(&name_tok.1) {
        return at + 1;
    }
    let name = name_tok.1.clone();
    let line = toks[at].0;
    let i = skip_generics(toks, at + 2);
    if toks.get(i).map(|t| t.1.as_str()) != Some("(") {
        return at + 1;
    }
    // Parameters: split the balanced paren region at depth-1 commas.
    let mut params = Vec::new();
    let mut paren = 1i32;
    let mut j = i + 1;
    let mut part_start = j;
    let close;
    loop {
        let Some(t) = toks.get(j) else {
            return j; // malformed: bail without a body
        };
        match t.1.as_str() {
            "(" | "[" | "{" => paren += 1,
            ")" | "]" | "}" => {
                paren -= 1;
                if paren == 0 {
                    if j > part_start {
                        push_param(&mut params, &toks[part_start..j], impl_type.as_deref());
                    }
                    close = j;
                    break;
                }
            }
            "," if paren == 1 => {
                push_param(&mut params, &toks[part_start..j], impl_type.as_deref());
                part_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    // Return type.
    let mut k = close + 1;
    let mut ret_head = None;
    let mut ret_hash = false;
    if toks.get(k).map(|t| t.1.as_str()) == Some("-")
        && toks.get(k + 1).map(|t| t.1.as_str()) == Some(">")
    {
        let (ty, next) = read_type_tokens(toks, k + 2, &["{", ";", "where"]);
        ret_head = type_head(&ty);
        ret_hash = ret_head.as_deref().is_some_and(|h| HASH_TYPES.contains(&h));
        k = next;
    }
    // Skip a where clause to the body `{` (or a decl-terminating `;`).
    let mut body = (k, k);
    while let Some(t) = toks.get(k) {
        match t.1.as_str() {
            "{" => {
                // Matching close brace bounds the body.
                let mut brace = 1u32;
                let mut e = k + 1;
                while e < toks.len() && brace > 0 {
                    match toks[e].1.as_str() {
                        "{" => brace += 1,
                        "}" => brace -= 1,
                        _ => {}
                    }
                    e += 1;
                }
                body = (k + 1, e.saturating_sub(1));
                break;
            }
            ";" => {
                body = (k, k);
                break;
            }
            _ => k += 1,
        }
    }
    index.fns.push(FnInfo {
        name,
        file: file.rel.clone(),
        line,
        impl_type,
        params,
        ret_head,
        ret_hash,
        body,
    });
    // Resume right after the signature so nested fns inside the body
    // are indexed too.
    close + 1
}

/// Record one parameter's `(name, type head)` if it has the plain
/// `name: Type` shape (destructuring patterns are skipped).
fn push_param(params: &mut Vec<(String, String)>, part: &[Tok], impl_type: Option<&str>) {
    let toks: Vec<&str> = part.iter().map(|t| t.1.as_str()).collect();
    // `self` / `&self` / `&mut self` / `mut self`.
    if let Some(pos) = toks.iter().position(|t| *t == "self") {
        if toks[..pos]
            .iter()
            .all(|t| matches!(*t, "&" | "mut") || is_lifetime_ish(t))
        {
            if let Some(t) = impl_type {
                params.push(("self".to_string(), t.to_string()));
            }
            return;
        }
    }
    let mut i = 0;
    if toks.get(i) == Some(&"mut") {
        i += 1;
    }
    let Some(name) = toks.get(i) else { return };
    if !is_ident(name) || toks.get(i + 1) != Some(&":") {
        return;
    }
    if let Some(head) = type_head(&toks[i + 2..]) {
        params.push((name.to_string(), head));
    }
}

/// Whether a token is an identifier-shaped word.
pub fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// A lowercase single word in lifetime position (`& a mut self`).
fn is_lifetime_ish(t: &str) -> bool {
    is_ident(t) && t.chars().next().is_some_and(|c| c.is_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::preprocess;

    fn index_of(files: &[(&str, &str)]) -> (Vec<FileIndex>, WorkspaceIndex) {
        let files: Vec<FileIndex> = files
            .iter()
            .map(|(rel, src)| FileIndex::build(rel, preprocess(src)))
            .collect();
        let index = WorkspaceIndex::build(&files);
        (files, index)
    }

    #[test]
    fn indexes_struct_fields_with_wrappers_and_hash_flags() {
        let src = "\
pub struct PoolShared {
    pub queue: Mutex<Queue>,
    available: Condvar,
}
pub struct World {
    entries: FxHashMap<u64, f64>,
    shared: Arc<PoolShared>,
}
";
        let (_, idx) = index_of(&[("crates/x/src/a.rs", src)]);
        let pool = &idx.structs["PoolShared"];
        assert_eq!(pool.fields.len(), 2);
        assert_eq!(pool.fields[0].type_head, "Mutex");
        assert_eq!(pool.fields[0].inner_head, "Queue");
        let world = &idx.structs["World"];
        assert!(world.fields[0].is_hash);
        assert_eq!(world.fields[1].type_head, "PoolShared", "Arc unwraps");
    }

    #[test]
    fn indexes_fn_signatures_methods_and_returns() {
        let src = "\
impl WorkerPool {
    pub fn ensure_workers(&self, n: usize) {
        let x = 1;
    }
}
pub fn snapshot(world: &World) -> FxHashMap<u64, f64> {
    todo!()
}
fn helper() -> &'static WorkerPool {
    todo!()
}
";
        let (_, idx) = index_of(&[("crates/x/src/a.rs", src)]);
        assert_eq!(idx.fns.len(), 3);
        let ensure = &idx.fns[idx.by_method[&("WorkerPool".into(), "ensure_workers".into())]];
        assert_eq!(
            ensure.params,
            vec![
                ("self".to_string(), "WorkerPool".to_string()),
                ("n".to_string(), "usize".to_string()),
            ]
        );
        let snap = &idx.fns[idx.by_name["snapshot"][0]];
        assert!(snap.ret_hash);
        assert_eq!(snap.params[0], ("world".to_string(), "World".to_string()));
        let helper = &idx.fns[idx.by_name["helper"][0]];
        assert_eq!(
            helper.ret_head.as_deref(),
            Some("WorkerPool"),
            "lifetime skipped"
        );
        assert!(!helper.ret_hash);
    }

    #[test]
    fn impl_trait_for_type_resolves_to_the_type() {
        let src = "\
impl Drop for WorkerPool {
    fn drop(&mut self) {}
}
impl<T: Send> StripeRun for RoundState<T> {
    fn run(&self, stripe: usize) {}
}
";
        let (_, idx) = index_of(&[("crates/x/src/a.rs", src)]);
        assert!(idx
            .by_method
            .contains_key(&("WorkerPool".into(), "drop".into())));
        assert!(idx
            .by_method
            .contains_key(&("RoundState".into(), "run".into())));
    }

    #[test]
    fn free_call_resolution_prefers_same_file_then_unique() {
        let a = "fn lock() {}\nfn only_here() {}\n";
        let b = "fn lock() {}\n";
        let (_, idx) = index_of(&[("crates/x/src/a.rs", a), ("crates/y/src/b.rs", b)]);
        let r = idx.resolve_free("lock", "crates/y/src/b.rs").unwrap();
        assert_eq!(idx.fns[r].file, "crates/y/src/b.rs");
        assert!(
            idx.resolve_free("lock", "crates/z/src/c.rs").is_none(),
            "ambiguous"
        );
        assert!(idx.resolve_free("only_here", "crates/z/src/c.rs").is_some());
    }

    #[test]
    fn body_ranges_cover_fn_bodies() {
        let src = "fn f() { inner(); }\nfn g() {}\n";
        let (files, idx) = index_of(&[("crates/x/src/a.rs", src)]);
        let f = &idx.fns[0];
        let toks: Vec<&str> = files[0].toks[f.body.0..f.body.1]
            .iter()
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(toks, vec!["inner", "(", ")", ";"]);
        let g = &idx.fns[1];
        assert_eq!(g.body.0, g.body.1);
    }

    #[test]
    fn tuple_and_unit_structs_are_tolerated() {
        let src = "struct A(u32, Mutex<u64>);\nstruct B;\nstruct C { x: u8 }\n";
        let (_, idx) = index_of(&[("crates/x/src/a.rs", src)]);
        assert!(idx.structs["A"].fields.is_empty());
        assert!(idx.structs["B"].fields.is_empty());
        assert_eq!(idx.structs["C"].fields.len(), 1);
    }
}
