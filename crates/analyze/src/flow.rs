//! Pass 2 of the two-pass engine: dataflow-ish rules over the
//! [`crate::index::WorkspaceIndex`].
//!
//! Three rule families live here, all impossible for the per-line
//! rules in [`crate::rules`]:
//!
//! * **D1X** — cross-file hash-container flow: a `HashMap`-shaped
//!   field or return value declared in one module and iterated in a
//!   D1-critical module, followed through field-access and
//!   method-return chains.
//! * **L1** — lock-order auditor: every `lock()` / `lock_unpoisoned()`
//!   acquisition site is resolved to a lock *identity*
//!   (`OwningStruct.field`, or a function-local name), a static
//!   "lock A held while acquiring lock B" graph is built across the
//!   workspace (including through resolved calls), and cycles are
//!   flagged with both acquisition sites.
//! * **P1** — no blocking calls (`sleep`, `recv`, lock acquisition,
//!   socket reads, `join`) inside closures submitted to `jxp-pool`
//!   executors, generalizing N1 beyond the reactor.
//!
//! Like everything in this crate the walkers are heuristics over
//! `cargo fmt`-canonical code: unresolvable chains degrade to
//! "unknown" and the rules under-approximate rather than guess, so a
//! diagnostic that does fire is worth reading — and can always be
//! silenced with a reasoned pragma.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::index::{self, FileIndex, Tok, WorkspaceIndex, HASH_TYPES};
use crate::{Diagnostic, RuleId};

/// Iteration-order-observing methods (mirrors the D1 list).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

/// Free functions whose call is a lock acquisition (first argument is
/// the lock). Covers the workspace's poison-recovering helpers.
const FREE_LOCK_FNS: &[&str] = &[
    "lock",
    "lock_unpoisoned",
    "read_unpoisoned",
    "write_unpoisoned",
];

/// Postfix adapters that return the value they were called on
/// (for chain-resolution purposes).
const PASSTHROUGH_METHODS: &[&str] = &[
    "clone",
    "unwrap",
    "expect",
    "unwrap_or_else",
    "unwrap_or_default",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "to_owned",
    "cloned",
    "copied",
];

/// Run every pass-2 rule. Diagnostics come back unsorted and
/// un-suppressed; the caller applies pragmas and ordering.
pub fn check(files: &[FileIndex], index: &WorkspaceIndex, config: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rule_d1x(files, index, config, &mut diags);
    rule_l1(files, index, config, &mut diags);
    rule_p1(files, config, &mut diags);
    diags
}

// ---------------------------------------------------------------------------
// Chain resolution
// ---------------------------------------------------------------------------

/// What a postfix chain (`self.shared.queue`, `snapshot(world).clone()`)
/// resolved to.
#[derive(Debug, Clone, Default)]
struct Resolved {
    /// Current type head, if known.
    head: Option<String>,
    /// Whether the value is a hash-ordered container.
    hash: bool,
    /// Declaration site of the value's source (field decl or fn decl).
    origin: Option<(String, usize)>,
    /// Last `(owning struct, field)` traversed — the lock identity for
    /// L1 when the chain ends in a lock-typed field.
    last_field: Option<(String, String)>,
}

/// Locals and parameters in scope, by name.
type Env = BTreeMap<String, Resolved>;

/// Resolve a postfix chain starting at token `i`, not reading past
/// `end`. Returns the resolution and the index after the chain.
fn resolve_chain(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    env: &Env,
    index: &WorkspaceIndex,
    file: &str,
) -> Option<(Resolved, usize)> {
    // Leading path: ident (:: ident)*.
    let mut path: Vec<&str> = Vec::new();
    while i < end && index::is_ident(&toks[i].1) {
        path.push(toks[i].1.as_str());
        if i + 1 < end && toks[i + 1].1 == "::" && i + 2 < end && index::is_ident(&toks[i + 2].1) {
            i += 2;
        } else {
            i += 1;
            break;
        }
    }
    let mut value = if path.is_empty() {
        return None;
    } else if i < end && toks[i].1 == "(" {
        // Call: `free_fn(...)` / `Type::ctor(...)`.
        let name = *path.last().unwrap();
        let call_line = toks[i - 1].0;
        let qualifier = path.len().checked_sub(2).map(|q| path[q]);
        let resolved = if let Some(q) = qualifier.filter(|q| HASH_TYPES.contains(q)) {
            // `FxHashMap::default()`-style constructor.
            Resolved {
                head: Some(q.to_string()),
                hash: true,
                origin: Some((file.to_string(), call_line)),
                last_field: None,
            }
        } else if let Some(f) = index.resolve_free(name, file) {
            let f = &index.fns[f];
            Resolved {
                head: f.ret_head.clone(),
                hash: f.ret_hash,
                origin: Some((f.file.clone(), f.line)),
                last_field: None,
            }
        } else {
            Resolved::default()
        };
        i = skip_balanced(toks, i, "(", ")");
        resolved
    } else if path.len() == 1 {
        env.get(path[0]).cloned().unwrap_or_default()
    } else {
        // Path-qualified non-call (`module::STATIC`): unknown.
        Resolved::default()
    };
    // Postfix: fields, method calls, indexing.
    loop {
        if i < end && toks[i].1 == "[" {
            // Indexed: element type unknown, but the lock identity of
            // `self.stripes[s]` is still the `stripes` field.
            i = skip_balanced(toks, i, "[", "]");
            value.head = None;
            value.hash = false;
            continue;
        }
        if i + 1 < end && toks[i].1 == "." && index::is_ident(&toks[i + 1].1) {
            let name = toks[i + 1].1.as_str();
            let is_call = i + 2 < end && toks[i + 2].1 == "(";
            if is_call {
                if PASSTHROUGH_METHODS.contains(&name) {
                    // Value flows through unchanged.
                } else if let Some(f) = value
                    .head
                    .as_deref()
                    .and_then(|h| index.resolve_method(h, name))
                {
                    let f = &index.fns[f];
                    value = Resolved {
                        head: f.ret_head.clone(),
                        hash: f.ret_hash,
                        origin: Some((f.file.clone(), f.line)),
                        last_field: None,
                    };
                } else {
                    value = Resolved::default();
                }
                i = skip_balanced(toks, i + 2, "(", ")");
            } else {
                value = match value
                    .head
                    .as_deref()
                    .and_then(|h| index.field_head(h, name))
                {
                    Some(field) => {
                        let owner = value.head.clone().unwrap();
                        let sfile = index.structs[&owner].file.clone();
                        Resolved {
                            head: Some(field.inner_head.clone()),
                            hash: field.is_hash,
                            origin: Some((sfile, field.line)),
                            last_field: Some((owner, field.name.clone())),
                        }
                    }
                    None => Resolved::default(),
                };
                i += 2;
            }
            continue;
        }
        break;
    }
    Some((value, i))
}

/// Index after the balanced region opened by `open` at `i`.
fn skip_balanced(toks: &[Tok], i: usize, open: &str, close: &str) -> usize {
    debug_assert_eq!(toks[i].1, open);
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = toks[j].1.as_str();
        if t == open {
            depth += 1;
        } else if t == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Start of the postfix chain whose final `.` sits at `dot`: walk left
/// over `ident`, `::`, `.`, balanced `[...]` / `(...)` groups.
fn chain_start(toks: &[Tok], dot: usize) -> usize {
    let mut i = dot;
    loop {
        if i == 0 {
            return 0;
        }
        match toks[i - 1].1.as_str() {
            "]" => i = rewind_balanced(toks, i - 1, "[", "]"),
            ")" => i = rewind_balanced(toks, i - 1, "(", ")"),
            t if index::is_ident(t) => {
                i -= 1;
                if i > 0 && matches!(toks[i - 1].1.as_str(), "." | "::") {
                    i -= 1;
                } else {
                    return i;
                }
            }
            _ => return i,
        }
    }
}

/// Index of the opener matching the `close` at `at` (walking left).
fn rewind_balanced(toks: &[Tok], at: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    loop {
        let t = toks[i].1.as_str();
        if t == close {
            depth += 1;
        } else if t == open {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// Seed an environment with a function's parameters.
fn param_env(f: &index::FnInfo) -> Env {
    let mut env = Env::new();
    for (name, head) in &f.params {
        env.insert(
            name.clone(),
            Resolved {
                head: Some(head.clone()),
                hash: HASH_TYPES.contains(&head.as_str()),
                origin: Some((f.file.clone(), f.line)),
                last_field: None,
            },
        );
    }
    env
}

/// Handle a `let` statement at `i`: bind the name in `env` from either
/// an explicit `: Type` annotation or the right-hand chain. Returns the
/// index to resume from.
fn bind_let(
    toks: &[Tok],
    i: usize,
    end: usize,
    env: &mut Env,
    index: &WorkspaceIndex,
    file: &str,
) -> usize {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.1.as_str()) == Some("mut") {
        j += 1;
    }
    let Some(name) = toks.get(j).filter(|t| index::is_ident(&t.1)) else {
        return i + 1;
    };
    let name = name.1.clone();
    let line = toks[j].0;
    j += 1;
    match toks.get(j).map(|t| t.1.as_str()) {
        Some(":") => {
            // `let x: Type = ...` — type head up to the `=`.
            let mut ty = Vec::new();
            let mut k = j + 1;
            while k < end && !matches!(toks[k].1.as_str(), "=" | ";") {
                ty.push(toks[k].1.as_str());
                k += 1;
            }
            if let Some(head) = index::type_head(&ty) {
                env.insert(
                    name,
                    Resolved {
                        hash: HASH_TYPES.contains(&head.as_str()),
                        head: Some(head),
                        origin: Some((file.to_string(), line)),
                        last_field: None,
                    },
                );
            }
            k
        }
        Some("=") => {
            let mut k = j + 1;
            while k < end && matches!(toks[k].1.as_str(), "&" | "mut") {
                k += 1;
            }
            if let Some((value, _)) = resolve_chain(toks, k, end, env, index, file) {
                if value.head.is_some() || value.last_field.is_some() {
                    env.insert(name, value);
                }
            }
            j + 1
        }
        _ => j,
    }
}

// ---------------------------------------------------------------------------
// D1X: cross-file hash-container flow
// ---------------------------------------------------------------------------

fn rule_d1x(
    files: &[FileIndex],
    index: &WorkspaceIndex,
    config: &Config,
    diags: &mut Vec<Diagnostic>,
) {
    for file in files {
        if !config.d1x_applies(&file.rel) {
            continue;
        }
        for f in index.fns.iter().filter(|f| f.file == file.rel) {
            d1x_fn(file, f, index, diags);
        }
    }
}

fn d1x_fn(
    file: &FileIndex,
    f: &index::FnInfo,
    index: &WorkspaceIndex,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &file.toks;
    let (start, end) = f.body;
    let mut env = param_env(f);
    let mut i = start;
    while i < end {
        match toks[i].1.as_str() {
            "let" => {
                i = bind_let(toks, i, end, &mut env, index, &file.rel);
            }
            "." if toks
                .get(i + 1)
                .is_some_and(|t| ITER_METHODS.contains(&t.1.as_str()))
                && toks.get(i + 2).map(|t| t.1.as_str()) == Some("(") =>
            {
                let cs = chain_start(toks, i);
                if let Some((value, _)) = resolve_chain(toks, cs, i, &env, index, &file.rel) {
                    flag_cross_file(&value, file, toks, cs, i, toks[i + 1].0, diags);
                }
                i += 3;
            }
            "for" => {
                // `for pat in <chain> {` — find `in` at paren depth 0.
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < end {
                    match toks[j].1.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 => break,
                        "{" => break,
                        _ => {}
                    }
                    j += 1;
                }
                if toks.get(j).map(|t| t.1.as_str()) == Some("in") {
                    let mut k = j + 1;
                    while k < end && matches!(toks[k].1.as_str(), "&" | "mut") {
                        k += 1;
                    }
                    let body_open = (k..end).find(|&m| toks[m].1 == "{").unwrap_or(end);
                    if let Some((value, _)) =
                        resolve_chain(toks, k, body_open, &env, index, &file.rel)
                    {
                        flag_cross_file(&value, file, toks, k, body_open, toks[k].0, diags);
                    }
                    i = k;
                } else {
                    i = j;
                }
            }
            _ => i += 1,
        }
    }
}

/// Emit a D1X diagnostic when `value` is a hash container declared in
/// a different file than the iteration site.
fn flag_cross_file(
    value: &Resolved,
    file: &FileIndex,
    toks: &[Tok],
    cs: usize,
    ce: usize,
    line: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let Some((ofile, oline)) = &value.origin else {
        return;
    };
    if !value.hash || *ofile == file.rel {
        return; // same-file iteration is rule D1's business
    }
    let chain: String = toks[cs..ce.min(toks.len())]
        .iter()
        .map(|t| t.1.as_str())
        .collect::<Vec<_>>()
        .join("");
    diags.push(Diagnostic {
        rule: RuleId::D1X,
        file: file.rel.clone(),
        line,
        message: format!(
            "hash-ordered iteration over `{chain}` whose container is declared \
             at {ofile}:{oline} — a different module; use a BTree container or \
             sort at the boundary"
        ),
    });
}

// ---------------------------------------------------------------------------
// L1: lock-order auditor
// ---------------------------------------------------------------------------

/// A lock currently held during the body walk.
#[derive(Debug, Clone)]
struct Held {
    id: String,
    line: usize,
    /// `Some(name)` for `let name = <acq>` guards, `None` for
    /// statement temporaries.
    bound: Option<String>,
    /// Brace depth the guard was bound at (bound guards die when that
    /// block closes).
    depth: u32,
}

/// One "held `from`, acquired `to`" observation.
#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    from_line: usize,
    to: String,
    to_file: String,
    to_line: usize,
    /// Set when the `to` acquisition happens inside a callee rather
    /// than at the call site itself.
    via: Option<String>,
}

/// Per-function lock facts from the body walk.
#[derive(Debug, Default)]
struct FnLocks {
    /// Identities this fn acquires directly (outside closures), with
    /// the first acquisition site.
    acquires: BTreeMap<String, usize>,
    /// Inline held-while-acquiring edges.
    edges: Vec<LockEdge>,
    /// Resolved callees (outside closures).
    calls: BTreeSet<usize>,
    /// Calls made while holding locks: (held snapshot, callee, line).
    held_calls: Vec<(Vec<Held>, usize, usize)>,
}

fn rule_l1(
    files: &[FileIndex],
    index: &WorkspaceIndex,
    config: &Config,
    diags: &mut Vec<Diagnostic>,
) {
    let by_rel: BTreeMap<&str, &FileIndex> = files.iter().map(|f| (f.rel.as_str(), f)).collect();
    // Walk every function body once.
    let mut facts: Vec<FnLocks> = Vec::with_capacity(index.fns.len());
    for f in &index.fns {
        let Some(file) = by_rel.get(f.file.as_str()) else {
            facts.push(FnLocks::default());
            continue;
        };
        if config.l1_exempt(&f.file) {
            facts.push(FnLocks::default());
            continue;
        }
        let mut walk = LockWalk {
            file,
            fn_name: &f.name,
            index,
            env: param_env(f),
            out: FnLocks::default(),
        };
        walk.walk(f.body.0, f.body.1, Vec::new());
        facts.push(walk.out);
    }
    // Fixpoint: transitive acquire sets (identity → representative site).
    let mut trans: Vec<BTreeMap<String, (String, usize)>> = index
        .fns
        .iter()
        .zip(&facts)
        .map(|(f, fl)| {
            fl.acquires
                .iter()
                .map(|(id, line)| (id.clone(), (f.file.clone(), *line)))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..facts.len() {
            for &c in &facts[i].calls {
                if c == i {
                    continue;
                }
                let add: Vec<_> = trans[c]
                    .iter()
                    .filter(|(id, _)| !trans[i].contains_key(*id))
                    .map(|(id, s)| (id.clone(), s.clone()))
                    .collect();
                if !add.is_empty() {
                    trans[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Cross-function edges: held at a call → everything the callee
    // transitively acquires.
    let mut edges: Vec<LockEdge> = Vec::new();
    for (i, fl) in facts.iter().enumerate() {
        edges.extend(fl.edges.iter().cloned());
        for (held, callee, line) in &fl.held_calls {
            for (to, (to_file, to_line)) in &trans[*callee] {
                for h in held {
                    if h.id != *to {
                        edges.push(LockEdge {
                            from: h.id.clone(),
                            from_line: h.line,
                            to: to.clone(),
                            to_file: to_file.clone(),
                            to_line: *to_line,
                            via: Some(format!(
                                "{}:{line} calls `{}`",
                                index.fns[i].file, index.fns[*callee].name
                            )),
                        });
                    }
                }
            }
        }
    }
    report_cycles(&edges, index, &facts, diags);
}

/// First-edge map and adjacency, then flag every cycle once.
fn report_cycles(
    edges: &[LockEdge],
    index: &WorkspaceIndex,
    facts: &[FnLocks],
    diags: &mut Vec<Diagnostic>,
) {
    let mut first: BTreeMap<(&str, &str), &LockEdge> = BTreeMap::new();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        first.entry((&e.from, &e.to)).or_insert(e);
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    // The file each edge is observed in: the fn walk that produced it.
    // Inline edges carry their own site via `to_file`; use it directly.
    let _ = (index, facts);
    for ((a, b), e) in &first {
        if !reaches(&adj, b, a) {
            continue;
        }
        // One report per cycle: anchor at its lexicographically
        // smallest member so A→B→A doesn't double-report.
        let mut cycle_nodes: BTreeSet<&str> = BTreeSet::new();
        cycle_nodes.insert(a);
        collect_cycle_nodes(&adj, b, a, &mut cycle_nodes);
        if Some(*a) != cycle_nodes.iter().next().copied() {
            continue;
        }
        let back = first.get(&(*b, *a));
        let reverse = match back {
            Some(r) => format!(
                "the reverse acquisition (`{}` while holding `{}`) is at {}:{}{}",
                r.to,
                r.from,
                r.to_file,
                r.to_line,
                r.via
                    .as_deref()
                    .map(|v| format!(" via {v}"))
                    .unwrap_or_default()
            ),
            None => format!(
                "the cycle closes back to `{a}` through {} more lock(s)",
                cycle_nodes.len().saturating_sub(2).max(1)
            ),
        };
        diags.push(Diagnostic {
            rule: RuleId::L1,
            file: e.to_file.clone(),
            line: e.to_line,
            message: format!(
                "lock-order cycle: `{}` acquired here while `{}` is held \
                 (acquired at {}:{}){}; {}",
                e.to,
                e.from,
                e.to_file,
                e.from_line,
                e.via
                    .as_deref()
                    .map(|v| format!(" via {v}"))
                    .unwrap_or_default(),
                reverse
            ),
        });
    }
}

/// Can `from` reach `to` in the adjacency map?
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n.to_string()) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Collect the nodes on some path `from ⇝ to` (the cycle body).
fn collect_cycle_nodes<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
    out: &mut BTreeSet<&'a str>,
) {
    // BFS with parents, then walk back.
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut found = false;
    while let Some(n) = queue.pop_front() {
        if n == to {
            found = true;
            break;
        }
        if let Some(next) = adj.get(n) {
            for m in next {
                if *m != from && !parent.contains_key(m) {
                    parent.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
    }
    if !found {
        return;
    }
    out.insert(from);
    let mut cur = to;
    while let Some(p) = parent.get(cur) {
        out.insert(p);
        cur = p;
    }
}

/// Token-walking state for one function body.
struct LockWalk<'a> {
    file: &'a FileIndex,
    fn_name: &'a str,
    index: &'a WorkspaceIndex,
    env: Env,
    out: FnLocks,
}

impl LockWalk<'_> {
    /// Walk `start..end` with an initial held set (`Vec::new()` for a
    /// function body; closures also start empty — guards held at
    /// closure *creation* are not held at closure *execution*).
    fn walk(&mut self, start: usize, end: usize, mut held: Vec<Held>) {
        let toks = &self.file.toks;
        let mut depth = 0u32;
        let mut i = start;
        while i < end {
            let t = toks[i].1.as_str();
            match t {
                "{" => {
                    // Statement temporaries die before a block opens
                    // (if/while conditions); match-scrutinee extension
                    // is deliberately under-approximated.
                    held.retain(|h| h.bound.is_some());
                    depth += 1;
                    i += 1;
                }
                "}" => {
                    held.retain(|h| h.bound.is_some() && h.depth < depth);
                    depth = depth.saturating_sub(1);
                    i += 1;
                }
                ";" => {
                    held.retain(|h| h.bound.is_some());
                    i += 1;
                }
                "let" => {
                    i = bind_let(toks, i, end, &mut self.env, self.index, &self.file.rel);
                }
                "fn" => {
                    // Nested fn: indexed separately; skip its body here.
                    i = skip_nested_fn(toks, i, end);
                }
                "|" if closure_position(toks, i) => {
                    let (bstart, bend, resume) = closure_extent(toks, i, end);
                    self.walk(bstart, bend, Vec::new());
                    i = resume;
                }
                "drop"
                    if toks.get(i + 1).map(|t| t.1.as_str()) == Some("(")
                        && toks.get(i + 3).map(|t| t.1.as_str()) == Some(")") =>
                {
                    let name = &toks[i + 2].1;
                    held.retain(|h| h.bound.as_deref() != Some(name.as_str()));
                    i += 4;
                }
                _ => {
                    if let Some(next) = self.try_acquisition(i, end, &mut held, depth) {
                        i = next;
                    } else if let Some(next) = self.try_call(i, end, &held) {
                        i = next;
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Detect a lock acquisition at `i`; record edges and the new
    /// guard. Returns the index to resume from.
    fn try_acquisition(
        &mut self,
        i: usize,
        end: usize,
        held: &mut Vec<Held>,
        depth: u32,
    ) -> Option<usize> {
        let toks = &self.file.toks;
        let t = toks[i].1.as_str();
        let (id, line, resume, bound) = if FREE_LOCK_FNS.contains(&t)
            && toks.get(i + 1).map(|t| t.1.as_str()) == Some("(")
            && !matches!(
                i.checked_sub(1).map(|p| toks[p].1.as_str()),
                Some(".") | Some("fn")
            ) {
            // `lock(&self.shared.queue)` — resolve the first argument.
            let close = skip_balanced(toks, i + 1, "(", ")");
            let mut a = i + 2;
            while a < close && matches!(toks[a].1.as_str(), "&" | "mut") {
                a += 1;
            }
            let id = self.lock_identity(a, close - 1);
            (id, toks[i].0, i + 2, let_binding(toks, i))
        } else if t == "."
            && toks
                .get(i + 1)
                .is_some_and(|t| matches!(t.1.as_str(), "lock" | "read" | "write"))
            && toks.get(i + 2).map(|t| t.1.as_str()) == Some("(")
            && toks.get(i + 3).map(|t| t.1.as_str()) == Some(")")
        {
            // `<chain>.lock()` with empty parens (keeps io::Read::read
            // and io::Write::write out).
            let cs = chain_start(toks, i);
            let id = self.lock_identity(cs, i);
            (id, toks[i + 1].0, i + 4, let_binding(toks, cs))
        } else {
            return None;
        };
        let _ = end;
        for h in held.iter() {
            if h.id != id {
                self.out.edges.push(LockEdge {
                    from: h.id.clone(),
                    from_line: h.line,
                    to: id.clone(),
                    to_file: self.file.rel.clone(),
                    to_line: line,
                    via: None,
                });
            }
        }
        self.out.acquires.entry(id.clone()).or_insert(line);
        held.push(Held {
            id,
            line,
            bound,
            depth,
        });
        Some(resume)
    }

    /// Lock identity of the chain `cs..ce`: `Struct.field` when the
    /// chain resolves to a field, else a function-local name.
    fn lock_identity(&self, cs: usize, ce: usize) -> String {
        let toks = &self.file.toks;
        if let Some((value, _)) = resolve_chain(toks, cs, ce, &self.env, self.index, &self.file.rel)
        {
            if let Some((owner, field)) = value.last_field {
                return format!("{owner}.{field}");
            }
        }
        let text: String = toks[cs..ce.min(toks.len())]
            .iter()
            .map(|t| t.1.as_str())
            .collect::<Vec<_>>()
            .join("");
        format!("{}::{}::{text}", self.file.rel, self.fn_name)
    }

    /// Detect a resolvable call at `i`; record it (and the held set,
    /// if any). Returns the index to resume from.
    fn try_call(&mut self, i: usize, end: usize, held: &[Held]) -> Option<usize> {
        let toks = &self.file.toks;
        let t = toks[i].1.as_str();
        let callee = if index::is_ident(t)
            && toks.get(i + 1).map(|t| t.1.as_str()) == Some("(")
            && !matches!(
                t,
                "if" | "while" | "match" | "for" | "loop" | "return" | "drop"
            )
            && i.checked_sub(1)
                .map(|p| toks[p].1.as_str() != "." && toks[p].1.as_str() != "fn")
                .unwrap_or(true)
        {
            self.index.resolve_free(t, &self.file.rel)
        } else if t == "."
            && toks.get(i + 1).is_some_and(|t| index::is_ident(&t.1))
            && toks.get(i + 2).map(|t| t.1.as_str()) == Some("(")
        {
            let name = toks[i + 1].1.clone();
            let cs = chain_start(toks, i);
            resolve_chain(toks, cs, i, &self.env, self.index, &self.file.rel)
                .and_then(|(v, _)| v.head)
                .and_then(|h| self.index.resolve_method(&h, &name))
        } else {
            None
        };
        let _ = end;
        let callee = callee?;
        let line = toks[i].0;
        self.out.calls.insert(callee);
        if !held.is_empty() {
            self.out.held_calls.push((held.to_vec(), callee, line));
        }
        // Resume after the name so the argument list is still walked
        // (it may contain further acquisitions).
        Some(if t == "." { i + 2 } else { i + 1 })
    }
}

/// `let (mut)? name =` immediately before `start`? Returns the bound
/// name when the acquisition is the start of a let initializer.
fn let_binding(toks: &[Tok], start: usize) -> Option<String> {
    let eq = start.checked_sub(1)?;
    if toks[eq].1 != "=" {
        return None;
    }
    let name = eq.checked_sub(1)?;
    if !index::is_ident(&toks[name].1) {
        return None;
    }
    let kw = name.checked_sub(1)?;
    match toks[kw].1.as_str() {
        "let" => Some(toks[name].1.clone()),
        "mut" if kw > 0 && toks[kw - 1].1 == "let" => Some(toks[name].1.clone()),
        _ => None,
    }
}

/// Is the `|` at `i` a closure-parameter opener (vs binary or / match
/// arm alternation)?
fn closure_position(toks: &[Tok], i: usize) -> bool {
    matches!(
        i.checked_sub(1).map(|p| toks[p].1.as_str()),
        None | Some("(" | "," | "=" | "{" | ";" | "return" | "move" | "else" | "&")
    )
}

/// Extent of the closure starting at the `|` at `i`:
/// `(body_start, body_end, resume)`.
fn closure_extent(toks: &[Tok], i: usize, end: usize) -> (usize, usize, usize) {
    // Parameters: to the matching `|` (params never contain `|`).
    let mut j = i + 1;
    if j < end && toks[j].1 == "|" {
        j += 1; // `||` — empty parameter list
    } else {
        while j < end && toks[j].1 != "|" {
            j += 1;
        }
        j += 1;
    }
    if j >= end {
        return (end, end, end);
    }
    if toks[j].1 == "{" {
        let close = skip_balanced(toks, j, "{", "}");
        return (j + 1, close.saturating_sub(1).min(end), close.min(end));
    }
    // Expression body: to a `,` or `)` at relative depth 0, or `;`.
    let mut depth = 0i32;
    let mut k = j;
    while k < end {
        match toks[k].1.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            "," | ";" if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    (j, k, k)
}

/// Skip a nested `fn` declaration (signature + body) inside a body.
fn skip_nested_fn(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut j = i;
    while j < end && !matches!(toks[j].1.as_str(), "{" | ";") {
        j += 1;
    }
    if j < end && toks[j].1 == "{" {
        skip_balanced(toks, j, "{", "}").min(end)
    } else {
        (j + 1).min(end)
    }
}

// ---------------------------------------------------------------------------
// P1: no blocking calls in pool-submitted closures
// ---------------------------------------------------------------------------

/// Blocking method calls that require an argument list.
const P1_BLOCKING_WITH_ARGS: &[&str] = &[
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "read_exact",
    "read_to_end",
    "read_to_string",
];

/// Blocking method calls that take no arguments.
const P1_BLOCKING_NULLARY: &[&str] = &["recv", "join", "accept", "lock"];

fn rule_p1(files: &[FileIndex], config: &Config, diags: &mut Vec<Diagnostic>) {
    let submits = config.p1_submits();
    if submits.is_empty() {
        return;
    }
    for file in files {
        let toks = &file.toks;
        for i in 0..toks.len() {
            for (name, arg_idx) in &submits {
                if toks[i].1 != *name || toks.get(i + 1).map(|t| t.1.as_str()) != Some("(") {
                    continue;
                }
                // A submission is a call, not a declaration.
                if i > 0 && toks[i - 1].1 == "fn" {
                    continue;
                }
                let Some((astart, aend)) = nth_argument(toks, i + 1, *arg_idx) else {
                    continue;
                };
                // Only closures are inspectable; a function-pointer
                // argument is out of lexical reach.
                if !(astart..aend).any(|k| closure_position(toks, k) && toks[k].1 == "|")
                    && !(astart..aend).any(|k| toks[k].1 == "|")
                {
                    continue;
                }
                scan_blocking(file, toks, astart, aend, name, diags);
            }
        }
    }
}

/// Token range of the `n`-th (0-based) argument of the call whose `(`
/// sits at `open`.
fn nth_argument(toks: &[Tok], open: usize, n: usize) -> Option<(usize, usize)> {
    let close = skip_balanced(toks, open, "(", ")").checked_sub(1)?;
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut start = open + 1;
    for i in open + 1..close {
        match toks[i].1.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" if depth == 0 => {
                // A closure's `,`-separated parameters must not split
                // the argument list: jump to the closing `|`.
                continue;
            }
            "," if depth == 0 && !inside_closure_params(toks, open + 1, i) => {
                if arg == n {
                    return Some((start, i));
                }
                arg += 1;
                start = i + 1;
            }
            _ => {}
        }
    }
    (arg == n && start < close).then_some((start, close))
}

/// Is the token at `at` between an opening closure `|` and its closing
/// `|` (scanning from `from`)? Keeps closure parameter commas from
/// splitting the argument list.
fn inside_closure_params(toks: &[Tok], from: usize, at: usize) -> bool {
    let mut open = false;
    for i in from..at {
        if toks[i].1 == "|" {
            if !open && closure_position(toks, i) {
                open = true;
            } else if open {
                open = false;
            }
        }
    }
    open
}

/// Scan one submitted-closure region for lexically blocking calls.
fn scan_blocking(
    file: &FileIndex,
    toks: &[Tok],
    start: usize,
    end: usize,
    submit: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let mut i = start;
    while i < end {
        let t = toks[i].1.as_str();
        let hit: Option<String> =
            if t == "sleep" && toks.get(i + 1).map(|t| t.1.as_str()) == Some("(") {
                Some("sleep(..)".to_string())
            } else if t == "."
                && toks
                    .get(i + 1)
                    .is_some_and(|t| P1_BLOCKING_NULLARY.contains(&t.1.as_str()))
                && toks.get(i + 2).map(|t| t.1.as_str()) == Some("(")
                && toks.get(i + 3).map(|t| t.1.as_str()) == Some(")")
            {
                Some(format!(".{}()", toks[i + 1].1))
            } else if t == "."
                && toks
                    .get(i + 1)
                    .is_some_and(|t| P1_BLOCKING_WITH_ARGS.contains(&t.1.as_str()))
                && toks.get(i + 2).map(|t| t.1.as_str()) == Some("(")
            {
                Some(format!(".{}(..)", toks[i + 1].1))
            } else if FREE_LOCK_FNS.contains(&t)
                && toks.get(i + 1).map(|t| t.1.as_str()) == Some("(")
                && i.checked_sub(1).map(|p| toks[p].1.as_str()) != Some(".")
            {
                Some(format!("{t}(..)"))
            } else {
                None
            };
        if let Some(what) = hit {
            diags.push(Diagnostic {
                rule: RuleId::P1,
                file: file.rel.clone(),
                line: toks[i].0,
                message: format!(
                    "blocking `{what}` inside a closure submitted to `{submit}`: \
                     a parked pool worker can deadlock the round (the PR 8 \
                     caller-panic hang class); move the blocking work outside \
                     the task or restructure with try_lock/channels drained \
                     after the round"
                ),
            });
            i += 2;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{analyze_sources, Config, RuleId};

    fn rules_of(diags: &[crate::Diagnostic]) -> Vec<RuleId> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1x_flags_cross_file_field_iteration() {
        let world = "\
pub struct World {
    pub entries: FxHashMap<u64, f64>,
}
";
        let user = "\
pub fn total(world: &World) -> f64 {
    world.entries.values().sum()
}
";
        let diags = analyze_sources(
            &[
                ("crates/node/src/world.rs", world),
                ("crates/core/src/sum.rs", user),
            ],
            &Config::default(),
        );
        assert_eq!(rules_of(&diags), vec![RuleId::D1X]);
        assert_eq!(diags[0].file, "crates/core/src/sum.rs");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("crates/node/src/world.rs:2"));
    }

    #[test]
    fn d1x_follows_method_return_chains() {
        let provider = "\
pub struct Snapshots;
impl Snapshots {
    pub fn scores(&self) -> FxHashMap<u64, f64> {
        todo!()
    }
}
";
        let user = "\
pub fn consume(s: &Snapshots) {
    for (k, v) in s.scores().iter() {
        let _ = (k, v);
    }
    let m = s.scores();
    for x in &m {
        let _ = x;
    }
}
";
        let diags = analyze_sources(
            &[
                ("crates/serve/src/snap.rs", provider),
                ("crates/pagerank/src/use.rs", user),
            ],
            &Config::default(),
        );
        assert_eq!(rules_of(&diags), vec![RuleId::D1X, RuleId::D1X]);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 6);
    }

    #[test]
    fn d1x_silent_on_same_file_and_btree() {
        // Same-file declaration + iteration is D1's business; BTreeMap
        // is ordered and never flagged.
        let provider = "\
pub struct Tree {
    pub entries: BTreeMap<u64, f64>,
}
";
        let user = "\
pub fn total(t: &Tree) -> f64 {
    t.entries.values().sum()
}
";
        let diags = analyze_sources(
            &[
                ("crates/node/src/tree.rs", provider),
                ("crates/core/src/sum.rs", user),
            ],
            &Config::default(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn d1x_not_enforced_outside_critical_paths() {
        let world = "pub struct W { pub m: FxHashMap<u64, f64> }\n";
        let user = "pub fn f(w: &W) -> f64 { w.m.values().sum() }\n";
        let diags = analyze_sources(
            &[
                ("crates/core/src/w.rs", world),
                ("crates/serve/src/f.rs", user),
            ],
            &Config::default(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l1_flags_two_lock_cycle_with_both_sites() {
        // The PR 8 pool-deadlock shape, split across two files: one
        // path holds `queue` and takes `handles`, the other holds
        // `handles` and (through a call) takes `queue`.
        let shared = "\
pub struct Shared {
    pub queue: Mutex<Vec<u64>>,
    pub handles: Mutex<Vec<u64>>,
}
pub fn drain(shared: &Shared) {
    let q = lock_unpoisoned(&shared.queue);
    reap(shared);
    let _ = q;
}
pub fn reap(shared: &Shared) {
    let h = lock_unpoisoned(&shared.handles);
    let _ = h;
}
";
        let other = "\
pub fn shutdown(shared: &Shared) {
    let h = lock_unpoisoned(&shared.handles);
    let q = lock_unpoisoned(&shared.queue);
    let _ = (h, q);
}
";
        let diags = analyze_sources(
            &[
                ("crates/pool/src/shared.rs", shared),
                ("crates/pool/src/shutdown.rs", other),
            ],
            &Config::default(),
        );
        assert_eq!(rules_of(&diags), vec![RuleId::L1], "{diags:?}");
        let d = &diags[0];
        assert!(d.message.contains("Shared.queue") && d.message.contains("Shared.handles"));
        // Both acquisition sites are named as file:line pairs.
        assert!(
            d.message.contains("crates/pool/src/shutdown.rs:3")
                || d.file == "crates/pool/src/shutdown.rs",
            "{d:?}"
        );
        assert!(d.message.contains(':'), "{d:?}");
    }

    #[test]
    fn l1_silent_on_consistent_order_and_scoped_release() {
        let src = "\
pub struct Shared {
    pub queue: Mutex<Vec<u64>>,
    pub handles: Mutex<Vec<u64>>,
}
pub fn a(shared: &Shared) {
    let q = lock_unpoisoned(&shared.queue);
    let h = lock_unpoisoned(&shared.handles);
    let _ = (q, h);
}
pub fn b(shared: &Shared) {
    {
        let q = lock_unpoisoned(&shared.queue);
        let _ = q;
    }
    let h = lock_unpoisoned(&shared.handles);
    let q2 = lock_unpoisoned(&shared.queue);
    let _ = (h, q2);
}
";
        // a: queue→handles. b: drops queue before handles, then takes
        // handles→queue… which *is* a cycle with a. Use a clean twin:
        let clean = "\
pub struct Shared {
    pub queue: Mutex<Vec<u64>>,
    pub handles: Mutex<Vec<u64>>,
}
pub fn a(shared: &Shared) {
    let q = lock_unpoisoned(&shared.queue);
    let h = lock_unpoisoned(&shared.handles);
    let _ = (q, h);
}
pub fn b(shared: &Shared) {
    {
        let q = lock_unpoisoned(&shared.queue);
        let _ = q;
    }
    let h = lock_unpoisoned(&shared.handles);
    let _ = h;
}
";
        let diags = analyze_sources(&[("crates/pool/src/x.rs", clean)], &Config::default());
        assert!(diags.is_empty(), "{diags:?}");
        // And the dirty version above does fire (reverse order held).
        let diags = analyze_sources(&[("crates/pool/src/x.rs", src)], &Config::default());
        assert_eq!(rules_of(&diags), vec![RuleId::L1]);
    }

    #[test]
    fn l1_ignores_locks_acquired_in_spawned_closures() {
        // Guards held at closure creation are not held at execution:
        // spawning a worker while holding `handles` must not create a
        // handles→queue edge (the jxp-pool ensure_workers shape).
        let src = "\
pub struct Shared {
    pub queue: Mutex<Vec<u64>>,
    pub handles: Mutex<Vec<u64>>,
}
pub fn worker(shared: &Shared) {
    let q = lock_unpoisoned(&shared.queue);
    let _ = q;
}
pub fn ensure(shared: &Shared) {
    let h = lock_unpoisoned(&shared.handles);
    let t = std::thread::spawn(move || worker(shared));
    let _ = (h, t);
}
pub fn elsewhere(shared: &Shared) {
    let q = lock_unpoisoned(&shared.queue);
    reap(shared);
    let _ = q;
}
pub fn reap(shared: &Shared) {
    let h = lock_unpoisoned(&shared.handles);
    let _ = h;
}
";
        // queue→handles exists (elsewhere→reap); if the closure also
        // produced handles→queue, this would be a false cycle.
        let diags = analyze_sources(&[("crates/pool/src/x.rs", src)], &Config::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn p1_flags_blocking_calls_in_submitted_closures() {
        let src = "\
pub fn round(tasks: Vec<u64>) {
    jxp_pool::global().run_dealt(4, tasks, |t| {
        std::thread::sleep(std::time::Duration::from_millis(t));
    });
}
";
        let diags = analyze_sources(&[("crates/node/src/x.rs", src)], &Config::default());
        assert_eq!(rules_of(&diags), vec![RuleId::P1]);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn p1_flags_lock_and_recv_but_not_clean_closures() {
        let dirty = "\
pub fn round(tasks: Vec<u64>, rx: Receiver<u64>) {
    jxp_pool::global().run_with(4, tasks, |t| {
        let g = lock_unpoisoned(&GLOBAL_STATE);
        let v = rx.recv();
        let _ = (g, v, t);
    }, || ());
}
";
        let diags = analyze_sources(&[("crates/node/src/x.rs", dirty)], &Config::default());
        assert_eq!(rules_of(&diags), vec![RuleId::P1, RuleId::P1]);
        let clean = "\
pub fn round(tasks: Vec<u64>) {
    jxp_pool::global().run_dealt(4, tasks, |(a, b, slot)| {
        *slot = Some(a + b);
    });
    std::thread::sleep(std::time::Duration::from_millis(5));
}
";
        let diags = analyze_sources(&[("crates/node/src/x.rs", clean)], &Config::default());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
