//! Seeded-violation fixtures: one per rule, proving each rule fires on
//! known-bad code and that the committed workspace itself is clean.

use jxp_analyze::{analyze_source, check_workspace, Config, RuleId};
use std::path::Path;

fn rules_hit(rel: &str, src: &str) -> Vec<RuleId> {
    analyze_source(rel, src, &Config::default())
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn seeded_d1_violation_fires() {
    let src = "\
pub struct World { entries: FxHashMap<u64, f64> }
impl World {
    pub fn inflow(&self) -> f64 {
        let mut total = 0.0;
        for (_, w) in self.entries.iter() {
            total += w;
        }
        total
    }
}
";
    let hits = rules_hit("crates/core/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::D1]);
}

#[test]
fn seeded_d2_violation_fires() {
    let src = "\
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
";
    let hits = rules_hit("crates/p2pnet/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::D2, RuleId::D2]);
}

#[test]
fn seeded_c1_violation_fires() {
    let src = "\
pub fn peek(state: &std::sync::Mutex<u64>) -> u64 {
    *state.lock().unwrap()
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C1]);
}

#[test]
fn seeded_c2_violation_fires() {
    let src = "\
pub fn publish(ready: &std::sync::atomic::AtomicBool) {
    ready.store(true, std::sync::atomic::Ordering::Relaxed);
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C2]);
}

#[test]
fn seeded_c3_violation_fires() {
    let src = "\
pub fn pipeline() {
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    drop((tx, rx));
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C3]);
    // Bounded channels pass, and non-runtime modules are out of scope.
    let bounded = "pub fn p() { let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(8); }\n";
    assert!(rules_hit("crates/node/src/fixture.rs", bounded).is_empty());
    assert!(rules_hit("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn seeded_c4_violation_fires() {
    let src = "\
pub fn serve_forever() {
    std::thread::spawn(move || loop {});
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C4]);
    // Binding the handle satisfies the rule.
    let bound = "\
pub fn serve() -> std::thread::JoinHandle<()> {
    let worker = std::thread::spawn(move || {});
    worker
}
";
    assert!(rules_hit("crates/node/src/fixture.rs", bound).is_empty());
}

#[test]
fn seeded_violations_suppressed_by_reasoned_pragmas() {
    let src = "\
pub fn stamp() -> std::time::Instant {
    // jxp-analyze: allow(D2, reason = \"fixture: display-only timestamp\")
    std::time::Instant::now()
}
";
    assert!(rules_hit("crates/p2pnet/src/fixture.rs", src).is_empty());
}

#[test]
fn pragma_missing_reason_is_itself_flagged() {
    let src = "\
pub fn publish(ready: &std::sync::atomic::AtomicBool) {
    // jxp-analyze: allow(C2)
    ready.store(true, std::sync::atomic::Ordering::Relaxed);
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert!(hits.contains(&RuleId::Pragma));
    assert!(hits.contains(&RuleId::C2));
}

#[test]
fn test_modules_are_exempt() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
        let _ = state.lock().unwrap();
    }
}
";
    assert!(rules_hit("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn workspace_is_clean() {
    // CARGO_MANIFEST_DIR = crates/analyze → workspace root is ../..
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let config_text = std::fs::read_to_string(root.join("analyze.toml"))
        .expect("committed analyze.toml must exist at the workspace root");
    let config = Config::parse(&config_text).expect("analyze.toml must parse");
    let diags = check_workspace(&root, &config).expect("workspace scan must succeed");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace must be analyze-clean:\n{}",
        rendered.join("\n")
    );
}
