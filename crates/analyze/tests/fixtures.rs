//! Seeded-violation fixtures: one per rule, proving each rule fires on
//! known-bad code and that the committed workspace itself is clean.

use jxp_analyze::{analyze_source, analyze_sources, check_workspace, Config, Diagnostic, RuleId};
use std::path::Path;

fn rules_hit(rel: &str, src: &str) -> Vec<RuleId> {
    analyze_source(rel, src, &Config::default())
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

fn multi(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    analyze_sources(files, &Config::default())
}

#[test]
fn seeded_d1_violation_fires() {
    let src = "\
pub struct World { entries: FxHashMap<u64, f64> }
impl World {
    pub fn inflow(&self) -> f64 {
        let mut total = 0.0;
        for (_, w) in self.entries.iter() {
            total += w;
        }
        total
    }
}
";
    let hits = rules_hit("crates/core/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::D1]);
}

#[test]
fn seeded_d2_violation_fires() {
    let src = "\
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
";
    let hits = rules_hit("crates/p2pnet/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::D2, RuleId::D2]);
}

#[test]
fn seeded_c1_violation_fires() {
    let src = "\
pub fn peek(state: &std::sync::Mutex<u64>) -> u64 {
    *state.lock().unwrap()
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C1]);
}

#[test]
fn seeded_c2_violation_fires() {
    let src = "\
pub fn publish(ready: &std::sync::atomic::AtomicBool) {
    ready.store(true, std::sync::atomic::Ordering::Relaxed);
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C2]);
}

#[test]
fn seeded_c3_violation_fires() {
    let src = "\
pub fn pipeline() {
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    drop((tx, rx));
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C3]);
    // Bounded channels pass, and non-runtime modules are out of scope.
    let bounded = "pub fn p() { let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(8); }\n";
    assert!(rules_hit("crates/node/src/fixture.rs", bounded).is_empty());
    assert!(rules_hit("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn seeded_c4_violation_fires() {
    let src = "\
pub fn serve_forever() {
    std::thread::spawn(move || loop {});
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert_eq!(hits, vec![RuleId::C4]);
    // Binding the handle satisfies the rule.
    let bound = "\
pub fn serve() -> std::thread::JoinHandle<()> {
    let worker = std::thread::spawn(move || {});
    worker
}
";
    assert!(rules_hit("crates/node/src/fixture.rs", bound).is_empty());
}

#[test]
fn seeded_c4_builder_discard_fires() {
    // The tcp.rs leak pattern from PR 8: a Builder-spawned worker whose
    // JoinHandle is thrown away, formatted across lines as fmt does.
    let let_discard = "\
pub fn accept_loop() {
    let _ = std::thread::Builder::new()
        .name(String::from(\"worker\"))
        .spawn(move || loop {});
}
";
    assert_eq!(
        rules_hit("crates/node/src/fixture.rs", let_discard),
        vec![RuleId::C4]
    );
    let ok_discard = "\
pub fn accept_loop() {
    std::thread::Builder::new()
        .name(String::from(\"worker\"))
        .spawn(move || loop {})
        .ok();
}
";
    assert_eq!(
        rules_hit("crates/node/src/fixture.rs", ok_discard),
        vec![RuleId::C4]
    );
    // Compliant twin: binding the handle (even through .expect) passes.
    let bound = "\
pub fn accept_loop() -> std::thread::JoinHandle<()> {
    let handle = std::thread::Builder::new()
        .name(String::from(\"worker\"))
        .spawn(move || {})
        .expect(\"spawn\");
    handle
}
";
    assert!(rules_hit("crates/node/src/fixture.rs", bound).is_empty());
}

#[test]
fn seeded_d1x_violation_fires_and_compliant_twin_passes() {
    // Hash container declared in jxp-node, iterated in a D1-critical
    // module — invisible to single-file D1, caught by D1X.
    let producer = "\
pub struct Scraped {
    pub by_peer: FxHashMap<u64, f64>,
}
";
    let consumer = "\
pub fn absorb(s: &Scraped) -> f64 {
    s.by_peer.values().sum()
}
";
    let diags = multi(&[
        ("crates/node/src/scrape.rs", producer),
        ("crates/core/src/absorb.rs", consumer),
    ]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::D1X);
    assert_eq!(diags[0].file, "crates/core/src/absorb.rs");
    // The message points back at the cross-file declaration site.
    assert!(diags[0].message.contains("crates/node/src/scrape.rs:2"));
    // Compliant twin: same shape with an ordered container.
    let ordered = "\
pub struct Scraped {
    pub by_peer: BTreeMap<u64, f64>,
}
";
    let diags = multi(&[
        ("crates/node/src/scrape.rs", ordered),
        ("crates/core/src/absorb.rs", consumer),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn seeded_l1_two_lock_cycle_fires_with_both_sites() {
    // The PR 8 jxp-pool deadlock shape: the round path holds `queue`
    // and reaps `handles` (through a helper call); the shutdown path
    // holds `handles` and drains `queue`. Opposite order → deadlock.
    let pool = "\
pub struct PoolShared {
    pub queue: Mutex<Vec<u64>>,
    pub handles: Mutex<Vec<u64>>,
}
pub fn finish_round(shared: &PoolShared) {
    let q = lock_unpoisoned(&shared.queue);
    reap_finished(shared);
    drop(q);
}
fn reap_finished(shared: &PoolShared) {
    let h = lock_unpoisoned(&shared.handles);
    drop(h);
}
";
    let shutdown = "\
pub fn shutdown(shared: &PoolShared) {
    let h = lock_unpoisoned(&shared.handles);
    let q = lock_unpoisoned(&shared.queue);
    drop(q);
    drop(h);
}
";
    let diags = multi(&[
        ("crates/pool/src/round.rs", pool),
        ("crates/pool/src/shutdown.rs", shutdown),
    ]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, RuleId::L1);
    // Both lock identities and both acquisition sites (file:line) are
    // named: the diagnostic anchors at one acquisition and the message
    // carries the reverse one.
    assert!(d.message.contains("PoolShared.queue"), "{d:?}");
    assert!(d.message.contains("PoolShared.handles"), "{d:?}");
    let here = format!("{}:{}", d.file, d.line);
    let reverse = if d.file == "crates/pool/src/shutdown.rs" {
        "crates/pool/src/round.rs:"
    } else {
        "crates/pool/src/shutdown.rs:"
    };
    assert!(
        d.message.contains(&here) || d.message.contains(reverse),
        "{d:?}"
    );
    assert!(d.message.contains(reverse), "{d:?}");
    // Compliant twin: shutdown takes the locks in the same order.
    let ordered_shutdown = "\
pub fn shutdown(shared: &PoolShared) {
    let q = lock_unpoisoned(&shared.queue);
    let h = lock_unpoisoned(&shared.handles);
    drop(h);
    drop(q);
}
";
    let diags = multi(&[
        ("crates/pool/src/round.rs", pool),
        ("crates/pool/src/shutdown.rs", ordered_shutdown),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn seeded_p1_violation_fires_and_compliant_twin_passes() {
    let blocking = "\
pub fn rounds(tasks: Vec<u64>, rx: std::sync::mpsc::Receiver<u64>) {
    jxp_pool::global().run_dealt(4, tasks, |t| {
        let fed = rx.recv();
        std::thread::sleep(std::time::Duration::from_millis(t + fed.unwrap()));
    });
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", blocking);
    assert_eq!(hits, vec![RuleId::P1, RuleId::P1]);
    // Compliant twin: pure compute in the task closure; the blocking
    // calls live outside the submission.
    let clean = "\
pub fn rounds(tasks: Vec<u64>, rx: std::sync::mpsc::Receiver<u64>) {
    jxp_pool::global().run_dealt(4, tasks, |(a, b, slot)| {
        *slot = Some(a * b);
    });
    let _ = rx.recv();
    std::thread::sleep(std::time::Duration::from_millis(1));
}
";
    assert!(rules_hit("crates/node/src/fixture.rs", clean).is_empty());
}

#[test]
fn multi_rule_pragma_suppresses_both_rules_on_one_line() {
    // One line firing two rules (D1 iteration + C2 Relaxed), silenced
    // by a single multi-rule pragma with one shared reason.
    let src = "\
pub fn drain(m: &FxHashMap<u64, f64>, flag: &AtomicBool) {
    for v in m.values() { flag.store(true, Ordering::Relaxed); } // jxp-analyze: allow(D1, C2, reason = \"fixture: order-insensitive fold, counter flag\")
}
";
    assert!(rules_hit("crates/core/src/fixture.rs", src).is_empty());
    // Without the pragma both fire on the same line.
    let bare = "\
pub fn drain(m: &FxHashMap<u64, f64>, flag: &AtomicBool) {
    for v in m.values() { flag.store(true, Ordering::Relaxed); }
}
";
    let hits = rules_hit("crates/core/src/fixture.rs", bare);
    assert_eq!(hits, vec![RuleId::D1, RuleId::C2]);
    // A multi-rule pragma only covers the rules it names: D1 stays
    // suppressed, C2 still fires.
    let partial = "\
pub fn drain(m: &FxHashMap<u64, f64>, flag: &AtomicBool) {
    for v in m.values() { flag.store(true, Ordering::Relaxed); } // jxp-analyze: allow(D1, reason = \"fixture: order-insensitive fold\")
}
";
    assert_eq!(
        rules_hit("crates/core/src/fixture.rs", partial),
        vec![RuleId::C2]
    );
}

#[test]
fn file_level_pragmas_cover_the_workspace_rules() {
    // D1X suppressed by a file-level pragma in the *iterating* file.
    let producer = "\
pub struct Scraped {
    pub by_peer: FxHashMap<u64, f64>,
}
";
    let consumer = "\
// jxp-analyze: allow-file(D1X, reason = \"fixture: min-fold is order-insensitive\")
pub fn absorb(s: &Scraped) -> f64 {
    s.by_peer.values().sum()
}
";
    let diags = multi(&[
        ("crates/node/src/scrape.rs", producer),
        ("crates/core/src/absorb.rs", consumer),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
    // P1 suppressed file-wide.
    let blocking = "\
// jxp-analyze: allow-file(P1, reason = \"fixture: bench harness intentionally sleeps\")
pub fn rounds(tasks: Vec<u64>) {
    jxp_pool::global().run_dealt(4, tasks, |t| {
        std::thread::sleep(std::time::Duration::from_millis(t));
    });
}
";
    assert!(rules_hit("crates/node/src/fixture.rs", blocking).is_empty());
    // L1 suppressed by a file-level pragma in the file the diagnostic
    // anchors at (the later acquisition site).
    let pool = "\
pub struct PoolShared {
    pub queue: Mutex<Vec<u64>>,
    pub handles: Mutex<Vec<u64>>,
}
pub fn finish_round(shared: &PoolShared) {
    let q = lock_unpoisoned(&shared.queue);
    let h = lock_unpoisoned(&shared.handles);
    drop(h);
    drop(q);
}
";
    let shutdown = "\
// jxp-analyze: allow-file(L1, reason = \"fixture: shutdown runs single-threaded\")
pub fn shutdown(shared: &PoolShared) {
    let h = lock_unpoisoned(&shared.handles);
    let q = lock_unpoisoned(&shared.queue);
    drop(q);
    drop(h);
}
";
    let with_pragma = multi(&[
        ("crates/pool/src/round.rs", pool),
        ("crates/pool/src/shutdown.rs", shutdown),
    ]);
    let without: Vec<Diagnostic> = multi(&[
        ("crates/pool/src/round.rs", pool),
        (
            "crates/pool/src/shutdown.rs",
            shutdown.trim_start_matches(|c| c != '\n').trim_start(),
        ),
    ]);
    assert_eq!(without.len(), 1, "{without:?}");
    // The pragma'd variant is clean only if the diagnostic anchors in
    // the pragma'd file; otherwise it still fires there.
    if with_pragma.len() == 1 {
        assert_ne!(with_pragma[0].file, "crates/pool/src/shutdown.rs");
    }
}

#[test]
fn seeded_violations_suppressed_by_reasoned_pragmas() {
    let src = "\
pub fn stamp() -> std::time::Instant {
    // jxp-analyze: allow(D2, reason = \"fixture: display-only timestamp\")
    std::time::Instant::now()
}
";
    assert!(rules_hit("crates/p2pnet/src/fixture.rs", src).is_empty());
}

#[test]
fn pragma_missing_reason_is_itself_flagged() {
    let src = "\
pub fn publish(ready: &std::sync::atomic::AtomicBool) {
    // jxp-analyze: allow(C2)
    ready.store(true, std::sync::atomic::Ordering::Relaxed);
}
";
    let hits = rules_hit("crates/node/src/fixture.rs", src);
    assert!(hits.contains(&RuleId::Pragma));
    assert!(hits.contains(&RuleId::C2));
}

#[test]
fn test_modules_are_exempt() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
        let _ = state.lock().unwrap();
    }
}
";
    assert!(rules_hit("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn workspace_is_clean() {
    // CARGO_MANIFEST_DIR = crates/analyze → workspace root is ../..
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let config_text = std::fs::read_to_string(root.join("analyze.toml"))
        .expect("committed analyze.toml must exist at the workspace root");
    let config = Config::parse(&config_text).expect("analyze.toml must parse");
    let diags = check_workspace(&root, &config).expect("workspace scan must succeed");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace must be analyze-clean:\n{}",
        rendered.join("\n")
    );
}
