//! Recovery-ladder integration tests: checkpoint → WAL replay must be
//! bit-identical to the in-memory peer, corruption must degrade to the
//! previous consistent state, and no persisted garbage may panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use jxp_core::{snapshot, JxpConfig, JxpPeer, MeetingPayload};
use jxp_store::{DirStore, MemStore, StateStore, WalKind, WalRecord};
use jxp_webgraph::{GraphBuilder, PageId, Subgraph};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "jxp_store_test_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

/// Two peers over a shared 4-page ring-with-chord graph.
fn peer_pair() -> (JxpPeer, JxpPeer) {
    let mut b = GraphBuilder::new();
    for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
        b.add_edge(PageId(s), PageId(d));
    }
    let g = b.build();
    let a = JxpPeer::new(
        Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
        4,
        JxpConfig::default(),
    );
    let c = JxpPeer::new(
        Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
        4,
        JxpConfig::default(),
    );
    (a, c)
}

/// One meeting with the exact `core::meeting::meet` semantics (both
/// payloads computed before either absorb), returning what each side
/// absorbed so the caller can journal it.
fn exchange(a: &mut JxpPeer, c: &mut JxpPeer) -> (MeetingPayload, MeetingPayload) {
    let pa = a.payload();
    let pc = c.payload();
    a.absorb(&pc);
    c.absorb(&pa);
    (pc, pa)
}

fn absorb_record(seq: u64, inbound: MeetingPayload) -> WalRecord {
    WalRecord {
        seq,
        kind: WalKind::Absorb,
        inbound,
        outbound: None,
    }
}

/// Drive `total` meetings for peer `a`, checkpointing after
/// `checkpoint_at` of them and journaling the rest; returns the final
/// in-memory peer for comparison.
fn persisted_run(store: &dyn StateStore, key: &str, checkpoint_at: u64, total: u64) -> JxpPeer {
    let (mut a, mut c) = peer_pair();
    for _ in 0..checkpoint_at {
        exchange(&mut a, &mut c);
    }
    store
        .checkpoint(key, checkpoint_at, &snapshot::save(&a))
        .expect("checkpoint");
    for seq in checkpoint_at + 1..=total {
        let (inbound, _) = exchange(&mut a, &mut c);
        store
            .append(key, &absorb_record(seq, inbound))
            .expect("append");
    }
    a
}

#[test]
fn checkpoint_plus_wal_replay_is_bit_identical() {
    let store = MemStore::new();
    let live = persisted_run(&store, "a", 3, 7);
    let rec = store.load("a").expect("load").expect("state exists");
    assert_eq!(rec.seq, 7);
    assert_eq!(rec.checkpoint_seq, 3);
    assert_eq!(rec.replayed, 4);
    assert!(!rec.used_fallback);
    assert!(!rec.torn_tail);
    assert_eq!(
        rec.peer.scores(),
        live.scores(),
        "scores must match bit for bit"
    );
    assert_eq!(
        rec.peer.world_score().to_bits(),
        live.world_score().to_bits()
    );
    assert_eq!(rec.peer.world().len(), live.world().len());
}

#[test]
fn missing_state_loads_as_none() {
    let store = MemStore::new();
    assert!(store.load("ghost").expect("load").is_none());
}

#[test]
fn corrupt_current_falls_back_to_previous_checkpoint() {
    let store = MemStore::new();
    let (mut a, mut c) = peer_pair();
    for _ in 0..3 {
        exchange(&mut a, &mut c);
    }
    let at_3 = snapshot::save(&a);
    store.checkpoint("a", 3, &at_3).expect("checkpoint 3");
    for seq in 4..=5 {
        let (inbound, _) = exchange(&mut a, &mut c);
        store
            .append("a", &absorb_record(seq, inbound))
            .expect("append");
    }
    store
        .checkpoint("a", 5, &snapshot::save(&a))
        .expect("checkpoint 5");
    // Flip a payload byte of the current checkpoint: CRC now fails.
    store.corrupt_current("a", 40);
    let rec = store.load("a").expect("load").expect("state exists");
    assert!(rec.used_fallback, "must recover via previous checkpoint");
    assert_eq!(rec.checkpoint_seq, 3);
    // The WAL was compacted at seq 5, so records 4..5 are gone and the
    // recovered state is exactly the previous checkpoint.
    assert_eq!(rec.seq, 3);
    let at_3_peer = snapshot::load(&at_3[..]).expect("snapshot loads");
    assert_eq!(rec.peer.scores(), at_3_peer.scores());
}

#[test]
fn corrupt_current_without_fallback_is_an_error_not_a_panic() {
    let store = MemStore::new();
    let (mut a, mut c) = peer_pair();
    exchange(&mut a, &mut c);
    store
        .checkpoint("a", 1, &snapshot::save(&a))
        .expect("checkpoint");
    store.corrupt_current("a", 30);
    store.drop_previous("a");
    assert!(store.load("a").is_err());
}

#[test]
fn torn_wal_tail_is_tolerated() {
    let store = MemStore::new();
    let live = persisted_run(&store, "a", 2, 6);
    let _ = &live;
    // Tear the final record: drop its last 3 bytes.
    let wal = store.raw_wal("a");
    store.truncate_wal("a", wal.len() - 3);
    let rec = store.load("a").expect("load").expect("state exists");
    assert!(rec.torn_tail, "torn tail must be reported");
    assert_eq!(rec.seq, 5, "replay stops at the last whole record");
    assert_eq!(rec.replayed, 3);
}

#[test]
fn wal_bit_flips_never_panic() {
    let store = MemStore::new();
    let _ = persisted_run(&store, "a", 2, 5);
    let wal = store.raw_wal("a");
    for i in 0..wal.len() {
        let mut bad = wal.clone();
        bad[i] ^= 0xFF;
        store.set_wal("a", bad);
        // Any outcome is acceptable except a panic; recovery must
        // always land on *some* consistent prefix or a clean error.
        let _ = store.load("a");
    }
}

#[test]
fn dir_store_round_trips_on_disk() {
    let dir = tempdir("roundtrip");
    let store = DirStore::open(&dir).expect("open");
    let live = persisted_run(&store, "node-0", 3, 7);
    let rec = store.load("node-0").expect("load").expect("state exists");
    assert_eq!(rec.seq, 7);
    assert_eq!(rec.peer.scores(), live.scores());
    assert_eq!(store.keys().expect("keys"), vec!["node-0".to_string()]);
    assert!(store.wal_size("node-0").expect("wal size") > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dir_store_checkpoint_rotates_and_compacts() {
    let dir = tempdir("rotate");
    let store = DirStore::open(&dir).expect("open");
    let (mut a, mut c) = peer_pair();
    store
        .checkpoint("n", 0, &snapshot::save(&a))
        .expect("ckpt 0");
    for seq in 1..=4 {
        let (inbound, _) = exchange(&mut a, &mut c);
        store
            .append("n", &absorb_record(seq, inbound))
            .expect("append");
    }
    let before = store.wal_size("n").expect("wal size");
    store
        .checkpoint("n", 4, &snapshot::save(&a))
        .expect("ckpt 4");
    let after = store.wal_size("n").expect("wal size");
    assert!(
        after < before,
        "checkpoint must compact the WAL ({before} -> {after})"
    );
    assert!(dir.join("n").join("current.ckpt").exists());
    assert!(dir.join("n").join("previous.ckpt").exists());
    // The record at the checkpoint sequence survives compaction for
    // torn-meeting repair.
    let rec = store.load("n").expect("load").expect("state exists");
    assert_eq!(rec.seq, 4);
    assert_eq!(rec.last_record.expect("repair record kept").seq, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dir_store_falls_back_when_current_file_is_corrupted() {
    let dir = tempdir("fallback");
    let store = DirStore::open(&dir).expect("open");
    let (mut a, mut c) = peer_pair();
    exchange(&mut a, &mut c);
    store
        .checkpoint("n", 1, &snapshot::save(&a))
        .expect("ckpt 1");
    exchange(&mut a, &mut c);
    store
        .checkpoint("n", 2, &snapshot::save(&a))
        .expect("ckpt 2");
    let path = dir.join("n").join("current.ckpt");
    let mut bytes = std::fs::read(&path).expect("read current");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write corrupted");
    let rec = store.load("n").expect("load").expect("state exists");
    assert!(rec.used_fallback);
    assert_eq!(rec.checkpoint_seq, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keys_rejects_path_traversal() {
    let store = MemStore::new();
    assert!(store.wal_size("../evil").is_err());
    assert!(store.wal_size("").is_err());
    assert!(store.wal_size(".hidden").is_err());
    assert!(store.wal_size("node-0").is_ok());
}
