//! Store observability: checkpoint/WAL counters and duration
//! histograms, following the `NodeMetrics` detached/registered idiom.

use std::sync::Arc;

use jxp_telemetry::{Counter, Histogram, Registry};

/// Seconds buckets for checkpoint and WAL-append durations.
const DURATION_BOUNDS: &[f64] = &[0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

/// Counters and histograms describing store activity.
///
/// Like `NodeMetrics`, a `StoreMetrics` either lives detached (tests,
/// telemetry off) or registered in a `jxp-telemetry` [`Registry`] so the
/// exporters pick the series up.
#[derive(Clone)]
pub struct StoreMetrics {
    /// Checkpoints successfully installed.
    pub checkpoints_total: Arc<Counter>,
    /// WAL records appended.
    pub wal_records_total: Arc<Counter>,
    /// WAL bytes appended.
    pub wal_bytes_total: Arc<Counter>,
    /// Peers recovered from persisted state.
    pub recoveries_total: Arc<Counter>,
    /// Recoveries that fell back to the previous checkpoint.
    pub fallbacks_total: Arc<Counter>,
    /// Torn meetings repaired from a partner's final `Serve` record.
    pub repairs_total: Arc<Counter>,
    /// Store operations that failed (persistence is non-fatal; failures
    /// are counted, not propagated into the meeting loop).
    pub errors_total: Arc<Counter>,
    /// Checkpoint install duration in seconds.
    pub checkpoint_seconds: Arc<Histogram>,
    /// WAL append duration in seconds.
    pub wal_append_seconds: Arc<Histogram>,
}

impl StoreMetrics {
    /// Standalone metrics, not attached to any registry.
    pub fn detached() -> Self {
        StoreMetrics {
            checkpoints_total: Arc::new(Counter::new()),
            wal_records_total: Arc::new(Counter::new()),
            wal_bytes_total: Arc::new(Counter::new()),
            recoveries_total: Arc::new(Counter::new()),
            fallbacks_total: Arc::new(Counter::new()),
            repairs_total: Arc::new(Counter::new()),
            errors_total: Arc::new(Counter::new()),
            checkpoint_seconds: Arc::new(Histogram::new(DURATION_BOUNDS)),
            wal_append_seconds: Arc::new(Histogram::new(DURATION_BOUNDS)),
        }
    }

    /// Metrics registered in `registry` under `jxp_store_*` names.
    pub fn registered(registry: &Registry) -> Self {
        StoreMetrics {
            checkpoints_total: registry.counter("jxp_store_checkpoints_total"),
            wal_records_total: registry.counter("jxp_store_wal_records_total"),
            wal_bytes_total: registry.counter("jxp_store_wal_bytes_total"),
            recoveries_total: registry.counter("jxp_store_recoveries_total"),
            fallbacks_total: registry.counter("jxp_store_fallbacks_total"),
            repairs_total: registry.counter("jxp_store_repairs_total"),
            errors_total: registry.counter("jxp_store_errors_total"),
            checkpoint_seconds: registry.histogram("jxp_store_checkpoint_seconds", DURATION_BOUNDS),
            wal_append_seconds: registry.histogram("jxp_store_wal_append_seconds", DURATION_BOUNDS),
        }
    }
}

impl Default for StoreMetrics {
    fn default() -> Self {
        StoreMetrics::detached()
    }
}
