//! In-memory [`StateStore`] test double with corruption hooks, so
//! recovery-ladder tests can flip bits and tear tails without touching
//! the filesystem.

use std::collections::BTreeMap;
use std::sync::Mutex;

use jxp_telemetry::sync::lock_unpoisoned;

use crate::{format, validate_key, Recovered, StateStore, StoreError, WalRecord};

#[derive(Default)]
struct MemEntry {
    current: Option<Vec<u8>>,
    previous: Option<Vec<u8>>,
    wal: Vec<u8>,
}

/// In-memory store mirroring [`crate::DirStore`]'s semantics
/// (current/previous rotation, checkpoint-time WAL compaction).
#[derive(Default)]
pub struct MemStore {
    entries: Mutex<BTreeMap<String, MemEntry>>,
}

impl MemStore {
    pub fn new() -> Self {
        MemStore::default()
    }

    fn with_entry<R>(&self, key: &str, f: impl FnOnce(&mut MemEntry) -> R) -> R {
        let mut entries = lock_unpoisoned(&self.entries);
        f(entries.entry(key.to_string()).or_default())
    }

    /// XOR-flip one byte of the current checkpoint (test hook).
    pub fn corrupt_current(&self, key: &str, byte: usize) {
        self.with_entry(key, |e| {
            let bytes = e
                .current
                .as_mut()
                .expect("no current checkpoint to corrupt");
            bytes[byte] ^= 0xFF;
        });
    }

    /// Truncate the WAL to `len` bytes, simulating a torn final append
    /// (test hook).
    pub fn truncate_wal(&self, key: &str, len: usize) {
        self.with_entry(key, |e| e.wal.truncate(len));
    }

    /// Raw WAL bytes for `key` (test hook).
    pub fn raw_wal(&self, key: &str) -> Vec<u8> {
        self.with_entry(key, |e| e.wal.clone())
    }

    /// Replace the WAL bytes wholesale (test hook).
    pub fn set_wal(&self, key: &str, wal: Vec<u8>) {
        self.with_entry(key, |e| e.wal = wal);
    }

    /// Drop the previous checkpoint, leaving no fallback (test hook).
    pub fn drop_previous(&self, key: &str) {
        self.with_entry(key, |e| e.previous = None);
    }
}

impl StateStore for MemStore {
    fn checkpoint(&self, key: &str, seq: u64, snapshot: &[u8]) -> Result<(), StoreError> {
        validate_key(key)?;
        self.with_entry(key, |e| {
            if let Some(cur) = e.current.take() {
                e.previous = Some(cur);
            }
            e.current = Some(format::encode_checkpoint(seq, snapshot));
            let scan = format::scan_wal(&e.wal);
            let mut kept = Vec::new();
            for record in &scan.records {
                if record.seq >= seq {
                    kept.extend_from_slice(&format::encode_wal_record(record));
                }
            }
            e.wal = kept;
        });
        Ok(())
    }

    fn append(&self, key: &str, record: &WalRecord) -> Result<u64, StoreError> {
        validate_key(key)?;
        Ok(self.with_entry(key, |e| {
            e.wal.extend_from_slice(&format::encode_wal_record(record));
            e.wal.len() as u64
        }))
    }

    fn load(&self, key: &str) -> Result<Option<Recovered>, StoreError> {
        validate_key(key)?;
        let (current, previous, wal) = self.with_entry(key, |e| {
            (e.current.clone(), e.previous.clone(), e.wal.clone())
        });
        crate::recover(current.as_deref(), previous.as_deref(), &wal)
    }

    fn wal_size(&self, key: &str) -> Result<u64, StoreError> {
        validate_key(key)?;
        Ok(self.with_entry(key, |e| e.wal.len() as u64))
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        let entries = lock_unpoisoned(&self.entries);
        Ok(entries
            .iter()
            .filter(|(_, e)| e.current.is_some() || e.previous.is_some() || !e.wal.is_empty())
            .map(|(k, _)| k.clone())
            .collect())
    }
}
