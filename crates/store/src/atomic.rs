//! Atomic, durable file installation.
//!
//! The write-to-temp → `fsync` → rename → `fsync`-directory sequence
//! that makes checkpoint rotation crash-safe is useful beyond
//! checkpoints — `jxp-segstore` installs graph segments and manifests
//! with the same guarantees — so the primitives live here as plain
//! `io::Result` functions for any crate to reuse.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Write `bytes` to `path` and `fsync` the file before returning.
pub fn write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

/// `fsync` a directory so a rename inside it is durable.
///
/// Some platforms refuse to open directories for writing; opening
/// read-only is enough for fsync on the ones we target.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    let f = File::open(dir)?;
    f.sync_all()?;
    Ok(())
}

/// Atomically install `bytes` at `path`: write a sibling temp file
/// durably, rename it into place, and `fsync` the parent directory.
/// A crash at any point leaves either the old content of `path` (or
/// its absence) or the complete new content — never a torn file.
///
/// The temp file is `path` with an extra `.tmp` extension, so callers
/// must not use names where that would collide.
pub fn install(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "install path has no file name")
        })?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    write_durable(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("jxp_atomic_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn install_writes_content_and_removes_temp() {
        let dir = tmp_dir("install");
        let path = dir.join("data.bin");
        install(&path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        assert!(!path.with_file_name("data.bin.tmp").exists());
    }

    #[test]
    fn install_replaces_existing_file() {
        let dir = tmp_dir("replace");
        let path = dir.join("data.bin");
        install(&path, b"old").unwrap();
        install(&path, b"new content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new content");
    }

    #[test]
    fn install_rejects_bare_root() {
        assert!(install(Path::new("/"), b"x").is_err());
    }
}
