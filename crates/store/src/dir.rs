//! Filesystem-backed [`StateStore`]: one directory per peer key.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/<key>/current.ckpt    latest checkpoint (JXPC container)
//! <root>/<key>/previous.ckpt   the one before it (CRC fallback)
//! <root>/<key>/wal.log         append-only WAL since current.ckpt
//! ```
//!
//! Checkpoints are installed atomically: the container is written to a
//! temp file, `fsync`ed, the old current is renamed to previous, the
//! temp file renamed into place, and the directory `fsync`ed. At every
//! instant the directory holds at least one fully-written checkpoint,
//! which is what lets recovery tolerate a crash at any point in this
//! sequence. WAL appends are `fsync`ed before the store reports them
//! durable.
//
// jxp-analyze: allow-file(D2, reason = "Instant::now feeds duration histograms only; persistence timing never influences scores or scheduling")

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::{format, validate_key, Recovered, StateStore, StoreError, StoreMetrics, WalRecord};

const CURRENT: &str = "current.ckpt";
const PREVIOUS: &str = "previous.ckpt";
const WAL: &str = "wal.log";
const CKPT_TMP: &str = "ckpt.tmp";
const WAL_TMP: &str = "wal.tmp";

/// Raw persisted bytes for one key, for offline inspection
/// (`jxp checkpoint verify`).
#[derive(Debug, Default)]
pub struct RawKeyState {
    /// Bytes of `current.ckpt`, if present.
    pub current: Option<Vec<u8>>,
    /// Bytes of `previous.ckpt`, if present.
    pub previous: Option<Vec<u8>>,
    /// Bytes of `wal.log` (empty when absent).
    pub wal: Vec<u8>,
}

/// Per-peer directory store.
pub struct DirStore {
    root: PathBuf,
    metrics: StoreMetrics,
}

impl DirStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        DirStore::with_metrics(root, StoreMetrics::detached())
    }

    /// Open a store whose operations feed `metrics`.
    pub fn with_metrics(
        root: impl Into<PathBuf>,
        metrics: StoreMetrics,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DirStore { root, metrics })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The metrics this store reports into.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn key_dir(&self, key: &str) -> Result<PathBuf, StoreError> {
        validate_key(key)?;
        Ok(self.root.join(key))
    }

    /// Read the raw persisted bytes for `key` without validating them.
    pub fn read_raw(&self, key: &str) -> Result<RawKeyState, StoreError> {
        let dir = self.key_dir(key)?;
        Ok(RawKeyState {
            current: read_opt(&dir.join(CURRENT))?,
            previous: read_opt(&dir.join(PREVIOUS))?,
            wal: read_opt(&dir.join(WAL))?.unwrap_or_default(),
        })
    }

    /// Rewrite the WAL keeping only records with sequence `>= seq`.
    ///
    /// Called during checkpoint installation: everything below the new
    /// checkpoint's sequence is folded into the snapshot, but the
    /// record *at* the checkpoint sequence survives so a partner can
    /// still repair a torn meeting from it.
    fn compact_wal(&self, dir: &Path, seq: u64) -> Result<(), StoreError> {
        let wal_path = dir.join(WAL);
        let Some(bytes) = read_opt(&wal_path)? else {
            return Ok(());
        };
        let scan = format::scan_wal(&bytes);
        let mut kept = Vec::new();
        for record in &scan.records {
            if record.seq >= seq {
                kept.extend_from_slice(&format::encode_wal_record(record));
            }
        }
        if kept.len() == bytes.len() {
            return Ok(());
        }
        let tmp = dir.join(WAL_TMP);
        write_durable(&tmp, &kept)?;
        fs::rename(&tmp, &wal_path)?;
        sync_dir(dir)?;
        Ok(())
    }
}

fn read_opt(path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    match fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

fn write_durable(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    Ok(crate::atomic::write_durable(path, bytes)?)
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    Ok(crate::atomic::sync_dir(dir)?)
}

impl StateStore for DirStore {
    fn checkpoint(&self, key: &str, seq: u64, snapshot: &[u8]) -> Result<(), StoreError> {
        let start = Instant::now();
        let dir = self.key_dir(key)?;
        fs::create_dir_all(&dir)?;
        let bytes = format::encode_checkpoint(seq, snapshot);
        let tmp = dir.join(CKPT_TMP);
        write_durable(&tmp, &bytes)?;
        let current = dir.join(CURRENT);
        if current.exists() {
            fs::rename(&current, dir.join(PREVIOUS))?;
        }
        fs::rename(&tmp, &current)?;
        sync_dir(&dir)?;
        self.compact_wal(&dir, seq)?;
        self.metrics.checkpoints_total.inc();
        self.metrics
            .checkpoint_seconds
            .observe(start.elapsed().as_secs_f64());
        Ok(())
    }

    fn append(&self, key: &str, record: &WalRecord) -> Result<u64, StoreError> {
        let start = Instant::now();
        let dir = self.key_dir(key)?;
        fs::create_dir_all(&dir)?;
        let bytes = format::encode_wal_record(record);
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL))?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        let size = f.metadata()?.len();
        self.metrics.wal_records_total.inc();
        self.metrics.wal_bytes_total.add(bytes.len() as u64);
        self.metrics
            .wal_append_seconds
            .observe(start.elapsed().as_secs_f64());
        Ok(size)
    }

    fn load(&self, key: &str) -> Result<Option<Recovered>, StoreError> {
        let raw = self.read_raw(key)?;
        let recovered = crate::recover(raw.current.as_deref(), raw.previous.as_deref(), &raw.wal)?;
        if let Some(rec) = &recovered {
            self.metrics.recoveries_total.inc();
            if rec.used_fallback {
                self.metrics.fallbacks_total.inc();
            }
        }
        Ok(recovered)
    }

    fn wal_size(&self, key: &str) -> Result<u64, StoreError> {
        let dir = self.key_dir(key)?;
        match fs::metadata(dir.join(WAL)) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn keys(&self) -> Result<Vec<String>, StoreError> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                if let Some(name) = entry.file_name().to_str() {
                    keys.push(name.to_string());
                }
            }
        }
        keys.sort();
        Ok(keys)
    }
}
