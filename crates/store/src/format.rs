//! On-disk binary formats: the `JXPC` checkpoint container and the WAL
//! record framing.
//!
//! Both formats follow the `jxp-wire` codec conventions: little-endian
//! fixed-width integers, explicit length prefixes validated against the
//! available bytes *before* any allocation, and a CRC over the payload
//! so that torn writes and bit rot are detected rather than parsed.
//!
//! Checkpoint container (wraps a `core::snapshot` blob):
//!
//! ```text
//! magic "JXPC" | version u32 | seq u64 | payload_len u32 | crc32 u32 | payload
//! ```
//!
//! WAL record (appended after every applied meeting delta):
//!
//! ```text
//! body_len u32 | crc32 u32 (over body) | body
//! body = seq u64 | kind u8 | inbound frame [| outbound frame]
//! ```
//!
//! The embedded frames are ordinary `jxp-wire` frames (`MeetRequest`
//! for the payload this peer absorbed, `MeetReply` for the payload it
//! sent back), so the WAL is self-describing to any tool that already
//! speaks the wire protocol. `Serve` records carry *both* sides of the
//! exchange: the reply payload is what a crashed initiator needs to
//! repair a torn meeting (see `DESIGN.md` §12).

use jxp_core::MeetingPayload;
use jxp_wire::{decode_frame, encode_frame, Frame};

use crate::StoreError;

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"JXPC";
/// Current checkpoint container version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Fixed checkpoint header size: magic + version + seq + len + crc.
pub const CHECKPOINT_HEADER_LEN: usize = 4 + 4 + 8 + 4 + 4;
/// Fixed WAL record header size: body length + body CRC.
pub const WAL_HEADER_LEN: usize = 4 + 4;
/// Upper bound on a checkpoint payload or WAL record body; a claimed
/// length beyond this is corruption, not a big snapshot.
pub const MAX_PAYLOAD_LEN: usize = 256 << 20;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC-32 (the zlib/PNG polynomial), implemented locally so the
/// store adds no dependencies.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC32_INIT, data))
}

/// Initial state for the incremental form of [`crc32`]: fold any number
/// of byte slices with [`crc32_update`], then [`crc32_finish`]. Lets
/// callers checksum a header and a payload that live in separate
/// buffers without concatenating them (used by `jxp-segstore`).
pub const CRC32_INIT: u32 = 0xFFFF_FFFF;

/// Fold `data` into an incremental CRC state.
pub fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Finalize an incremental CRC state into the checksum value.
pub fn crc32_finish(c: u32) -> u32 {
    c ^ 0xFFFF_FFFF
}

/// A decoded checkpoint: the event sequence number it captures and the
/// raw `core::snapshot` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Per-peer event sequence number the snapshot corresponds to.
    pub seq: u64,
    /// Raw `core::snapshot::save` bytes.
    pub snapshot: Vec<u8>,
}

/// Encode a checkpoint container around a snapshot blob.
pub fn encode_checkpoint(seq: u64, snapshot: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_LEN + snapshot.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(snapshot).to_le_bytes());
    out.extend_from_slice(snapshot);
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Decode and CRC-validate a checkpoint container.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, StoreError> {
    if bytes.len() < CHECKPOINT_HEADER_LEN {
        return Err(StoreError::corrupt("checkpoint shorter than its header"));
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err(StoreError::corrupt("bad checkpoint magic"));
    }
    let version = read_u32(bytes, 4);
    if version != CHECKPOINT_VERSION {
        return Err(StoreError::corrupt(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let seq = read_u64(bytes, 8);
    let len = read_u32(bytes, 16) as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(StoreError::corrupt(format!(
            "checkpoint claims {len} payload bytes (max {MAX_PAYLOAD_LEN})"
        )));
    }
    let crc = read_u32(bytes, 20);
    let payload = &bytes[CHECKPOINT_HEADER_LEN..];
    if payload.len() != len {
        return Err(StoreError::corrupt(format!(
            "checkpoint claims {len} payload bytes, file holds {}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(StoreError::corrupt("checkpoint CRC mismatch"));
    }
    Ok(Checkpoint {
        seq,
        snapshot: payload.to_vec(),
    })
}

/// Which side of a meeting a WAL record captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalKind {
    /// The peer initiated a meeting and absorbed the reply payload.
    Absorb,
    /// The peer served a meeting: it absorbed the request payload and
    /// sent back a reply (also recorded, for torn-meeting repair).
    Serve,
}

/// One durable post-meeting delta.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// 1-based per-peer event sequence number.
    pub seq: u64,
    /// Which side of the meeting this peer was on.
    pub kind: WalKind,
    /// The payload this peer absorbed (replay applies exactly this).
    pub inbound: MeetingPayload,
    /// For [`WalKind::Serve`]: the pre-absorption reply this peer sent.
    pub outbound: Option<MeetingPayload>,
}

/// Encode one WAL record, framed and checksummed.
pub fn encode_wal_record(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&record.seq.to_le_bytes());
    body.push(match record.kind {
        WalKind::Absorb => 0,
        WalKind::Serve => 1,
    });
    body.extend_from_slice(&encode_frame(&Frame::MeetRequest(record.inbound.clone())));
    if let Some(outbound) = &record.outbound {
        body.extend_from_slice(&encode_frame(&Frame::MeetReply(outbound.clone())));
    }
    let mut out = Vec::with_capacity(WAL_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_wal_body(body: &[u8]) -> Result<WalRecord, StoreError> {
    if body.len() < 9 {
        return Err(StoreError::corrupt("WAL record body shorter than header"));
    }
    let seq = read_u64(body, 0);
    let kind = match body[8] {
        0 => WalKind::Absorb,
        1 => WalKind::Serve,
        other => {
            return Err(StoreError::corrupt(format!(
                "unknown WAL record kind {other}"
            )))
        }
    };
    let mut off = 9;
    let (frame, used) = decode_frame(&body[off..])
        .map_err(|e| StoreError::corrupt(format!("WAL inbound frame: {e}")))?;
    off += used;
    let inbound = match frame {
        Frame::MeetRequest(p) => p,
        other => {
            return Err(StoreError::corrupt(format!(
                "WAL inbound frame is {other:?}, expected MeetRequest"
            )))
        }
    };
    let outbound = match kind {
        WalKind::Absorb => None,
        WalKind::Serve => {
            let (frame, used) = decode_frame(&body[off..])
                .map_err(|e| StoreError::corrupt(format!("WAL outbound frame: {e}")))?;
            off += used;
            match frame {
                Frame::MeetReply(p) => Some(p),
                other => {
                    return Err(StoreError::corrupt(format!(
                        "WAL outbound frame is {other:?}, expected MeetReply"
                    )))
                }
            }
        }
    };
    if off != body.len() {
        return Err(StoreError::corrupt("trailing bytes inside WAL record body"));
    }
    Ok(WalRecord {
        seq,
        kind,
        inbound,
        outbound,
    })
}

/// Result of scanning a WAL byte stream front to back.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Records decoded before the first invalid byte.
    pub records: Vec<WalRecord>,
    /// Bytes consumed by the decoded records.
    pub consumed: usize,
    /// True when trailing bytes could not be decoded (torn tail or a
    /// mid-log flip; either way replay stops at the last good record).
    pub torn: bool,
    /// Why the scan stopped early, when it did.
    pub error: Option<StoreError>,
}

/// Decode WAL records until the bytes run out or stop making sense.
///
/// A truncated or corrupt tail is *not* an error: recovery replays the
/// clean prefix and reports `torn = true`. This is the crash-consistency
/// contract — an append torn by power loss must never poison the
/// records that were already durable before it.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    let mut off = 0;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < WAL_HEADER_LEN {
            scan.torn = true;
            scan.error = Some(StoreError::corrupt("torn WAL header"));
            break;
        }
        let len = read_u32(rest, 0) as usize;
        if len > MAX_PAYLOAD_LEN {
            scan.torn = true;
            scan.error = Some(StoreError::corrupt(format!(
                "WAL record claims {len} body bytes (max {MAX_PAYLOAD_LEN})"
            )));
            break;
        }
        if rest.len() < WAL_HEADER_LEN + len {
            scan.torn = true;
            scan.error = Some(StoreError::corrupt("torn WAL record body"));
            break;
        }
        let crc = read_u32(rest, 4);
        let body = &rest[WAL_HEADER_LEN..WAL_HEADER_LEN + len];
        if crc32(body) != crc {
            scan.torn = true;
            scan.error = Some(StoreError::corrupt("WAL record CRC mismatch"));
            break;
        }
        match decode_wal_body(body) {
            Ok(record) => {
                scan.records.push(record);
                off += WAL_HEADER_LEN + len;
                scan.consumed = off;
            }
            Err(e) => {
                scan.torn = true;
                scan.error = Some(e);
                break;
            }
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let snapshot = vec![7u8; 130];
        let bytes = encode_checkpoint(42, &snapshot);
        let ckpt = decode_checkpoint(&bytes).expect("roundtrip");
        assert_eq!(ckpt.seq, 42);
        assert_eq!(ckpt.snapshot, snapshot);
    }

    #[test]
    fn checkpoint_rejects_corruption_without_panicking() {
        let bytes = encode_checkpoint(7, &[1, 2, 3, 4, 5]);
        // Every truncation is a clean error.
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Every single-byte flip is a clean error (magic, version, seq,
        // len, crc, payload — all covered).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            // Flipping seq bytes alone keeps the payload CRC valid;
            // everything else must be rejected.
            if decode_checkpoint(&bad).is_ok() {
                assert!((8..16).contains(&i), "flip at {i} accepted");
            }
        }
    }
}
