//! `jxp-store`: durable, checksummed persistence of JXP peer state.
//!
//! `core::snapshot` already serializes a peer's complete state; this
//! crate makes that state survive process death. Each peer (addressed
//! by a string *key*) owns:
//!
//! - a **current** and a **previous** checkpoint — `JXPC` containers
//!   (magic + version + CRC) around a snapshot blob, written atomically
//!   via temp-file + `fsync` + rename so a crash mid-write can never
//!   replace a good checkpoint with a torn one;
//! - an append-only **write-ahead log** of post-meeting deltas. Every
//!   meeting a peer takes part in appends one [`WalRecord`] carrying
//!   the payload it absorbed (and, when serving, the reply it sent).
//!
//! Recovery ([`recover`]) decodes the current checkpoint — falling back
//! to the previous one on CRC mismatch — then replays WAL records in
//! sequence over the restored peer. `JxpPeer::absorb` is deterministic
//! given state + payload, so replay reproduces the pre-crash scores
//! bit for bit. A truncated final WAL record (torn tail) stops replay
//! at the last good record instead of failing.
//!
//! Two [`StateStore`] backends ship: [`DirStore`] (a per-peer directory
//! layout on disk) and [`MemStore`] (an in-memory test double with
//! corruption hooks).

pub mod atomic;
mod dir;
mod format;
mod mem;
mod metrics;

pub use dir::{DirStore, RawKeyState};
pub use format::{
    crc32, crc32_finish, crc32_update, decode_checkpoint, encode_checkpoint, encode_wal_record,
    scan_wal, Checkpoint, WalKind, WalRecord, WalScan, CHECKPOINT_HEADER_LEN, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION, CRC32_INIT, MAX_PAYLOAD_LEN, WAL_HEADER_LEN,
};
pub use mem::MemStore;
pub use metrics::StoreMetrics;

use jxp_core::JxpPeer;

/// Errors surfaced by store backends and the recovery path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying storage failed (filesystem error, bad key, ...).
    Io(String),
    /// Persisted bytes failed validation (CRC, framing, snapshot).
    Corrupt(String),
}

impl StoreError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }

    pub(crate) fn io(msg: impl Into<String>) -> Self {
        StoreError::Io(msg.into())
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store I/O error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Outcome of recovering one peer from its persisted state.
#[derive(Debug)]
pub struct Recovered {
    /// The restored peer, checkpoint state plus replayed WAL deltas.
    pub peer: JxpPeer,
    /// Event sequence number after replay (the peer has durably applied
    /// events `1..=seq`).
    pub seq: u64,
    /// Sequence number of the checkpoint that anchored recovery.
    pub checkpoint_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// True when the current checkpoint was unusable and recovery fell
    /// back to the previous one.
    pub used_fallback: bool,
    /// True when the WAL ended in a torn or corrupt record that replay
    /// skipped (tolerated, not fatal).
    pub torn_tail: bool,
    /// The last WAL record at or below `seq`, kept for torn-meeting
    /// repair: a crashed initiator re-absorbs the `outbound` payload of
    /// its partner's final `Serve` record.
    pub last_record: Option<WalRecord>,
}

/// Durable storage for per-peer checkpoints and WAL records.
///
/// Keys are flat identifiers (`node-3`, `peer-17`); backends decide the
/// physical layout. All methods take `&self` so a store can be shared
/// behind an `Arc` across node threads.
pub trait StateStore {
    /// Atomically install a new current checkpoint for `key` (rotating
    /// the old current to previous) and compact the WAL down to records
    /// with sequence `>= seq`.
    fn checkpoint(&self, key: &str, seq: u64, snapshot: &[u8]) -> Result<(), StoreError>;

    /// Append one record to `key`'s WAL. Returns the WAL size in bytes
    /// after the append, so callers can trigger compaction.
    fn append(&self, key: &str, record: &WalRecord) -> Result<u64, StoreError>;

    /// Recover `key`: latest valid checkpoint plus WAL replay. Returns
    /// `Ok(None)` when no state exists for the key.
    fn load(&self, key: &str) -> Result<Option<Recovered>, StoreError>;

    /// Current WAL size in bytes for `key` (0 when absent).
    fn wal_size(&self, key: &str) -> Result<u64, StoreError>;

    /// All keys with persisted state, sorted.
    fn keys(&self) -> Result<Vec<String>, StoreError>;
}

fn decode_and_load(bytes: &[u8]) -> Result<(u64, JxpPeer), StoreError> {
    let ckpt = format::decode_checkpoint(bytes)?;
    let peer = jxp_core::snapshot::load(&ckpt.snapshot[..]).map_err(StoreError::Corrupt)?;
    Ok((ckpt.seq, peer))
}

/// Recover a peer from raw checkpoint bytes and a WAL byte stream.
///
/// The recovery ladder, in order:
/// 1. decode + CRC-check the current checkpoint;
/// 2. on any failure, fall back to the previous checkpoint
///    (`used_fallback = true`);
/// 3. replay WAL records whose sequence continues the checkpoint's
///    (`seq > checkpoint_seq`, strictly contiguous), stopping cleanly
///    at a torn tail or a sequence gap.
///
/// Backends call this from [`StateStore::load`]; it is exposed so
/// offline tools (`jxp checkpoint verify`) can drive it on raw bytes.
pub fn recover(
    current: Option<&[u8]>,
    previous: Option<&[u8]>,
    wal: &[u8],
) -> Result<Option<Recovered>, StoreError> {
    let (decoded, used_fallback) = match (current, previous) {
        (None, None) => return Ok(None),
        (Some(cur), None) => (decode_and_load(cur), false),
        (None, Some(prev)) => (decode_and_load(prev), true),
        (Some(cur), Some(prev)) => match decode_and_load(cur) {
            Ok(v) => (Ok(v), false),
            Err(_) => (decode_and_load(prev), true),
        },
    };
    let (checkpoint_seq, mut peer) = decoded?;
    let scan = format::scan_wal(wal);
    let mut seq = checkpoint_seq;
    let mut replayed = 0u64;
    let mut last_record = None;
    for record in scan.records {
        if record.seq <= checkpoint_seq {
            // Compaction keeps the checkpoint-sequence record around for
            // torn-meeting repair; it is already folded into the snapshot.
            last_record = Some(record);
            continue;
        }
        if record.seq != seq + 1 {
            // A gap means the WAL does not continue this checkpoint
            // (e.g. we fell back to the previous one); stop at the last
            // consistent prefix rather than applying out-of-order deltas.
            break;
        }
        peer.absorb(&record.inbound);
        seq = record.seq;
        replayed += 1;
        last_record = Some(record);
    }
    Ok(Some(Recovered {
        peer,
        seq,
        checkpoint_seq,
        replayed,
        used_fallback,
        torn_tail: scan.torn,
        last_record,
    }))
}

/// Validate a key as a flat path component (no separators, no dotfiles).
pub(crate) fn validate_key(key: &str) -> Result<(), StoreError> {
    let ok = !key.is_empty()
        && !key.starts_with('.')
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::io(format!(
            "invalid store key {key:?}: use [A-Za-z0-9._-], not starting with '.'"
        )))
    }
}
