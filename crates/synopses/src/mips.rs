//! Min-wise independent permutations (MIPs).
//!
//! Exactly the technique of §4.3: each of `N` random permutations is a
//! linear hash `h_i(x) = a_i·x + b_i mod U` with `U` a big prime and
//! `a_i, b_i` fixed random numbers; the synopsis stores, per permutation,
//! the minimum hash value over the set. Vectors built from the *same*
//! permutation family are comparable:
//!
//! * **resemblance** `|A∩B| / |A∪B|` — fraction of positions where the two
//!   min-vectors agree (the classic Broder estimator),
//! * **overlap** `|A∩B|` and **containment** `|A∩B| / |B|` — the two
//!   measures the pre-meetings strategy needs, derived from resemblance
//!   and the exact set cardinalities (which each peer knows for its own
//!   sets and ships along with the vector),
//! * **union** via component-wise minimum — a MIPs vector of `A ∪ B`.

use crate::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Mersenne prime 2⁶¹ − 1, the modulus `U` of the linear permutations.
/// Products of two values `< U` fit in `u128`, making the modular
/// arithmetic exact.
pub const MODULUS: u64 = (1 << 61) - 1;

/// A shared family of `N` linear permutations. All peers in a network must
/// use the same family (same seed) for their vectors to be comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MipsPermutations {
    /// Multipliers `a_i` (non-zero, `< U`).
    a: Vec<u64>,
    /// Offsets `b_i` (`< U`).
    b: Vec<u64>,
}

impl MipsPermutations {
    /// Generate a family of `n` permutations from `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn generate(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one permutation");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..n).map(|_| rng.gen_range(1..MODULUS)).collect();
        let b = (0..n).map(|_| rng.gen_range(0..MODULUS)).collect();
        MipsPermutations { a, b }
    }

    /// Number of permutations in the family.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the family is empty (never true for generated families).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Apply permutation `i` to raw key `x`.
    #[inline]
    fn apply(&self, i: usize, x: u64) -> u64 {
        // Scramble first: raw keys are small dense integers, and a purely
        // linear map of a dense range would make the min estimator
        // systematically biased.
        let x = splitmix64(x) % MODULUS;
        ((self.a[i] as u128 * x as u128 + self.b[i] as u128) % MODULUS as u128) as u64
    }
}

/// A MIPs synopsis of one set: the per-permutation minima plus the exact
/// cardinality of the summarized set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MipsVector {
    mins: Vec<u64>,
    count: u64,
}

/// Sentinel stored for an empty set (no minimum exists).
const EMPTY: u64 = u64::MAX;

impl MipsVector {
    /// Summarize the elements yielded by `iter` under the permutation
    /// family `perms`. Duplicate elements are harmless (min is idempotent)
    /// but inflate `count`; pass deduplicated input for exact cardinality.
    pub fn from_elements(perms: &MipsPermutations, iter: impl IntoIterator<Item = u64>) -> Self {
        let mut mins = vec![EMPTY; perms.len()];
        let mut count = 0u64;
        for x in iter {
            count += 1;
            for (i, m) in mins.iter_mut().enumerate() {
                let h = perms.apply(i, x);
                if h < *m {
                    *m = h;
                }
            }
        }
        MipsVector { mins, count }
    }

    /// Reassemble a vector from its wire representation: the per-permutation
    /// minima and the exact cardinality, as returned by [`Self::mins`] and
    /// [`Self::count`]. Used by `jxp-wire` when decoding a synopsis frame.
    ///
    /// # Panics
    /// Panics if `mins` is empty.
    pub fn from_parts(mins: Vec<u64>, count: u64) -> Self {
        assert!(!mins.is_empty(), "need at least one permutation");
        MipsVector { mins, count }
    }

    /// The per-permutation minima (the vector's wire representation,
    /// together with [`Self::count`]).
    pub fn mins(&self) -> &[u64] {
        &self.mins
    }

    /// Exact cardinality of the summarized set (shipped with the vector).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of permutations (vector dimensionality).
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Size of this synopsis on the wire, in bytes: one `u64` per
    /// permutation, plus the cardinality and a dimension prefix. Exactly
    /// the length of the `jxp-wire` encoding (pinned by a test there).
    pub fn wire_size(&self) -> usize {
        4 + 8 + 8 * self.mins.len()
    }

    /// Estimated resemblance `|A∩B| / |A∪B|` ∈ [0, 1]: the fraction of
    /// positions where the two min-vectors agree.
    ///
    /// # Panics
    /// Panics if the vectors have different dimensionality.
    pub fn resemblance(&self, other: &MipsVector) -> f64 {
        assert_eq!(
            self.dims(),
            other.dims(),
            "MIPs vectors from different families"
        );
        if self.count == 0 && other.count == 0 {
            return 1.0; // both empty: identical
        }
        if self.count == 0 || other.count == 0 {
            return 0.0;
        }
        let agree = self
            .mins
            .iter()
            .zip(other.mins.iter())
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.dims() as f64
    }

    /// Estimated overlap `|A ∩ B|`, from resemblance and the exact
    /// cardinalities: `|A∩B| = r·(|A|+|B|) / (1+r)`.
    pub fn overlap(&self, other: &MipsVector) -> f64 {
        let r = self.resemblance(other);
        if r == 0.0 {
            return 0.0;
        }
        r * (self.count + other.count) as f64 / (1.0 + r)
    }

    /// Estimated containment `Containment(self, other) = |A∩B| / |B|` —
    /// the fraction of `other`'s elements that are also in `self`
    /// (the paper's definition, with `self = S_A`, `other = S_B`).
    /// Returns 0 for an empty `other`.
    pub fn containment_of(&self, other: &MipsVector) -> f64 {
        if other.count == 0 {
            return 0.0;
        }
        (self.overlap(other) / other.count as f64).min(1.0)
    }

    /// The MIPs vector of the union `A ∪ B` (component-wise minimum).
    /// The union's `count` is estimated as `(|A|+|B|) / (1+r)` rounded —
    /// exact when the sets are disjoint (`r = 0`).
    pub fn union(&self, other: &MipsVector) -> MipsVector {
        assert_eq!(self.dims(), other.dims());
        let mins = self
            .mins
            .iter()
            .zip(other.mins.iter())
            .map(|(&a, &b)| a.min(b))
            .collect();
        let r = self.resemblance(other);
        let count = ((self.count + other.count) as f64 / (1.0 + r)).round() as u64;
        MipsVector { mins, count }
    }

    /// Estimate the cardinality from the min values alone (without the
    /// stored exact count): for a set of size `m`, each min/U is
    /// approximately `Beta(1, m)` with mean `1/(m+1)`, so
    /// `m ≈ 1/mean − 1`. Useful when only the vector (not the count) is
    /// available.
    pub fn estimate_cardinality(&self) -> f64 {
        if self.mins.iter().all(|&m| m == EMPTY) {
            return 0.0;
        }
        let mean: f64 = self
            .mins
            .iter()
            .map(|&m| m as f64 / MODULUS as f64)
            .sum::<f64>()
            / self.dims() as f64;
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        (1.0 / mean - 1.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perms() -> MipsPermutations {
        MipsPermutations::generate(256, 7)
    }

    #[test]
    fn identical_sets_have_resemblance_one() {
        let p = perms();
        let a = MipsVector::from_elements(&p, 0..500u64);
        let b = MipsVector::from_elements(&p, 0..500u64);
        assert_eq!(a.resemblance(&b), 1.0);
        assert!((a.containment_of(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sets_have_low_resemblance() {
        let p = perms();
        let a = MipsVector::from_elements(&p, 0..500u64);
        let b = MipsVector::from_elements(&p, 1000..1500u64);
        assert!(a.resemblance(&b) < 0.05);
        assert!(a.overlap(&b) < 30.0);
    }

    #[test]
    fn half_overlap_estimates() {
        let p = perms();
        let a = MipsVector::from_elements(&p, 0..1000u64);
        let b = MipsVector::from_elements(&p, 500..1500u64);
        // True: |A∩B| = 500, |A∪B| = 1500, r = 1/3, containment = 0.5.
        let r = a.resemblance(&b);
        assert!((r - 1.0 / 3.0).abs() < 0.08, "r = {r}");
        let ov = a.overlap(&b);
        assert!((ov - 500.0).abs() < 100.0, "overlap = {ov}");
        let c = a.containment_of(&b);
        assert!((c - 0.5).abs() < 0.1, "containment = {c}");
    }

    #[test]
    fn containment_is_asymmetric() {
        let p = perms();
        // B ⊂ A: containment_of(A, B) = 1, containment_of(B, A) = |B|/|A|.
        let a = MipsVector::from_elements(&p, 0..1000u64);
        let b = MipsVector::from_elements(&p, 0..100u64);
        let c_ab = a.containment_of(&b);
        let c_ba = b.containment_of(&a);
        assert!(c_ab > 0.8, "A should contain B: {c_ab}");
        assert!((c_ba - 0.1).abs() < 0.1, "B contains 10% of A: {c_ba}");
    }

    #[test]
    fn union_matches_direct_computation() {
        let p = perms();
        let a = MipsVector::from_elements(&p, 0..300u64);
        let b = MipsVector::from_elements(&p, 200..600u64);
        let u = a.union(&b);
        let direct = MipsVector::from_elements(&p, 0..600u64);
        // Min-vectors must agree exactly; counts are estimated.
        assert_eq!(u.mins, direct.mins);
        assert!(
            (u.count() as f64 - 600.0).abs() < 120.0,
            "count {}",
            u.count()
        );
    }

    #[test]
    fn empty_set_behaviour() {
        let p = perms();
        let e = MipsVector::from_elements(&p, std::iter::empty());
        let a = MipsVector::from_elements(&p, 0..10u64);
        assert_eq!(e.count(), 0);
        assert_eq!(e.resemblance(&a), 0.0);
        assert_eq!(a.containment_of(&e), 0.0);
        let e2 = MipsVector::from_elements(&p, std::iter::empty());
        assert_eq!(e.resemblance(&e2), 1.0);
        assert_eq!(e.estimate_cardinality(), 0.0);
    }

    #[test]
    fn cardinality_estimate_is_in_the_right_ballpark() {
        let p = MipsPermutations::generate(512, 3);
        let a = MipsVector::from_elements(&p, 0..2000u64);
        let est = a.estimate_cardinality();
        assert!(
            (est - 2000.0).abs() / 2000.0 < 0.25,
            "estimate {est} for true 2000"
        );
    }

    #[test]
    fn wire_size_accounts_vector_and_count() {
        let p = MipsPermutations::generate(64, 1);
        let a = MipsVector::from_elements(&p, 0..5u64);
        assert_eq!(a.wire_size(), 4 + 8 + 64 * 8);
    }

    #[test]
    #[should_panic(expected = "different families")]
    fn mismatched_dims_panic() {
        let p1 = MipsPermutations::generate(16, 1);
        let p2 = MipsPermutations::generate(32, 1);
        let a = MipsVector::from_elements(&p1, 0..5u64);
        let b = MipsVector::from_elements(&p2, 0..5u64);
        let _ = a.resemblance(&b);
    }

    #[test]
    fn different_seeds_give_different_families() {
        assert_ne!(
            MipsPermutations::generate(8, 1),
            MipsPermutations::generate(8, 2)
        );
        assert_eq!(
            MipsPermutations::generate(8, 1),
            MipsPermutations::generate(8, 1)
        );
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn zero_permutations_panic() {
        let _ = MipsPermutations::generate(0, 1);
    }
}
