//! Flajolet–Martin hash sketches (PCSA) for distinct counting.
//!
//! The paper cites hash sketches (reference 19) among its synopsis fundamentals and
//! notes (§3) that the global page count `N` — which JXP assumes known —
//! can be obtained with "efficient techniques for distributed counting
//! with duplicate elimination". The FM sketch is precisely that technique:
//! it is **duplicate-insensitive** (inserting the same page twice changes
//! nothing) and **mergeable** (bitwise OR), so peers can gossip sketches of
//! their local page sets during JXP meetings and converge on an estimate
//! of `N` without any coordinator. `jxp-p2pnet::count` builds on this.

use crate::splitmix64;

/// The standard PCSA bias-correction constant φ.
const PHI: f64 = 0.77351;

/// A Flajolet–Martin sketch with stochastic averaging: `num_buckets`
/// bitmaps, each recording the least-significant-zero positions of hashed
/// keys routed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmSketch {
    bitmaps: Vec<u64>,
}

impl FmSketch {
    /// Create a sketch with `num_buckets` bitmaps. More buckets → lower
    /// variance (standard error ≈ 0.78/√buckets).
    ///
    /// # Panics
    /// Panics if `num_buckets == 0`.
    pub fn new(num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        FmSketch {
            bitmaps: vec![0; num_buckets],
        }
    }

    /// Reassemble a sketch from its wire representation (the bitmap words
    /// returned by [`Self::bitmaps`]). Used by `jxp-wire` when decoding.
    ///
    /// # Panics
    /// Panics if `bitmaps` is empty.
    pub fn from_bitmaps(bitmaps: Vec<u64>) -> Self {
        assert!(!bitmaps.is_empty(), "need at least one bucket");
        FmSketch { bitmaps }
    }

    /// The bucket bitmaps (the sketch's wire representation).
    pub fn bitmaps(&self) -> &[u64] {
        &self.bitmaps
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bitmaps.len()
    }

    /// Wire size in bytes: the bitmaps plus a bucket-count prefix —
    /// exactly the length of the `jxp-wire` encoding.
    pub fn wire_size(&self) -> usize {
        4 + self.bitmaps.len() * 8
    }

    /// Insert a key. Duplicate insertions are no-ops by construction.
    pub fn insert(&mut self, key: u64) {
        let h = splitmix64(key ^ 0xFEED_FACE_CAFE_BEEF);
        let bucket = (h % self.bitmaps.len() as u64) as usize;
        let rest = h / self.bitmaps.len() as u64;
        // Position of the lowest zero... FM uses the number of trailing
        // ones of the hash (geometric distribution).
        let r = rest.trailing_ones().min(63);
        self.bitmaps[bucket] |= 1u64 << r;
    }

    /// Merge another sketch into this one (set union). Both sketches must
    /// have the same bucket count.
    ///
    /// # Panics
    /// Panics on bucket-count mismatch.
    pub fn merge(&mut self, other: &FmSketch) {
        assert_eq!(
            self.bitmaps.len(),
            other.bitmaps.len(),
            "FM sketch bucket mismatch"
        );
        for (a, b) in self.bitmaps.iter_mut().zip(other.bitmaps.iter()) {
            *a |= b;
        }
    }

    /// Estimate the number of distinct inserted keys:
    /// `(m/φ) · 2^(mean R)` where `R` is each bucket's lowest unset bit
    /// position, with the standard small-range correction.
    pub fn estimate(&self) -> f64 {
        let m = self.bitmaps.len() as f64;
        let mean_r: f64 = self
            .bitmaps
            .iter()
            .map(|&b| b.trailing_ones() as f64)
            .sum::<f64>()
            / m;
        let raw = (m / PHI) * 2f64.powf(mean_r);
        // Small-range correction (analogous to HyperLogLog's): with very
        // few elements many bitmaps are empty and the raw estimate
        // overshoots; fall back to linear counting on empty buckets.
        let empty = self.bitmaps.iter().filter(|&&b| b == 0).count();
        if empty > 0 && raw < 2.5 * m {
            return m * (m / empty as f64).ln();
        }
        raw
    }

    /// Whether no key was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.bitmaps.iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = FmSketch::new(64);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn estimate_within_tolerance() {
        for &n in &[100u64, 1_000, 10_000, 100_000] {
            let mut s = FmSketch::new(256);
            for x in 0..n {
                s.insert(x);
            }
            let est = s.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.25, "n = {n}, estimate = {est}, err = {err}");
        }
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut a = FmSketch::new(128);
        let mut b = FmSketch::new(128);
        for x in 0..1000u64 {
            a.insert(x);
            b.insert(x);
            b.insert(x);
            b.insert(x);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = FmSketch::new(128);
        let mut b = FmSketch::new(128);
        let mut u = FmSketch::new(128);
        for x in 0..800u64 {
            a.insert(x);
            u.insert(x);
        }
        for x in 400..1200u64 {
            b.insert(x);
            u.insert(x);
        }
        a.merge(&b);
        assert_eq!(a, u);
        let est = a.estimate();
        assert!((est - 1200.0).abs() / 1200.0 < 0.3, "estimate {est}");
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = FmSketch::new(64);
        let mut b = FmSketch::new(64);
        for x in 0..100u64 {
            a.insert(x);
        }
        for x in 50..150u64 {
            b.insert(x);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(ab, abb);
    }

    #[test]
    #[should_panic(expected = "bucket mismatch")]
    fn merge_mismatch_panics() {
        let mut a = FmSketch::new(32);
        let b = FmSketch::new(64);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = FmSketch::new(0);
    }
}
