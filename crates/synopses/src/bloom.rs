//! Bloom filters (Bloom 1970; cited by the paper as synopsis fundamentals).
//!
//! Used in this reproduction as an *alternative* overlap synopsis to MIPs:
//! peers could ship a Bloom filter of their local page set and estimate
//! intersections via bit-level statistics. The integration tests compare
//! its estimates against MIPs on identical inputs.

use crate::splitmix64;

/// A fixed-size Bloom filter over `u64` keys with `k` hash functions
/// derived by double hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter with `num_bits` bits (rounded up to a multiple of
    /// 64) and `num_hashes` hash functions.
    ///
    /// # Panics
    /// Panics if `num_bits == 0` or `num_hashes == 0`.
    pub fn new(num_bits: usize, num_hashes: u32) -> Self {
        assert!(num_bits > 0, "bloom filter needs at least one bit");
        assert!(num_hashes > 0, "bloom filter needs at least one hash");
        let words = num_bits.div_ceil(64);
        BloomFilter {
            bits: vec![0; words],
            num_bits: words * 64,
            num_hashes,
            inserted: 0,
        }
    }

    /// Create a filter sized for `expected` insertions at roughly the given
    /// false-positive rate, using the standard formulas
    /// `m = −n·ln(p)/ln(2)²` and `k = (m/n)·ln(2)`.
    pub fn with_capacity(expected: usize, fp_rate: f64) -> Self {
        assert!(
            fp_rate > 0.0 && fp_rate < 1.0,
            "false-positive rate must be in (0, 1)"
        );
        let n = expected.max(1) as f64;
        let m = (-n * fp_rate.ln() / (2f64.ln().powi(2))).ceil().max(64.0) as usize;
        let k = ((m as f64 / n) * 2f64.ln()).round().max(1.0) as u32;
        BloomFilter::new(m, k)
    }

    #[inline]
    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = splitmix64(key);
        let h2 = splitmix64(h1) | 1; // odd step, full-period double hashing
        let m = self.num_bits as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert `key`.
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<usize> = self.positions(key).collect();
        for p in positions {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.inserted += 1;
    }

    /// Whether `key` *may* be in the set (false positives possible, false
    /// negatives impossible).
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of set bits.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of insert calls (may double-count duplicates).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Wire size in bytes: the bit words plus word-count, hash-count and
    /// insert-count fields — exactly the length of the `jxp-wire` encoding.
    pub fn wire_size(&self) -> usize {
        4 + 4 + 8 + self.bits.len() * 8
    }

    /// The bit words (the filter's wire representation, together with
    /// [`Self::num_hashes`] and [`Self::inserted`]).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Reassemble a filter from its wire representation. Used by
    /// `jxp-wire` when decoding.
    ///
    /// # Panics
    /// Panics if `bits` is empty or `num_hashes == 0`.
    pub fn from_parts(bits: Vec<u64>, num_hashes: u32, inserted: u64) -> Self {
        assert!(!bits.is_empty(), "bloom filter needs at least one bit");
        assert!(num_hashes > 0, "bloom filter needs at least one hash");
        let num_bits = bits.len() * 64;
        BloomFilter {
            bits,
            num_bits,
            num_hashes,
            inserted,
        }
    }

    /// Estimate the number of *distinct* inserted keys from the fill
    /// level: `n̂ = −(m/k)·ln(1 − X/m)` with `X` set bits.
    pub fn estimate_cardinality(&self) -> f64 {
        let x = self.ones() as f64;
        let m = self.num_bits as f64;
        if x >= m {
            return f64::INFINITY;
        }
        -(m / self.num_hashes as f64) * (1.0 - x / m).ln()
    }

    /// Union with a same-shaped filter (bitwise OR).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn union(&self, other: &BloomFilter) -> BloomFilter {
        assert_eq!(self.num_bits, other.num_bits, "bloom shape mismatch");
        assert_eq!(self.num_hashes, other.num_hashes, "bloom shape mismatch");
        BloomFilter {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| a | b)
                .collect(),
            num_bits: self.num_bits,
            num_hashes: self.num_hashes,
            inserted: self.inserted + other.inserted,
        }
    }

    /// Estimate `|A ∩ B|` by inclusion–exclusion on the cardinality
    /// estimates: `|A| + |B| − |A ∪ B|`, clamped at 0.
    pub fn estimate_intersection(&self, other: &BloomFilter) -> f64 {
        let a = self.estimate_cardinality();
        let b = other.estimate_cardinality();
        let u = self.union(other).estimate_cardinality();
        (a + b - u).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for x in 0..1000u64 {
            f.insert(x);
        }
        assert!((0..1000u64).all(|x| f.contains(x)));
    }

    #[test]
    fn false_positive_rate_is_roughly_as_configured() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for x in 0..1000u64 {
            f.insert(x);
        }
        let fps = (10_000..30_000u64).filter(|&x| f.contains(x)).count();
        let rate = fps as f64 / 20_000.0;
        assert!(rate < 0.05, "false-positive rate {rate}");
    }

    #[test]
    fn cardinality_estimate() {
        let mut f = BloomFilter::with_capacity(5000, 0.01);
        for x in 0..3000u64 {
            f.insert(x);
        }
        let est = f.estimate_cardinality();
        assert!((est - 3000.0).abs() / 3000.0 < 0.1, "estimate {est}");
    }

    #[test]
    fn duplicates_do_not_inflate_cardinality_estimate() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for _ in 0..10 {
            for x in 0..500u64 {
                f.insert(x);
            }
        }
        let est = f.estimate_cardinality();
        assert!((est - 500.0).abs() / 500.0 < 0.1, "estimate {est}");
        assert_eq!(f.inserted(), 5000);
    }

    #[test]
    fn union_and_intersection_estimates() {
        let mut a = BloomFilter::with_capacity(2000, 0.01);
        let mut b = BloomFilter::with_capacity(2000, 0.01);
        for x in 0..1000u64 {
            a.insert(x);
        }
        for x in 500..1500u64 {
            b.insert(x);
        }
        let u = a.union(&b);
        let uc = u.estimate_cardinality();
        assert!((uc - 1500.0).abs() / 1500.0 < 0.1, "union estimate {uc}");
        let i = a.estimate_intersection(&b);
        assert!((i - 500.0).abs() < 150.0, "intersection estimate {i}");
    }

    #[test]
    fn empty_filter() {
        let f = BloomFilter::new(128, 3);
        assert!(!f.contains(42));
        assert_eq!(f.ones(), 0);
        assert_eq!(f.estimate_cardinality(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn union_shape_mismatch_panics() {
        let a = BloomFilter::new(64, 3);
        let b = BloomFilter::new(128, 3);
        let _ = a.union(&b);
    }

    #[test]
    fn saturated_filter_reports_infinity() {
        let mut f = BloomFilter::new(64, 1);
        for x in 0..10_000u64 {
            f.insert(x);
        }
        assert!(f.estimate_cardinality().is_infinite());
    }
}
