#![deny(missing_docs)]
//! # jxp-synopses
//!
//! Statistical synopses of sets — "light-weight approximation techniques
//! for comparing data of different peers without explicitly transferring
//! their contents" (paper §4.3).
//!
//! The paper's pre-meetings peer-selection strategy is built on **min-wise
//! independent permutations** ([`mips`]); the cited fundamentals — **Bloom
//! filters** ([`bloom`]) and **hash sketches** ([`fm_sketch`], the
//! Flajolet–Martin probabilistic counter) — are implemented as well: the
//! Bloom filter as an alternative overlap synopsis (tested head-to-head
//! against MIPs), and the FM sketch as the duplicate-insensitive
//! distributed counter that lets JXP *estimate* the global page count `N`
//! instead of assuming it (§3: "JXP could even be modified to work without
//! this estimate").
//!
//! ```
//! use jxp_synopses::mips::{MipsPermutations, MipsVector};
//!
//! let perms = MipsPermutations::generate(64, 42);
//! let a = MipsVector::from_elements(&perms, 0..100u64);
//! let b = MipsVector::from_elements(&perms, 50..150u64);
//! let cont = a.containment_of(&b); // |A ∩ B| / |B| ≈ 0.5
//! assert!((cont - 0.5).abs() < 0.2);
//! ```

pub mod bloom;
pub mod fm_sketch;
pub mod mips;

pub use bloom::BloomFilter;
pub use fm_sketch::FmSketch;
pub use mips::{MipsPermutations, MipsVector};

/// SplitMix64: a fast, well-mixed 64-bit hash used to pre-scramble raw
/// element keys before they enter any synopsis (page ids are small dense
/// integers; the estimators need uniformly spread inputs).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::splitmix64;

    #[test]
    fn splitmix_is_deterministic_and_disperses() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        let d = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(d > 16, "only {d} differing bits");
    }

    #[test]
    fn splitmix_zero_is_not_zero() {
        assert_ne!(splitmix64(0), 0);
    }
}
