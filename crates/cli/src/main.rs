//! Thin binary wrapper; all logic lives in the library for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = jxp_cli::run(&args) {
        eprintln!("error: {msg}");
        eprintln!();
        eprintln!("{}", jxp_cli::USAGE);
        std::process::exit(2);
    }
}
