//! Subcommand implementations.

use crate::args::ParsedArgs;
use jxp_core::selection::{PreMeetingsConfig, SelectionStrategy};
use jxp_core::{CombineMode, JxpConfig, MergeMode};
use jxp_p2pnet::assign::{assign_by_crawlers, minerva_fragments, CrawlerParams};
use jxp_p2pnet::{Network, NetworkConfig};
use jxp_pagerank::gauss_seidel::pagerank_gauss_seidel;
use jxp_pagerank::{metrics, pagerank, PageRankConfig};
use jxp_telemetry::{TelemetryHub, TelemetrySnapshot};
use jxp_webgraph::generators::{amazon_2005, web_crawl_2005, CategorizedGraph, DatasetPreset};
use jxp_webgraph::{io, Subgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;

/// Write a telemetry snapshot as JSON (the `jxp-cli metrics` input
/// format) to `path`.
fn write_metrics(path: &str, snapshot: &TelemetrySnapshot) -> Result<(), String> {
    std::fs::write(path, snapshot.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "metrics: wrote {} counters, {} gauges, {} histograms, {} events to {path}",
        snapshot.metrics.counters.len(),
        snapshot.metrics.gauges.len(),
        snapshot.metrics.histograms.len(),
        snapshot.events.len()
    );
    Ok(())
}

fn preset(args: &ParsedArgs) -> Result<DatasetPreset, String> {
    match args.get_choice("dataset", &["amazon", "web"], "amazon")? {
        "web" => Ok(web_crawl_2005()),
        _ => Ok(amazon_2005()),
    }
}

fn generate_graph(args: &ParsedArgs) -> Result<CategorizedGraph, String> {
    generate_graph_with_scale(args, 0.1)
}

/// `jxp-cli generate` — synthesize a dataset and write it to disk.
pub fn generate(args: &ParsedArgs) -> Result<(), String> {
    let cg = generate_graph(args)?;
    let out = args.get("out").unwrap_or("graph.jxpg");
    io::save_binary(&cg.graph, Path::new(out)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} categories)", cg.num_categories);
    println!(
        "  {}",
        jxp_webgraph::analysis::GraphSummary::compute(&cg.graph)
    );
    if let Some(el) = args.get("edge-list") {
        let mut file = std::fs::File::create(el).map_err(|e| format!("creating {el}: {e}"))?;
        io::write_edge_list(&cg.graph, &mut file).map_err(|e| format!("writing {el}: {e}"))?;
        println!("wrote {el} (text edge list)");
    }
    Ok(())
}

/// `jxp-cli pagerank` — centralized PageRank over a stored graph.
pub fn pagerank_cmd(args: &ParsedArgs) -> Result<(), String> {
    let path = args.require("graph")?;
    let g = io::load_binary(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    let top: usize = args.get_or("top", 10)?;
    let epsilon: f64 = args.get_or("epsilon", 0.85)?;
    let threads: usize = args.get_or("threads", 0)?;
    let cfg = PageRankConfig {
        epsilon,
        threads,
        ..Default::default()
    };
    let solver = args.get_choice("solver", &["power", "gauss-seidel"], "power")?;
    let result = match solver {
        "gauss-seidel" => pagerank_gauss_seidel(&g, &cfg),
        _ => pagerank(&g, &cfg),
    };
    println!(
        "{} pages, {} links — {} converged in {} iterations",
        g.num_nodes(),
        g.num_edges(),
        solver,
        result.iterations()
    );
    println!("{:>6} {:>10} {:>12}", "rank", "page", "score");
    for (rank, p) in result.top_k(top).into_iter().enumerate() {
        println!("{:>6} {:>10} {:>12.6}", rank + 1, p.0, result.score(p));
    }
    Ok(())
}

/// `jxp-cli simulate` — run a JXP network and report convergence.
pub fn simulate(args: &ParsedArgs) -> Result<(), String> {
    let cg = generate_graph_with_scale(args, 0.05)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let meetings: usize = args.get_or("meetings", 600)?;
    let sample: usize = args.get_or("sample", (meetings / 10).max(1))?;
    let n = cg.graph.num_nodes();
    let top: usize = args.get_or("top", (n / 20).max(10))?;
    let merge = match args.get_choice("merge", &["light", "full"], "light")? {
        "full" => MergeMode::Full,
        _ => MergeMode::LightWeight,
    };
    let combine = match args.get_choice("combine", &["max", "avg"], "max")? {
        "avg" => CombineMode::Average,
        _ => CombineMode::TakeMax,
    };
    let strategy = match args.get_choice("strategy", &["random", "premeetings"], "random")? {
        "premeetings" => SelectionStrategy::PreMeetings(PreMeetingsConfig::default()),
        _ => SelectionStrategy::Random,
    };
    let estimate_n = args.get_choice("estimate-n", &["yes", "no"], "no")? == "yes";
    let threads: usize = args.get_or("threads", 0)?;
    let metrics_out = args.get("metrics-out");
    let fragments = assign_by_crawlers(
        &cg,
        &CrawlerParams {
            peers_per_category: 10,
            seeds_per_peer: 3,
            max_depth: 5,
            max_pages: Some((n / (10 * cg.num_categories)).max(10)),
            max_pages_jitter: 0.8,
            off_category_follow_prob: 0.5,
        },
        &mut StdRng::seed_from_u64(seed),
    );
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let truth_ranking = jxp_core::evaluate::centralized_ranking(&truth);
    let jxp = JxpConfig {
        merge,
        combine,
        ..JxpConfig::default()
    };
    println!(
        "{} pages, {} peers, {merge:?} merging, {combine:?} combining",
        n,
        fragments.len()
    );
    let mut net = Network::new(
        fragments,
        n as u64,
        NetworkConfig {
            jxp,
            strategy,
            estimate_n,
            threads,
            ..Default::default()
        },
        seed,
    );
    let hub = metrics_out.is_some().then(TelemetryHub::shared);
    if let Some(hub) = &hub {
        net.attach_telemetry(Arc::clone(hub));
        // With a hub attached the exported metrics include per-peer
        // convergence: jxp_sim_peer_l1_distance{peer="i"}.
        net.attach_convergence_truth(&truth);
    }
    if estimate_n {
        println!("peers estimate N by FM-sketch gossip (no global knowledge)");
    }
    println!(
        "round-based meeting engine, {} worker threads (results are \
         thread-count-invariant)",
        jxp_pagerank::par::resolve_threads(threads)
    );
    println!(
        "{:>9} {:>10} {:>14} {:>10}",
        "meetings", "footrule", "linear error", "MB"
    );
    let mut done = 0;
    while done < meetings {
        let step = sample.min(meetings - done);
        net.run_parallel(step);
        done += step;
        let r = net.total_ranking();
        println!(
            "{:>9} {:>10.4} {:>14.3e} {:>10.2}",
            net.meetings(),
            metrics::footrule_distance(&r, &truth_ranking, top),
            metrics::linear_score_error(&r, &truth_ranking, top),
            net.bandwidth().total_bytes() as f64 / 1e6
        );
    }
    if let (Some(path), Some(hub)) = (metrics_out, &hub) {
        write_metrics(path, &hub.snapshot())?;
    }
    Ok(())
}

fn generate_graph_with_scale(
    args: &ParsedArgs,
    default_scale: f64,
) -> Result<CategorizedGraph, String> {
    let preset = preset(args)?;
    let scale: f64 = args.get_or("scale", default_scale)?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(format!("--scale must be in (0, 1], got {scale}"));
    }
    Ok(if scale >= 1.0 {
        preset.generate()
    } else {
        preset.generate_scaled(scale)
    })
}

/// Split the full graph into `n` contiguous fragments of near-equal
/// size, for the networked commands (crawler-based assignment produces
/// a category-dependent peer count; `cluster` wants exactly `--peers`).
fn contiguous_fragments(cg: &CategorizedGraph, n: usize) -> Vec<Subgraph> {
    use jxp_webgraph::PageId;
    let total = cg.graph.num_nodes();
    let per = total.div_ceil(n);
    (0..n)
        .map(|i| {
            let lo = i * per;
            let hi = ((i + 1) * per).min(total);
            Subgraph::from_pages(&cg.graph, (lo..hi).map(|p| PageId(p as u32)))
        })
        .filter(|f| f.num_pages() > 0)
        .collect()
}

/// `jxp-cli cluster` — run N networked nodes through M meetings over
/// the wire codec (loopback or localhost TCP) and report convergence
/// plus measured traffic.
pub fn cluster(args: &ParsedArgs) -> Result<(), String> {
    use jxp_node::{ClusterConfig, StallPlan, TransportKind};

    let peers: usize = args.get_or("peers", 8)?;
    if peers < 2 {
        return Err(format!("--peers must be at least 2, got {peers}"));
    }
    let meetings: usize = args.get_or("meetings", 200)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let transport: TransportKind = args
        .get_choice(
            "transport",
            &["loopback", "tcp", "threads", "reactor"],
            "loopback",
        )?
        .parse()?;
    let premeetings = args.get_choice("premeetings", &["yes", "no"], "no")? == "yes";
    let stall: u32 = args.get_or("stall", 0)?;
    let threads: usize = args.get_or("threads", 0)?;
    let metrics_out = args.get("metrics-out");
    let stats_endpoint = args.get_choice("stats-endpoint", &["yes", "no"], "no")? == "yes";
    let state_dir = args.get("state-dir").map(std::path::PathBuf::from);
    let checkpoint_every: u64 = args.get_or("checkpoint-every", 8)?;
    let round_delay_ms: u64 = args.get_or("round-delay-ms", 0)?;
    let metrics_listen = args.get("metrics-listen").map(String::from);

    let cg = generate_graph_with_scale(args, 0.05)?;
    let n = cg.graph.num_nodes();
    let top: usize = args.get_or("top", (n / 20).max(10))?;
    let fragments = contiguous_fragments(&cg, peers);
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();

    let config = ClusterConfig {
        meetings,
        transport,
        seed,
        premeetings,
        stall: (stall > 0).then_some(StallPlan {
            node_index: 1 % peers,
            at_meeting: 0,
            count: stall,
        }),
        threads,
        telemetry: metrics_out.is_some() || stats_endpoint,
        stats_endpoint,
        state_dir,
        checkpoint_every,
        round_delay: (round_delay_ms > 0).then(|| std::time::Duration::from_millis(round_delay_ms)),
        metrics_listen,
        ..ClusterConfig::default()
    };
    println!(
        "{} pages, {} nodes over {:?}, {} meetings, {} worker threads{}",
        n,
        fragments.len(),
        transport,
        meetings,
        jxp_pagerank::par::resolve_threads(threads),
        if stall > 0 {
            format!(" (stalling node 1 for {stall} requests, serial rounds)")
        } else {
            String::new()
        }
    );
    let report = jxp_node::run_cluster(
        fragments,
        n as u64,
        JxpConfig::default(),
        &config,
        Some(&truth),
    );
    println!(
        "meetings: {} attempted, {} completed, {} failed, {} retries",
        report.meetings_attempted,
        report.meetings_completed,
        report.meetings_failed,
        report.retries
    );
    println!(
        "traffic:  {} wire bytes total ({:.2} MB), exact codec lengths",
        report.bytes_total,
        report.bytes_total as f64 / 1e6
    );
    if let Some(addr) = report.metrics_addr {
        println!("metrics endpoint served scrapes on http://{addr}/metrics during the run");
    }
    if let Some(peak) = report.inflight_peak {
        println!("peak in-flight meetings: {peak}");
    }
    if let Some(footrule) = report.footrule {
        println!("footrule@{top} vs centralized PageRank: {footrule:.4}");
    }
    println!("score hash: {:016x}", report.score_hash);
    println!(
        "{:>5} {:>9} {:>9} {:>7} {:>8} {:>12} {:>12}",
        "node", "initiated", "served", "failed", "retries", "bytes in", "bytes out"
    );
    for (i, s) in report.per_node.iter().enumerate() {
        println!(
            "{:>5} {:>9} {:>9} {:>7} {:>8} {:>12} {:>12}",
            i,
            s.meetings_attempted,
            s.meetings_served,
            s.meetings_failed,
            s.retries,
            s.bytes_in,
            s.bytes_out
        );
    }
    if let Some(wire) = &report.wire_stats {
        println!("stats endpoint sweep (StatsRequest over the wire, one reply per node):");
        println!(
            "{:>5} {:>9} {:>9} {:>12} {:>12}",
            "node", "initiated", "served", "bytes in", "bytes out"
        );
        for s in wire {
            println!(
                "{:>5} {:>9} {:>9} {:>12} {:>12}",
                s.node_id, s.meetings_attempted, s.meetings_served, s.bytes_in, s.bytes_out
            );
        }
    }
    if let (Some(path), Some(snapshot)) = (metrics_out, &report.telemetry) {
        write_metrics(path, snapshot)?;
    }
    if report.meetings_failed > 0 && report.meetings_completed == 0 {
        return Err("every meeting failed — transport is broken".to_string());
    }
    Ok(())
}

/// `jxp-cli checkpoint inspect|verify` — examine a `--state-dir`
/// written by the cluster command. `inspect` recovers every node and
/// prints what it found; `verify` additionally decodes each layer
/// (checkpoints, WAL) and fails — nonzero exit — when any node cannot
/// be recovered to a consistent state.
pub fn checkpoint(action: &str, args: &ParsedArgs) -> Result<(), String> {
    use jxp_store::{decode_checkpoint, scan_wal, DirStore, StateStore};

    if !matches!(action, "inspect" | "verify") {
        return Err(format!(
            "checkpoint: unknown action {action:?} (expected inspect|verify)"
        ));
    }
    let state_dir = args.require("state-dir")?;
    let store =
        DirStore::open(state_dir).map_err(|e| format!("opening state dir {state_dir}: {e}"))?;
    let keys: Vec<String> = match (args.get("key"), args.get("node")) {
        (Some(key), _) => vec![key.to_string()],
        (None, Some(node)) => vec![format!("node-{node}")],
        (None, None) => store
            .keys()
            .map_err(|e| format!("listing {state_dir}: {e}"))?,
    };
    if keys.is_empty() {
        return Err(format!("no node state found under {state_dir}"));
    }

    let mut broken = 0usize;
    for key in &keys {
        if action == "verify" {
            let raw = match store.read_raw(key) {
                Ok(raw) => raw,
                Err(e) => {
                    println!("{key}: unreadable: {e}");
                    broken += 1;
                    continue;
                }
            };
            let describe = |label: &str, bytes: Option<&Vec<u8>>| match bytes {
                None => format!("{label}: absent"),
                Some(b) => match decode_checkpoint(b) {
                    Ok(c) => format!("{label}: ok (seq {}, {} bytes)", c.seq, b.len()),
                    Err(e) => format!("{label}: CORRUPT ({e})"),
                },
            };
            println!("{key}:");
            println!("  {}", describe("current checkpoint", raw.current.as_ref()));
            println!(
                "  {}",
                describe("previous checkpoint", raw.previous.as_ref())
            );
            let scan = scan_wal(&raw.wal);
            println!(
                "  wal: {} records, {} of {} bytes consumed{}",
                scan.records.len(),
                scan.consumed,
                raw.wal.len(),
                if scan.torn { " (torn tail)" } else { "" }
            );
        }
        match store.load(key) {
            Ok(Some(rec)) => {
                println!(
                    "{key}: seq {} (checkpoint {} + {} replayed){}{} — {} pages",
                    rec.seq,
                    rec.checkpoint_seq,
                    rec.replayed,
                    if rec.used_fallback {
                        ", recovered via previous checkpoint"
                    } else {
                        ""
                    },
                    if rec.torn_tail { ", torn wal tail" } else { "" },
                    rec.peer.num_pages()
                );
            }
            Ok(None) => println!("{key}: no state"),
            Err(e) => {
                println!("{key}: UNRECOVERABLE: {e}");
                broken += 1;
            }
        }
    }
    if broken > 0 {
        return Err(format!("{broken} of {} node(s) unrecoverable", keys.len()));
    }
    if action == "verify" {
        println!("all {} node(s) recoverable", keys.len());
    }
    Ok(())
}

/// `jxp-cli graph build|inspect|verify` — manage disk-backed segmented
/// webgraphs (the out-of-core format behind `jxp-segstore`). `build`
/// converts a stored `.jxpg` graph (or a freshly generated dataset)
/// into a segment directory; `inspect` prints the manifest and the
/// per-segment layout; `verify` decodes every container — full CRC and
/// codec validation — and fails with a nonzero exit when any segment
/// is corrupt, mirroring `checkpoint verify`.
pub fn graph_cmd(action: &str, args: &ParsedArgs) -> Result<(), String> {
    use jxp_segstore::{verify_dir, write_segments, SegmentedGraph};
    use jxp_webgraph::GraphSource;

    match action {
        "build" => {
            let out = args.require("out")?;
            let segment_nodes: usize = args.get_or("segment-nodes", 4096)?;
            let g = match args.get("graph") {
                Some(path) => {
                    io::load_binary(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?
                }
                None => generate_graph(args)?.graph,
            };
            let manifest = write_segments(&g, Path::new(out), segment_nodes)
                .map_err(|e| format!("building {out}: {e}"))?;
            println!(
                "wrote {out}: {} nodes, {} edges in {} segments of up to {} nodes \
                 ({} encoded bytes)",
                manifest.num_nodes,
                manifest.num_edges,
                manifest.segments.len(),
                manifest.nodes_per_segment,
                manifest.total_encoded_bytes()
            );
            Ok(())
        }
        "inspect" => {
            let dir = args.require("dir")?;
            let sg =
                SegmentedGraph::open(Path::new(dir)).map_err(|e| format!("opening {dir}: {e}"))?;
            let m = sg.manifest();
            println!(
                "{dir}: {} nodes, {} edges, {} segments of up to {} nodes, \
                 {} encoded bytes",
                m.num_nodes,
                m.num_edges,
                m.segments.len(),
                m.nodes_per_segment,
                m.total_encoded_bytes()
            );
            println!(
                "{:>7} {:>12} {:>10} {:>10} {:>12}",
                "segment", "first node", "nodes", "out-links", "bytes"
            );
            for (i, e) in m.segments.iter().enumerate() {
                println!(
                    "{:>7} {:>12} {:>10} {:>10} {:>12}",
                    i,
                    m.segment_start(i),
                    e.nodes,
                    e.fwd_edges,
                    e.encoded_len
                );
            }
            println!("dangling pages: {}", sg.dangling().len());
            Ok(())
        }
        "verify" => {
            let dir = args.require("dir")?;
            let report = verify_dir(Path::new(dir)).map_err(|e| format!("verifying {dir}: {e}"))?;
            for s in &report.segments {
                match &s.error {
                    Some(e) => println!("segment {}: CORRUPT ({e})", s.index),
                    None => println!(
                        "segment {}: ok ({} nodes, {} bytes)",
                        s.index, s.nodes, s.encoded_len
                    ),
                }
            }
            let broken = report.broken();
            if broken > 0 {
                return Err(format!(
                    "{broken} of {} segment(s) corrupt",
                    report.segments.len()
                ));
            }
            println!(
                "all {} segment(s) verified ({} nodes, {} edges)",
                report.segments.len(),
                report.manifest.num_nodes,
                report.manifest.num_edges
            );
            Ok(())
        }
        other => Err(format!(
            "graph: unknown action {other:?} (expected build|inspect|verify)"
        )),
    }
}

/// `jxp-cli metrics` — render a saved telemetry snapshot.
pub fn metrics_cmd(args: &ParsedArgs) -> Result<(), String> {
    let path = args.require("in")?;
    let format = args.get_choice("format", &["table", "prom", "json"], "table")?;
    let raw = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let snapshot =
        TelemetrySnapshot::from_json(&raw).map_err(|e| format!("parsing {path}: {e}"))?;
    match format {
        "prom" => print!("{}", snapshot.to_prometheus()),
        "json" => println!("{}", snapshot.to_json()),
        _ => print!("{}", snapshot.render_table()),
    }
    Ok(())
}

/// `jxp-cli node` — single-node TCP demo: serve one fragment on an
/// ephemeral localhost port, then drive a second in-process node through
/// a real hello + synopsis probe + meeting against it over the socket.
pub fn node(args: &ParsedArgs) -> Result<(), String> {
    use jxp_core::JxpPeer;
    use jxp_node::{JxpNode, RetryPolicy, TcpConfig, TcpServer, TcpTransport};
    use jxp_synopses::mips::MipsPermutations;

    let seed: u64 = args.get_or("seed", 42)?;
    let duration: u64 = args.get_or("duration", 0)?;
    let cg = generate_graph_with_scale(args, 0.02)?;
    let n = cg.graph.num_nodes();
    let frags = contiguous_fragments(&cg, 2);
    if frags.len() < 2 {
        return Err("graph too small to split; raise --scale".to_string());
    }
    let mut frags = frags.into_iter();
    let perms = MipsPermutations::generate(64, seed);

    let server_node = Arc::new(JxpNode::new(
        0,
        JxpPeer::new(frags.next().unwrap(), n as u64, JxpConfig::default()),
        &perms,
    ));
    let server = TcpServer::spawn(Arc::clone(&server_node) as _)
        .map_err(|e| format!("binding localhost: {e}"))?;
    println!(
        "node 0 serving {} pages on {}",
        server_node.with_peer(|p| p.num_pages()),
        server.addr()
    );

    let client = JxpNode::new(
        1,
        JxpPeer::new(frags.next().unwrap(), n as u64, JxpConfig::default()),
        &perms,
    );
    let transport = TcpTransport::new(TcpConfig::default());
    transport.add_route(0, server.addr());
    let policy = RetryPolicy::default();
    let (peer_id, peer_pages) = client
        .hello(0, &transport, &policy)
        .map_err(|e| format!("hello failed: {e}"))?;
    println!("hello -> node {peer_id} ({peer_pages} pages)");
    let remote_syn = client
        .fetch_synopses(0, &transport, &policy)
        .map_err(|e| format!("synopsis probe failed: {e}"))?;
    println!(
        "synopsis probe -> premeet containment score {:.4}",
        client.premeet_score(&remote_syn)
    );
    let outcome = client
        .meet(0, &transport, &policy)
        .map_err(|e| format!("meeting failed: {e}"))?;
    println!(
        "meeting -> {} bytes out, {} bytes in, {} retries",
        outcome.bytes_sent, outcome.bytes_received, outcome.retries
    );
    let s = client.stats();
    println!(
        "client totals: {} bytes out, {} bytes in (exact codec lengths)",
        s.bytes_out, s.bytes_in
    );
    if duration > 0 {
        println!("serving for {duration}s more (ctrl-c to stop)...");
        std::thread::sleep(std::time::Duration::from_secs(duration));
    }
    Ok(())
}

/// `jxp-cli search` — the Table 2 experiment at CLI scale.
pub fn search(args: &ParsedArgs) -> Result<(), String> {
    use jxp_minerva::eval::{averages, table2};
    use jxp_minerva::{Corpus, CorpusParams, PeerIndex};

    let cg = generate_graph_with_scale(args, 0.05)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let queries_n: usize = args.get_or("queries", 10)?;
    let meetings: usize = args.get_or("meetings", 400)?;
    let truth = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
    let fragments = minerva_fragments(&cg, 4, &mut StdRng::seed_from_u64(seed));
    let frag_refs: Vec<Subgraph> = fragments.clone();
    let mut net = Network::new(
        fragments,
        cg.graph.num_nodes() as u64,
        NetworkConfig::default(),
        seed,
    );
    net.run(meetings);
    let corpus = Corpus::generate(
        &cg,
        &truth,
        CorpusParams::default(),
        &mut StdRng::seed_from_u64(seed ^ 1),
    );
    let indexes: Vec<PeerIndex> = frag_refs
        .iter()
        .map(|f| PeerIndex::build(f, &corpus))
        .collect();
    let queries = corpus.make_queries(queries_n, &mut StdRng::seed_from_u64(seed ^ 2));
    let rows = table2(
        &corpus,
        &indexes,
        &net.total_ranking(),
        &queries,
        6,
        50,
        10,
        (0.6, 0.4),
    );
    println!(
        "{:<14} {:>8} {:>22}",
        "query", "tf*idf", "0.6 tf*idf + 0.4 JXP"
    );
    for r in &rows {
        println!(
            "{:<14} {:>7.0}% {:>21.0}%",
            r.query,
            r.tfidf_precision * 100.0,
            r.fused_precision * 100.0
        );
    }
    let (t, f) = averages(&rows);
    println!("{:<14} {:>7.0}% {:>21.0}%", "average", t * 100.0, f * 100.0);
    Ok(())
}

/// Shared flag parsing for the serving commands (`serve`, `loadgen`).
fn serve_params(args: &ParsedArgs) -> Result<jxp_serve::ServeExperimentParams, String> {
    let scale: f64 = args.get_or("scale", 0.05)?;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(format!("--scale must be in (0, 1], got {scale}"));
    }
    let peers: usize = args.get_or("peers", 4)?;
    if peers < 2 {
        return Err(format!("--peers must be at least 2, got {peers}"));
    }
    Ok(jxp_serve::ServeExperimentParams {
        seed: args.get_or("seed", 42)?,
        peers,
        meetings: args.get_or("meetings", 200)?,
        num_queries: args.get_or("queries", 10)?,
        k: args.get_or("k", 10)?,
        repeats: args.get_or("repeats", 3)?,
        concurrency: args.get_or("concurrency", 2)?,
        threads: args.get_or("threads", 1)?,
        scale,
        dataset: preset(args)?,
        metrics_listen: args.get("metrics-listen").map(String::from),
        transport: args
            .get_choice(
                "transport",
                &["loopback", "tcp", "threads", "reactor"],
                "loopback",
            )?
            .parse()?,
    })
}

fn print_serve_summary(r: &jxp_serve::ServeBenchReport) {
    let p = &r.params;
    println!(
        "served {} measured requests ({} warmup, {} failures) across {} peers",
        r.load.measured_requests, r.load.warmup_requests, r.load.failures, p.peers
    );
    if let Some(addr) = r.metrics_addr {
        println!("metrics endpoint served scrapes on http://{addr}/metrics during the run");
    }
    println!(
        "throughput {:.0} qps, latency p50 {:.3} ms / p99 {:.3} ms, cache hit rate {:.0}%",
        r.load.qps,
        r.load.p50_ms,
        r.load.p99_ms,
        r.load.cache_hit_rate * 100.0
    );
    println!(
        "precision@{}: tf*idf {:.0}%, fused {:.0}%, centralized {:.0}% (top-k overlap with \
         centralized {:.0}%)",
        p.k,
        r.tfidf_precision * 100.0,
        r.fused_precision * 100.0,
        r.centralized_precision * 100.0,
        r.centralized_overlap * 100.0
    );
    println!("fusion wins: {}", r.fusion_wins);
}

/// `jxp-cli serve` — run a cluster with every node fronted by a query
/// handler, drive it with the seeded load mix, and show the answers.
pub fn serve(args: &ParsedArgs) -> Result<(), String> {
    let params = serve_params(args)?;
    println!(
        "{} scale {}, {} peers, {} meetings, seed {} — serving top-{} queries while converging",
        params.dataset.name, params.scale, params.peers, params.meetings, params.seed, params.k
    );
    let report = jxp_serve::run_serve_experiment(&params);
    print_serve_summary(&report);
    println!("results from node 0 (fused ranking, final pass):");
    if let Some(replies) = report.load.replies.first() {
        for (q, reply) in report.query_names.iter().zip(replies) {
            let hits: Vec<String> = reply
                .hits
                .iter()
                .take(5)
                .map(|h| format!("{} ({:.3})", h.page.0, h.fused))
                .collect();
            println!("  {:<16} {}", q, hits.join(", "));
        }
    }
    Ok(())
}

/// `jxp-cli loadgen` — run the serving benchmark and write
/// `BENCH_serve.json`.
pub fn loadgen(args: &ParsedArgs) -> Result<(), String> {
    let params = serve_params(args)?;
    let report = jxp_serve::run_serve_experiment(&params);
    print_serve_summary(&report);
    let default_out = std::env::var("JXP_RESULTS")
        .map(|d| {
            std::path::PathBuf::from(d)
                .join("BENCH_serve.json")
                .display()
                .to_string()
        })
        .unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let out = args.get("out").unwrap_or(&default_out);
    if let Some(dir) = Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(out, jxp_serve::render_bench_json(&report))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("[json] {out}");
    Ok(())
}
