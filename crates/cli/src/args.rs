//! `--key value` argument parsing.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs of one subcommand invocation.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parse alternating `--key value` tokens.
    ///
    /// # Errors
    /// Rejects bare tokens, keys without values and duplicate keys.
    pub fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut it = tokens.iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {tok:?}"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} is missing its value"))?;
            if values.insert(key.to_string(), value.clone()).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(ParsedArgs { values })
    }

    /// Raw string value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Optional parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {raw:?}")),
        }
    }

    /// Optional enum-ish value constrained to a fixed set.
    pub fn get_choice<'a>(
        &'a self,
        key: &str,
        choices: &[&'a str],
        default: &'a str,
    ) -> Result<&'a str, String> {
        let raw = self.get(key).unwrap_or(default);
        choices
            .iter()
            .find(|&&c| c == raw)
            .copied()
            .ok_or_else(|| format!("--{key}: expected one of {choices:?}, got {raw:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<ParsedArgs, String> {
        ParsedArgs::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs() {
        let a = parse("--scale 0.5 --out x.bin").unwrap();
        assert_eq!(a.get("scale"), Some("0.5"));
        assert_eq!(a.get("out"), Some("x.bin"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("scale 0.5").is_err());
        assert!(parse("--scale").is_err());
        assert!(parse("--scale 1 --scale 2").is_err());
    }

    #[test]
    fn typed_access_with_defaults() {
        let a = parse("--meetings 100").unwrap();
        assert_eq!(a.get_or("meetings", 5usize).unwrap(), 100);
        assert_eq!(a.get_or("top", 10usize).unwrap(), 10);
        assert!(a.get_or::<usize>("meetings", 0).is_ok());
        let bad = parse("--meetings many").unwrap();
        assert!(bad.get_or::<usize>("meetings", 0).is_err());
    }

    #[test]
    fn choices_are_validated() {
        let a = parse("--merge full").unwrap();
        assert_eq!(
            a.get_choice("merge", &["light", "full"], "light").unwrap(),
            "full"
        );
        assert_eq!(
            a.get_choice("combine", &["max", "avg"], "max").unwrap(),
            "max"
        );
        let bad = parse("--merge diagonal").unwrap();
        assert!(bad
            .get_choice("merge", &["light", "full"], "light")
            .is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse("").unwrap();
        assert!(a.require("graph").is_err());
    }
}
