#![deny(missing_docs)]
//! # jxp-cli
//!
//! Command-line driver for the JXP reproduction:
//!
//! ```text
//! jxp-cli generate --dataset amazon --scale 0.1 --out web.jxpg
//! jxp-cli pagerank --graph web.jxpg --top 10 --solver gauss-seidel
//! jxp-cli simulate --dataset amazon --scale 0.1 --meetings 800
//! jxp-cli search   --scale 0.1 --queries 10
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs after a
//! subcommand) to keep the dependency set to the sanctioned crates.

mod args;
mod commands;

pub use args::ParsedArgs;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: jxp-cli <command> [--key value ...]

commands:
  generate   synthesize a dataset and write it to disk
             --dataset amazon|web (default amazon), --scale 0..=1 (0.1),
             --seed N, --out FILE (graph.jxpg), --edge-list FILE (optional)
  pagerank   compute centralized PageRank over a graph file
             --graph FILE, --top K (10), --solver power|gauss-seidel,
             --epsilon 0.85, --threads N (0 = all cores; power solver)
  simulate   run a JXP P2P network and report convergence
             --dataset amazon|web, --scale (0.05), --meetings N (600),
             --merge light|full, --combine max|avg,
             --strategy random|premeetings, --estimate-n yes|no,
             --sample N, --top K, --seed N,
             --threads N (0 = all cores; results thread-count-invariant),
             --metrics-out FILE (write a telemetry JSON snapshot)
  search     run the Minerva search experiment (Table 2 style)
             --scale (0.05), --queries N (10), --meetings N (400), --seed N
  cluster    run N networked nodes through M meetings over the wire codec
             --peers N (8), --meetings M (200),
             --transport loopback|tcp|threads|reactor,
             --premeetings yes|no, --stall K (stall node 1 for K requests),
             --dataset, --scale (0.05), --seed N, --top K,
             --threads N (0 = all cores; results thread-count-invariant),
             --metrics-out FILE (write a telemetry JSON snapshot),
             --stats-endpoint yes|no (serve + sweep StatsRequest frames),
             --state-dir DIR (durable checkpoints + WAL; reruns resume),
             --checkpoint-every N (8), --round-delay-ms MS (0),
             --metrics-listen ADDR (Prometheus scrape endpoint)
  graph      build, inspect or CRC-verify a disk-backed segmented
             webgraph directory (the out-of-core jxp-segstore format)
             graph build   --out DIR [--graph FILE.jxpg |
                           --dataset amazon|web --scale S --seed N]
                           [--segment-nodes N (4096)]
             graph inspect --dir DIR
             graph verify  --dir DIR
             (verify exits nonzero when any segment is corrupt)
  checkpoint inspect or verify a --state-dir written by cluster
             checkpoint inspect --state-dir DIR [--node N|--key KEY]
             checkpoint verify  --state-dir DIR [--node N|--key KEY]
             (verify exits nonzero when a node is unrecoverable)
  metrics    render a telemetry snapshot written by --metrics-out
             --in FILE, --format table|prom|json (table)
  node       single-node TCP demo: serve a fragment on an ephemeral port
             and run hello + synopsis probe + meeting against it
             --dataset, --scale (0.02), --seed N, --duration SECS (0)
  serve      run a cluster with per-node top-k query serving (tf*idf +
             live JXP authority fusion, epoch-validated result cache)
             and show the seeded load mix's answers
             --peers N (4), --meetings M (200), --dataset, --scale (0.05),
             --queries N (10), --k K (10), --repeats N (3),
             --concurrency N (2), --threads N (1), --seed N,
             --transport loopback|tcp|threads|reactor,
             --metrics-listen ADDR (Prometheus scrape endpoint, e.g.
             127.0.0.1:0 for an ephemeral port)
  loadgen    run the closed-loop serving benchmark and write
             BENCH_serve.json (qps, p50/p99, cache hit rate,
             precision@10 vs the tf*idf and centralized baselines)
             same flags as serve, plus --out FILE (BENCH_serve.json;
             the JXP_RESULTS env var moves the default)";

/// Entry point: dispatch a full argument vector (without the program
/// name). Returns a user-facing error string on bad input.
pub fn run(argv: &[String]) -> Result<(), String> {
    let (command, rest) = argv.split_first().ok_or("missing command")?;
    if command == "checkpoint" {
        // The checkpoint command takes an action word before its flags.
        let (action, rest) = rest
            .split_first()
            .ok_or("checkpoint: missing action (inspect|verify)")?;
        let parsed = ParsedArgs::parse(rest)?;
        return commands::checkpoint(action, &parsed);
    }
    if command == "graph" {
        // Like checkpoint: an action word before the flags.
        let (action, rest) = rest
            .split_first()
            .ok_or("graph: missing action (build|inspect|verify)")?;
        let parsed = ParsedArgs::parse(rest)?;
        return commands::graph_cmd(action, &parsed);
    }
    let parsed = ParsedArgs::parse(rest)?;
    match command.as_str() {
        "generate" => commands::generate(&parsed),
        "pagerank" => commands::pagerank_cmd(&parsed),
        "simulate" => commands::simulate(&parsed),
        "search" => commands::search(&parsed),
        "cluster" => commands::cluster(&parsed),
        "metrics" => commands::metrics_cmd(&parsed),
        "node" => commands::node(&parsed),
        "serve" => commands::serve(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn help_succeeds() {
        run(&argv("help")).unwrap();
    }

    #[test]
    fn end_to_end_generate_pagerank_roundtrip() {
        let dir = std::env::temp_dir().join("jxp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.jxpg");
        run(&argv(&format!(
            "generate --dataset amazon --scale 0.01 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(path.exists());
        run(&argv(&format!(
            "pagerank --graph {} --top 5 --solver gauss-seidel",
            path.display()
        )))
        .unwrap();
    }

    #[test]
    fn simulate_smoke() {
        run(&argv(
            "simulate --dataset amazon --scale 0.01 --meetings 40 --sample 20 --top 20",
        ))
        .unwrap();
    }

    #[test]
    fn simulate_full_merge_avg_combine() {
        run(&argv(
            "simulate --dataset amazon --scale 0.01 --meetings 30 --merge full --combine avg --strategy premeetings --sample 15 --top 20",
        ))
        .unwrap();
    }

    #[test]
    fn simulate_with_estimated_n() {
        run(&argv(
            "simulate --dataset amazon --scale 0.01 --meetings 30 --estimate-n yes --sample 15 --top 20",
        ))
        .unwrap();
    }

    #[test]
    fn simulate_with_explicit_threads() {
        run(&argv(
            "simulate --dataset amazon --scale 0.01 --meetings 30 --threads 2 --sample 15 --top 20",
        ))
        .unwrap();
    }

    #[test]
    fn cluster_loopback_smoke() {
        run(&argv(
            "cluster --peers 4 --meetings 24 --scale 0.01 --transport loopback",
        ))
        .unwrap();
    }

    #[test]
    fn cluster_with_explicit_threads() {
        run(&argv(
            "cluster --peers 4 --meetings 16 --scale 0.01 --transport loopback --threads 2",
        ))
        .unwrap();
    }

    #[test]
    fn cluster_tcp_with_stall_survives() {
        run(&argv(
            "cluster --peers 4 --meetings 16 --scale 0.01 --transport tcp --stall 2",
        ))
        .unwrap();
    }

    #[test]
    fn cluster_premeetings_smoke() {
        run(&argv(
            "cluster --peers 3 --meetings 12 --scale 0.01 --premeetings yes",
        ))
        .unwrap();
    }

    #[test]
    fn simulate_metrics_out_roundtrips_through_metrics_command() {
        let dir = std::env::temp_dir().join("jxp_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim_metrics.json");
        run(&argv(&format!(
            "simulate --dataset amazon --scale 0.01 --meetings 30 --sample 15 --top 20 \
             --metrics-out {}",
            path.display()
        )))
        .unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let snap = jxp_telemetry::TelemetrySnapshot::from_json(&raw).unwrap();
        assert_eq!(snap.metrics.counters["jxp_sim_meetings_total"], 30);
        for format in ["table", "prom", "json"] {
            run(&argv(&format!(
                "metrics --in {} --format {format}",
                path.display()
            )))
            .unwrap();
        }
    }

    #[test]
    fn cluster_metrics_out_and_stats_endpoint() {
        let dir = std::env::temp_dir().join("jxp_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster_metrics.json");
        run(&argv(&format!(
            "cluster --peers 3 --meetings 12 --scale 0.01 --transport loopback \
             --stats-endpoint yes --metrics-out {}",
            path.display()
        )))
        .unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let snap = jxp_telemetry::TelemetrySnapshot::from_json(&raw).unwrap();
        assert!(snap.metrics.counters["jxp_cluster_rounds_total"] > 0);
    }

    #[test]
    fn cluster_state_dir_resume_and_checkpoint_commands() {
        let dir = std::env::temp_dir().join(format!("jxp_cli_state_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cluster = format!(
            "cluster --peers 3 --meetings 12 --scale 0.01 --state-dir {}",
            dir.display()
        );
        run(&argv(&cluster)).unwrap();
        // Rerunning over the same state dir resumes (here: a no-op run).
        run(&argv(&cluster)).unwrap();
        for action in ["inspect", "verify"] {
            run(&argv(&format!(
                "checkpoint {action} --state-dir {}",
                dir.display()
            )))
            .unwrap();
            run(&argv(&format!(
                "checkpoint {action} --state-dir {} --node 0",
                dir.display()
            )))
            .unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_build_inspect_verify_roundtrip_and_corruption_detection() {
        let dir = std::env::temp_dir().join(format!("jxp_cli_graph_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let jxpg = dir.join("tiny.jxpg");
        run(&argv(&format!(
            "generate --dataset amazon --scale 0.02 --out {}",
            jxpg.display()
        )))
        .unwrap();
        let segs = dir.join("segments");
        run(&argv(&format!(
            "graph build --graph {} --out {} --segment-nodes 128",
            jxpg.display(),
            segs.display()
        )))
        .unwrap();
        run(&argv(&format!("graph inspect --dir {}", segs.display()))).unwrap();
        run(&argv(&format!("graph verify --dir {}", segs.display()))).unwrap();
        // Flip one byte in a segment container: verify must now fail.
        let seg0 = segs.join("seg-000000.jxps");
        let mut bytes = std::fs::read(&seg0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&seg0, &bytes).unwrap();
        assert!(run(&argv(&format!("graph verify --dir {}", segs.display()))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_build_from_generated_dataset() {
        let dir = std::env::temp_dir().join(format!("jxp_cli_graph_gen_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        run(&argv(&format!(
            "graph build --dataset amazon --scale 0.02 --out {} --segment-nodes 256",
            dir.display()
        )))
        .unwrap();
        run(&argv(&format!("graph verify --dir {}", dir.display()))).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_command_rejects_bad_input() {
        assert!(run(&argv("graph")).is_err()); // missing action
        assert!(run(&argv("graph build")).is_err()); // missing --out
        assert!(run(&argv("graph frob --dir /tmp/nope")).is_err());
        assert!(run(&argv("graph inspect --dir /nonexistent/segments")).is_err());
        assert!(run(&argv("graph verify --dir /nonexistent/segments")).is_err());
    }

    #[test]
    fn checkpoint_command_rejects_bad_input() {
        assert!(run(&argv("checkpoint")).is_err()); // missing action
        assert!(run(&argv("checkpoint inspect")).is_err()); // missing --state-dir
        assert!(run(&argv("checkpoint frob --state-dir /tmp/nope")).is_err());
        let empty = std::env::temp_dir().join(format!("jxp_cli_empty_{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run(&argv(&format!(
            "checkpoint verify --state-dir {}",
            empty.display()
        )))
        .is_err()); // nothing to verify
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn metrics_command_rejects_missing_and_garbage_input() {
        assert!(run(&argv("metrics --format table")).is_err()); // missing --in
        assert!(run(&argv("metrics --in /nonexistent/metrics.json")).is_err());
        let dir = std::env::temp_dir().join("jxp_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("garbage.json");
        std::fs::write(&bad, "not json").unwrap();
        assert!(run(&argv(&format!("metrics --in {}", bad.display()))).is_err());
    }

    #[test]
    fn node_tcp_demo_smoke() {
        run(&argv("node --scale 0.01")).unwrap();
    }

    #[test]
    fn cluster_rejects_bad_args() {
        assert!(run(&argv("cluster --peers 1")).is_err());
        assert!(run(&argv("cluster --transport carrier-pigeon")).is_err());
    }

    #[test]
    fn search_smoke() {
        run(&argv("search --scale 0.01 --queries 4 --meetings 60")).unwrap();
    }

    #[test]
    fn serve_smoke_with_metrics_listener() {
        run(&argv(
            "serve --peers 3 --meetings 40 --scale 0.01 --queries 4 --repeats 2 \
             --metrics-listen 127.0.0.1:0",
        ))
        .unwrap();
    }

    #[test]
    fn loadgen_writes_bench_json() {
        let dir = std::env::temp_dir().join(format!("jxp_cli_loadgen_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_serve.json");
        run(&argv(&format!(
            "loadgen --peers 3 --meetings 40 --scale 0.01 --queries 4 --repeats 2 --out {}",
            out.display()
        )))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"qps\":",
            "\"cache_hit_rate\":",
            "\"fused_precision\":",
            "\"fusion_wins\":",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_rejects_bad_args() {
        assert!(run(&argv("serve --peers 1")).is_err());
        assert!(run(&argv("loadgen --scale 0")).is_err());
    }

    #[test]
    fn bad_values_are_reported() {
        assert!(run(&argv("simulate --scale banana")).is_err());
        assert!(run(&argv("simulate --merge sideways")).is_err());
        assert!(run(&argv("pagerank --top 5")).is_err()); // missing --graph
        assert!(run(&argv("generate --dataset mars")).is_err());
    }
}
