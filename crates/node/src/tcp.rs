//! Localhost TCP transport built on `std::net` and plain threads.
//!
//! One exchange = one connection: the initiator connects, writes one
//! encoded frame, and reads one encoded frame back. Framing on the
//! stream relies on the wire header — the reader pulls the fixed
//! 12-byte header, learns the total frame length from the
//! [`jxp_wire::WireError::Truncated`] `needed` field, then pulls the
//! rest. All reads and the connect carry timeouts so a stalled or
//! vanished peer surfaces as a [`TransportError`] instead of a hang.

use crate::transport::{Exchange, FrameHandler, NodeId, Transport, TransportError};
use jxp_wire::{decode_frame, encode_frame, Frame, WireError, HEADER_LEN};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Read exactly one wire frame from `stream` (header first, then the
/// remainder announced by the header).
fn read_frame(stream: &mut TcpStream) -> Result<(Frame, usize), TransportError> {
    let mut buf = vec![0u8; HEADER_LEN];
    read_fully(stream, &mut buf)?;
    let needed = match decode_frame(&buf) {
        Ok((frame, consumed)) => return Ok((frame, consumed)),
        Err(WireError::Truncated { needed, .. }) => needed,
        Err(e) => return Err(e.into()),
    };
    let start = buf.len();
    buf.resize(needed, 0);
    read_fully(stream, &mut buf[start..])?;
    let (frame, consumed) = decode_frame(&buf)?;
    Ok((frame, consumed))
}

fn read_fully(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), TransportError> {
    stream.read_exact(buf).map_err(|e| match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout,
        _ => TransportError::Unreachable(format!("connection lost: {e}")),
    })
}

/// A background acceptor answering frames with a [`FrameHandler`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// [`TcpServer::spawn_with`] under the default [`TcpConfig`].
    pub fn spawn(handler: Arc<dyn FrameHandler>) -> std::io::Result<TcpServer> {
        TcpServer::spawn_with(handler, TcpConfig::default())
    }

    /// Bind an ephemeral localhost port and start accepting. Each
    /// connection is served on its own thread: one frame in, one frame
    /// out (or none, if the handler stalls), then the connection closes.
    /// Per-connection reads time out after `config.io_timeout` — the
    /// same budget the client side applies to the reply.
    pub fn spawn_with(
        handler: Arc<dyn FrameHandler>,
        config: TcpConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        // A non-blocking acceptor polls the stop flag between accepts,
        // so shutdown needs no self-connect to unwedge it.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                // Reap finished workers as we go: an unjoined thread
                // keeps its stack mapped, and a long run serves far
                // more connections than the address space has stacks.
                workers.retain(|w| !w.is_finished());
                let mut stream = match listener.accept() {
                    Ok((stream, _peer)) => stream,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    Err(_) => continue,
                };
                // The listener's non-blocking mode is inherited by some
                // platforms; the per-connection worker wants plain
                // blocking reads under a read timeout.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let io_timeout = config.io_timeout;
                let handler = Arc::clone(&handler);
                workers.push(std::thread::spawn(move || {
                    let _ = stream.set_read_timeout(Some(io_timeout));
                    let Ok((frame, _)) = read_frame(&mut stream) else {
                        return;
                    };
                    // A stalling handler sends nothing: the connection
                    // drops and the client's timeout/retry takes over.
                    if let Some(reply) = handler.handle(frame) {
                        let _ = stream.write_all(&encode_frame(&reply));
                    }
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address, for routing.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the acceptor thread. The acceptor polls
    /// the stop flag on every accept-timeout tick, so this converges
    /// without poking the listener.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = thread.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Timeouts applied to every TCP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// Limit on establishing the connection.
    pub connect_timeout: Duration,
    /// Limit on each blocking read while waiting for the reply.
    pub io_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(1500),
        }
    }
}

/// Client side: routes node ids to socket addresses.
#[derive(Default)]
pub struct TcpTransport {
    routes: Mutex<HashMap<NodeId, SocketAddr>>,
    config: TcpConfig,
}

impl TcpTransport {
    /// Create a transport with the given timeouts.
    pub fn new(config: TcpConfig) -> Self {
        TcpTransport {
            routes: Mutex::new(HashMap::new()),
            config,
        }
    }

    /// Map `id` to the address of its [`TcpServer`].
    pub fn add_route(&self, id: NodeId, addr: SocketAddr) {
        // Recover from poisoning: the route table is plain data, and a
        // panicking handler thread must not wedge every later meeting.
        jxp_telemetry::sync::lock_unpoisoned(&self.routes).insert(id, addr);
    }
}

impl Transport for TcpTransport {
    fn request(&self, peer: NodeId, frame: &Frame) -> Result<Exchange, TransportError> {
        let addr = jxp_telemetry::sync::lock_unpoisoned(&self.routes)
            .get(&peer)
            .copied()
            .ok_or_else(|| TransportError::Unreachable(format!("no route to node {peer}")))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|e| TransportError::Unreachable(format!("connect to {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .map_err(|e| TransportError::Unreachable(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Unreachable(e.to_string()))?;

        let request_bytes = encode_frame(frame);
        stream
            .write_all(&request_bytes)
            .map_err(|e| TransportError::Unreachable(format!("send failed: {e}")))?;
        let (reply, reply_len) = read_frame(&mut stream)?;
        Ok(Exchange {
            reply,
            bytes_sent: request_bytes.len() as u64,
            bytes_received: reply_len as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_wire::encoded_len;
    use std::sync::atomic::AtomicU32;

    struct Echo;

    impl FrameHandler for Echo {
        fn handle(&self, frame: Frame) -> Option<Frame> {
            Some(frame)
        }
    }

    /// Stalls (drops the connection without replying) for the first
    /// `stalls` requests, then echoes.
    struct StallThenEcho {
        stalls: AtomicU32,
    }

    impl FrameHandler for StallThenEcho {
        fn handle(&self, frame: Frame) -> Option<Frame> {
            let left = self.stalls.load(Ordering::SeqCst);
            if left > 0 {
                self.stalls.store(left - 1, Ordering::SeqCst);
                return None;
            }
            Some(frame)
        }
    }

    #[test]
    fn tcp_roundtrip_reports_exact_codec_bytes() {
        let server = TcpServer::spawn(Arc::new(Echo)).unwrap();
        let transport = TcpTransport::new(TcpConfig::default());
        transport.add_route(1, server.addr());
        let req = Frame::Hello {
            node_id: 9,
            num_pages: 5,
        };
        let ex = transport.request(1, &req).unwrap();
        assert_eq!(ex.reply, req);
        assert_eq!(ex.bytes_sent, encoded_len(&req) as u64);
        assert_eq!(ex.bytes_received, encoded_len(&req) as u64);
    }

    #[test]
    fn dropped_reply_surfaces_as_error_then_retry_succeeds() {
        let server = TcpServer::spawn(Arc::new(StallThenEcho {
            stalls: AtomicU32::new(1),
        }))
        .unwrap();
        let transport = TcpTransport::new(TcpConfig::default());
        transport.add_route(2, server.addr());
        let req = Frame::Ack { of: 1 };
        assert!(transport.request(2, &req).is_err());
        assert!(transport.request(2, &req).is_ok());
    }

    #[test]
    fn server_read_timeout_comes_from_config() {
        let mut server = TcpServer::spawn_with(
            Arc::new(Echo),
            TcpConfig {
                io_timeout: Duration::from_millis(100),
                ..TcpConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Send half a header, then stall: the worker's read must give
        // up on the configured budget and drop the connection.
        stream.write_all(&jxp_wire::MAGIC[..2]).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "expected EOF once the server timed the read out");
        server.shutdown();
    }

    #[test]
    fn shutdown_converges_without_a_self_connect() {
        let mut server = TcpServer::spawn(Arc::new(Echo)).unwrap();
        // No connection ever arrives; the flag poll alone must unblock
        // the acceptor.
        server.shutdown();
    }

    #[test]
    fn unroutable_and_dead_peers_are_unreachable() {
        let transport = TcpTransport::new(TcpConfig::default());
        assert!(matches!(
            transport.request(3, &Frame::Ack { of: 1 }).unwrap_err(),
            TransportError::Unreachable(_)
        ));
        let addr = {
            let mut server = TcpServer::spawn(Arc::new(Echo)).unwrap();
            let addr = server.addr();
            server.shutdown();
            addr
        };
        transport.add_route(4, addr);
        // The listener is gone; connect (or the read, if the OS still
        // accepts briefly) must fail rather than hang.
        assert!(transport.request(4, &Frame::Ack { of: 1 }).is_err());
    }
}
