//! The networked peer runtime: a [`JxpNode`] owns a [`JxpPeer`] plus its
//! synopses and answers/initiates meetings over any [`Transport`].
//!
//! Protocol invariant (paper §4): both sides of a meeting compute their
//! outgoing payload **before** absorbing the other's. The responder
//! therefore builds its `MeetReply` from pre-absorption state, and the
//! initiator absorbs the reply only after the exchange returns.
//!
//! Stats bookkeeping never touches the node's state mutex: every counter
//! lives in a [`NodeMetrics`] of sharded [`Counter`] handles (see
//! `jxp-telemetry`), so serving a meeting updates traffic counters with
//! relaxed atomic adds while another thread holds the peer state lock.

use crate::persist::NodePersist;
use crate::transport::{
    request_with_retry, Exchange, FrameHandler, NodeId, RetryPolicy, Transport, TransportError,
};
use jxp_core::payload::MeetingPayload;
use jxp_core::peer::JxpPeer;
use jxp_core::selection::{PeerSynopses, PreMeetingsConfig};
use jxp_synopses::mips::MipsPermutations;
use jxp_telemetry::{Counter, Registry};
use jxp_wire::{encoded_len, ErrorCode, Frame, StatsPayload, SynopsisPayload};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-node traffic and meeting counters (point-in-time snapshot of a
/// [`NodeMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Meetings this node initiated.
    pub meetings_attempted: u64,
    /// Initiated meetings that completed (reply absorbed).
    pub meetings_completed: u64,
    /// Initiated meetings abandoned after exhausting retries.
    pub meetings_failed: u64,
    /// Inbound meeting requests this node answered.
    pub meetings_served: u64,
    /// Retries spent across all initiated exchanges.
    pub retries: u64,
    /// Wire bytes received (requests in + replies in), measured.
    pub bytes_in: u64,
    /// Wire bytes sent (requests out + replies out), measured.
    pub bytes_out: u64,
}

/// Lock-free counter handles behind a node's [`NodeStats`]. Cloning
/// shares the underlying atomics. Detached by default; construct with
/// [`NodeMetrics::registered`] to expose the counters through a
/// `jxp-telemetry` [`Registry`] (one labelled series per node).
#[derive(Debug, Clone)]
pub struct NodeMetrics {
    pub(crate) meetings_attempted: Arc<Counter>,
    pub(crate) meetings_completed: Arc<Counter>,
    pub(crate) meetings_failed: Arc<Counter>,
    pub(crate) meetings_served: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) bytes_in: Arc<Counter>,
    pub(crate) bytes_out: Arc<Counter>,
}

impl NodeMetrics {
    /// Standalone counters, not visible to any registry.
    pub fn detached() -> Self {
        NodeMetrics {
            meetings_attempted: Arc::new(Counter::new()),
            meetings_completed: Arc::new(Counter::new()),
            meetings_failed: Arc::new(Counter::new()),
            meetings_served: Arc::new(Counter::new()),
            retries: Arc::new(Counter::new()),
            bytes_in: Arc::new(Counter::new()),
            bytes_out: Arc::new(Counter::new()),
        }
    }

    /// Counters registered in `registry` as one labelled series per
    /// field, e.g. `jxp_node_meetings_attempted_total{node="3"}`.
    pub fn registered(registry: &Registry, node: NodeId) -> Self {
        let series =
            |field: &str| registry.counter(&format!("jxp_node_{field}_total{{node=\"{node}\"}}"));
        NodeMetrics {
            meetings_attempted: series("meetings_attempted"),
            meetings_completed: series("meetings_completed"),
            meetings_failed: series("meetings_failed"),
            meetings_served: series("meetings_served"),
            retries: series("retries"),
            bytes_in: series("bytes_in"),
            bytes_out: series("bytes_out"),
        }
    }

    /// Merge every counter into a [`NodeStats`] snapshot.
    pub fn snapshot(&self) -> NodeStats {
        NodeStats {
            meetings_attempted: self.meetings_attempted.get(),
            meetings_completed: self.meetings_completed.get(),
            meetings_failed: self.meetings_failed.get(),
            meetings_served: self.meetings_served.get(),
            retries: self.retries.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
        }
    }
}

/// Result of one successfully initiated meeting.
#[derive(Debug, Clone, Copy)]
pub struct MeetOutcome {
    /// Request frame bytes on the wire.
    pub bytes_sent: u64,
    /// Reply frame bytes on the wire.
    pub bytes_received: u64,
    /// Retries the exchange needed.
    pub retries: u32,
}

pub(crate) struct NodeState {
    pub(crate) peer: JxpPeer,
    pub(crate) synopses: PeerSynopses,
    /// Durable journal, when the node runs with a state directory.
    /// Lives under the same mutex as `peer` so journaled sequence
    /// numbers match the order deltas were applied.
    pub(crate) persist: Option<NodePersist>,
}

/// A JXP peer bound to a node id, safe to share between the transport's
/// server side and a driver thread.
pub struct JxpNode {
    id: NodeId,
    state: Arc<Mutex<NodeState>>,
    metrics: NodeMetrics,
    stats_endpoint: AtomicBool,
    /// Bumped every time a meeting (initiated, served, or repaired)
    /// changes the peer's scores. Serving layers key result caches on
    /// this: an advanced epoch means cached fused rankings are stale.
    score_epoch: AtomicU64,
}

impl JxpNode {
    /// Wrap `peer`, computing its synopses with `perms`. Counters are
    /// detached; use [`JxpNode::with_metrics`] to share them.
    pub fn new(id: NodeId, peer: JxpPeer, perms: &MipsPermutations) -> Self {
        JxpNode::with_metrics(id, peer, perms, NodeMetrics::detached())
    }

    /// Like [`JxpNode::new`], but counting into the given handles (e.g.
    /// registry-registered ones from [`NodeMetrics::registered`]).
    pub fn with_metrics(
        id: NodeId,
        peer: JxpPeer,
        perms: &MipsPermutations,
        metrics: NodeMetrics,
    ) -> Self {
        let synopses = PeerSynopses::compute(peer.graph(), perms);
        JxpNode {
            id,
            state: Arc::new(Mutex::new(NodeState {
                peer,
                synopses,
                persist: None,
            })),
            metrics,
            stats_endpoint: AtomicBool::new(false),
            score_epoch: AtomicU64::new(0),
        }
    }

    /// Attach a durable journal: every meeting delta applied from now
    /// on is WAL-appended (and periodically checkpointed) under the
    /// journal's key.
    pub fn attach_persistence(&self, persist: NodePersist) {
        self.lock().persist = Some(persist);
    }

    /// Install a checkpoint of the current peer state, if a journal is
    /// attached. Called by the cluster driver at clean shutdown.
    pub fn persist_checkpoint(&self) {
        let mut state = self.lock();
        let NodeState { peer, persist, .. } = &mut *state;
        if let Some(p) = persist.as_mut() {
            p.checkpoint(peer);
        }
    }

    /// Repair a torn meeting: absorb the reply payload recovered from
    /// the partner's final `Serve` WAL record, journaling it like the
    /// absorb that was lost in the crash.
    pub fn apply_repair(&self, payload: &MeetingPayload) {
        let mut state = self.lock();
        let NodeState { peer, persist, .. } = &mut *state;
        peer.absorb(payload);
        if let Some(p) = persist.as_mut() {
            p.record_absorb(peer, payload);
            p.metrics().repairs_total.inc();
        }
        self.bump_score_epoch();
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Snapshot of the counters. Never takes the state lock: safe to
    /// call while the node is mid-meeting on another thread.
    pub fn stats(&self) -> NodeStats {
        self.metrics.snapshot()
    }

    /// The counter handles themselves.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// Start answering [`Frame::StatsRequest`] with this node's counters
    /// (off by default; disabled nodes reply `Error`/`Refused`).
    pub fn enable_stats_endpoint(&self) {
        // Release/Acquire so a server thread that observes `true` also
        // observes everything the enabling thread wrote before the flip.
        self.stats_endpoint.store(true, Ordering::Release);
    }

    /// Whether the stats endpoint is enabled.
    pub fn stats_endpoint_enabled(&self) -> bool {
        self.stats_endpoint.load(Ordering::Acquire)
    }

    /// The current score epoch: how many absorbed meetings (initiated,
    /// served, or repaired) have changed this peer's scores.
    pub fn score_epoch(&self) -> u64 {
        self.score_epoch.load(Ordering::Acquire)
    }

    /// Advance the score epoch after an absorb. AcqRel so a serving
    /// thread that observes the new epoch also observes the score
    /// update published by the lock release that follows.
    fn bump_score_epoch(&self) {
        self.score_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// This node's counters as a wire payload.
    pub fn stats_payload(&self) -> StatsPayload {
        let s = self.stats();
        StatsPayload {
            node_id: self.id,
            meetings_attempted: s.meetings_attempted,
            meetings_completed: s.meetings_completed,
            meetings_failed: s.meetings_failed,
            meetings_served: s.meetings_served,
            retries: s.retries,
            bytes_in: s.bytes_in,
            bytes_out: s.bytes_out,
        }
    }

    /// Copy of this node's own synopses.
    pub fn synopses(&self) -> PeerSynopses {
        self.lock().synopses.clone()
    }

    /// Run `f` against the wrapped peer (e.g. to read scores).
    pub fn with_peer<R>(&self, f: impl FnOnce(&JxpPeer) -> R) -> R {
        f(&self.lock().peer)
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, NodeState> {
        jxp_telemetry::sync::lock_unpoisoned(&self.state)
    }

    /// Handshake: announce ourselves to `target`, returning its id and
    /// page count from the answering `Hello`.
    pub fn hello(
        &self,
        target: NodeId,
        transport: &dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<(NodeId, u64), TransportError> {
        let request = {
            let state = self.lock();
            Frame::Hello {
                node_id: self.id,
                num_pages: state.peer.num_pages() as u64,
            }
        };
        let outcome = request_with_retry(transport, target, &request, policy)?;
        self.metrics.bytes_out.add(outcome.exchange.bytes_sent);
        self.metrics.bytes_in.add(outcome.exchange.bytes_received);
        match outcome.exchange.reply {
            Frame::Hello { node_id, num_pages } => Ok((node_id, num_pages)),
            Frame::Error { detail, .. } => Err(TransportError::Rejected(detail)),
            other => Err(TransportError::Wire(jxp_wire::WireError::Malformed(
                unexpected_reply(&other),
            ))),
        }
    }

    /// Initiate a meeting with `target`: send our payload, absorb the
    /// reply. The node's own lock is **not** held across the transport
    /// call, so this node keeps answering inbound requests while its
    /// own exchange is in flight (and loopback cannot self-deadlock).
    pub fn meet(
        &self,
        target: NodeId,
        transport: &dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<MeetOutcome, TransportError> {
        let request = self.meet_begin();
        let outcome = match request_with_retry(transport, target, &request, policy) {
            Ok(done) => done,
            Err(failed) => {
                self.meet_abort(failed.retries);
                return Err(failed.error);
            }
        };
        self.meet_finish(outcome.exchange, outcome.retries)
    }

    /// First half of [`JxpNode::meet`]: count the attempt and build the
    /// request frame from pre-absorption state. A multiplexed transport
    /// pairs this with [`JxpNode::meet_finish`] (reply arrived) or
    /// [`JxpNode::meet_abort`] (transport gave up), producing exactly
    /// the counter trace [`JxpNode::meet`] would.
    pub fn meet_begin(&self) -> Frame {
        self.metrics.meetings_attempted.inc();
        Frame::MeetRequest(self.lock().peer.payload())
    }

    /// Second half of [`JxpNode::meet`]: decode the reply, absorb it
    /// (journaling the delta), and settle the success counters.
    /// `retries` is how many times the transport resubmitted.
    pub fn meet_finish(
        &self,
        exchange: Exchange,
        retries: u32,
    ) -> Result<MeetOutcome, TransportError> {
        let remote = match exchange.reply {
            Frame::MeetReply(remote) => remote,
            Frame::Error { detail, .. } => {
                self.metrics.meetings_failed.inc();
                return Err(TransportError::Rejected(detail));
            }
            other => {
                self.metrics.meetings_failed.inc();
                return Err(TransportError::Wire(jxp_wire::WireError::Malformed(
                    unexpected_reply(&other),
                )));
            }
        };
        {
            let mut state = self.lock();
            let NodeState { peer, persist, .. } = &mut *state;
            peer.absorb(&remote);
            if let Some(p) = persist.as_mut() {
                p.record_absorb(peer, &remote);
            }
            self.bump_score_epoch();
        }
        self.metrics.meetings_completed.inc();
        self.metrics.retries.add(u64::from(retries));
        self.metrics.bytes_out.add(exchange.bytes_sent);
        self.metrics.bytes_in.add(exchange.bytes_received);
        Ok(MeetOutcome {
            bytes_sent: exchange.bytes_sent,
            bytes_received: exchange.bytes_received,
            retries,
        })
    }

    /// Failure half of [`JxpNode::meet`]: the transport exhausted its
    /// retries without a reply.
    pub fn meet_abort(&self, retries: u32) {
        self.metrics.meetings_failed.inc();
        self.metrics.retries.add(u64::from(retries));
    }

    /// Pre-meetings probe: swap synopses with `target` and return theirs.
    pub fn fetch_synopses(
        &self,
        target: NodeId,
        transport: &dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<PeerSynopses, TransportError> {
        let request = self.synopses_request();
        let outcome = request_with_retry(transport, target, &request, policy)?;
        self.synopses_accept(outcome.exchange)
    }

    /// First half of [`JxpNode::fetch_synopses`]: the request frame.
    pub fn synopses_request(&self) -> Frame {
        Frame::SynopsisExchange(SynopsisPayload {
            synopses: self.synopses(),
            sketch: None,
            bloom: None,
        })
    }

    /// Second half of [`JxpNode::fetch_synopses`]: decode the reply,
    /// counting bytes only on success — the same accounting the
    /// blocking path performs.
    pub fn synopses_accept(&self, exchange: Exchange) -> Result<PeerSynopses, TransportError> {
        let remote = match exchange.reply {
            Frame::SynopsisExchange(p) => p.synopses,
            Frame::Error { detail, .. } => return Err(TransportError::Rejected(detail)),
            other => {
                return Err(TransportError::Wire(jxp_wire::WireError::Malformed(
                    unexpected_reply(&other),
                )))
            }
        };
        self.metrics.bytes_out.add(exchange.bytes_sent);
        self.metrics.bytes_in.add(exchange.bytes_received);
        Ok(remote)
    }

    /// Ask `target` for its counter snapshot over the wire. Fails with
    /// [`TransportError::Rejected`] if its stats endpoint is disabled.
    pub fn fetch_stats(
        &self,
        target: NodeId,
        transport: &dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<StatsPayload, TransportError> {
        let outcome = request_with_retry(transport, target, &Frame::StatsRequest, policy)?;
        self.metrics.bytes_out.add(outcome.exchange.bytes_sent);
        self.metrics.bytes_in.add(outcome.exchange.bytes_received);
        match outcome.exchange.reply {
            Frame::StatsReply(payload) => Ok(payload),
            Frame::Error { detail, .. } => Err(TransportError::Rejected(detail)),
            other => Err(TransportError::Wire(jxp_wire::WireError::Malformed(
                unexpected_reply(&other),
            ))),
        }
    }

    /// Score a candidate partner from its synopses: the estimated
    /// containment of the candidate's out-link targets in our local
    /// fragment (paper §6 — peers that link into us teach us the most).
    pub fn premeet_score(&self, remote: &PeerSynopses) -> f64 {
        remote.inlink_containment_into(&self.lock().synopses)
    }

    /// Pick the best-scoring candidate above the configured containment
    /// threshold, or `None` if nobody qualifies (caller falls back to a
    /// random partner, as the paper's pre-meetings loop does).
    pub fn select_by_synopses(
        &self,
        candidates: &[(NodeId, PeerSynopses)],
        config: &PreMeetingsConfig,
    ) -> Option<NodeId> {
        let state = self.lock();
        candidates
            .iter()
            .map(|(id, syn)| (*id, syn.inlink_containment_into(&state.synopses)))
            .filter(|(_, score)| *score >= config.containment_threshold)
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
    }

    /// The payload this node would send right now (for tests/inspection).
    pub fn current_payload(&self) -> MeetingPayload {
        self.lock().peer.payload()
    }
}

fn unexpected_reply(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "unexpected Hello reply",
        Frame::MeetRequest(_) => "unexpected MeetRequest reply",
        Frame::MeetReply(_) => "unexpected MeetReply reply",
        Frame::SynopsisExchange(_) => "unexpected SynopsisExchange reply",
        Frame::Ack { .. } => "unexpected Ack reply",
        Frame::Error { .. } => "unexpected Error reply",
        Frame::StatsRequest => "unexpected StatsRequest reply",
        Frame::StatsReply(_) => "unexpected StatsReply reply",
        Frame::QueryRequest(_) => "unexpected QueryRequest reply",
        Frame::QueryReply(_) => "unexpected QueryReply reply",
    }
}

impl FrameHandler for JxpNode {
    fn handle(&self, frame: Frame) -> Option<Frame> {
        let inbound = encoded_len(&frame) as u64;
        let reply = match frame {
            Frame::Hello { .. } => {
                let state = self.lock();
                Frame::Hello {
                    node_id: self.id,
                    num_pages: state.peer.num_pages() as u64,
                }
            }
            Frame::MeetRequest(payload) => {
                let mut state = self.lock();
                let NodeState { peer, persist, .. } = &mut *state;
                // Outgoing payload first — pre-absorption state.
                let own = peer.payload();
                match peer.try_absorb(&payload) {
                    Ok(()) => {
                        // Journal before the reply leaves the lock: a
                        // torn meeting therefore always has the serve
                        // record and lacks the initiator's, never the
                        // reverse (the invariant resume repair uses).
                        if let Some(p) = persist.as_mut() {
                            p.record_serve(peer, &payload, &own);
                        }
                        self.bump_score_epoch();
                        self.metrics.meetings_served.inc();
                        Frame::MeetReply(own)
                    }
                    Err(why) => Frame::Error {
                        code: ErrorCode::BadRequest,
                        detail: why,
                    },
                }
            }
            Frame::SynopsisExchange(_) => {
                let state = self.lock();
                Frame::SynopsisExchange(SynopsisPayload {
                    synopses: state.synopses.clone(),
                    sketch: None,
                    bloom: None,
                })
            }
            // Built before this frame's own bytes are counted, so the
            // reported counters describe the pre-request state.
            Frame::StatsRequest => {
                if self.stats_endpoint_enabled() {
                    Frame::StatsReply(self.stats_payload())
                } else {
                    Frame::Error {
                        code: ErrorCode::Refused,
                        detail: "stats endpoint disabled".to_string(),
                    }
                }
            }
            Frame::Ack { of } => Frame::Ack { of },
            // A bare node has no index to search; the serve layer
            // (jxp-serve) intercepts queries before delegation.
            Frame::QueryRequest(_) => Frame::Error {
                code: ErrorCode::Refused,
                detail: "query endpoint disabled".to_string(),
            },
            Frame::MeetReply(_)
            | Frame::Error { .. }
            | Frame::StatsReply(_)
            | Frame::QueryReply(_) => Frame::Error {
                code: ErrorCode::BadRequest,
                detail: "frame type is reply-only".to_string(),
            },
        };
        self.metrics.bytes_in.add(inbound);
        self.metrics.bytes_out.add(encoded_len(&reply) as u64);
        Some(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackNetwork;
    use jxp_core::config::JxpConfig;
    use jxp_webgraph::{PageId, Subgraph};

    fn two_fragment_nodes() -> (JxpNode, JxpNode) {
        // A tiny 6-page world split across two peers with cross links.
        let ga = Subgraph::from_adjacency(vec![
            (PageId(0), vec![PageId(1)]),
            (PageId(1), vec![PageId(2)]),
            (PageId(2), vec![PageId(3)]),
        ]);
        let gb = Subgraph::from_adjacency(vec![
            (PageId(3), vec![PageId(4)]),
            (PageId(4), vec![PageId(5)]),
            (PageId(5), vec![PageId(0)]),
        ]);
        let perms = MipsPermutations::generate(16, 7);
        let a = JxpNode::new(1, JxpPeer::new(ga, 6, JxpConfig::default()), &perms);
        let b = JxpNode::new(2, JxpPeer::new(gb, 6, JxpConfig::default()), &perms);
        (a, b)
    }

    #[test]
    fn meeting_over_loopback_updates_both_sides() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        let b = Arc::new(b);
        net.register(2, Arc::clone(&b) as Arc<dyn FrameHandler>);

        let world_a_before = a.with_peer(|p| p.world_score());
        let outcome = a.meet(2, &net, &RetryPolicy::default()).unwrap();

        let sa = a.stats();
        assert_eq!(sa.meetings_attempted, 1);
        assert_eq!(sa.meetings_completed, 1);
        assert_eq!(sa.meetings_failed, 0);
        assert_eq!(sa.bytes_out, outcome.bytes_sent);
        assert_eq!(sa.bytes_in, outcome.bytes_received);

        let sb = b.stats();
        assert_eq!(sb.meetings_served, 1);
        // Responder measured the same frames from the other side.
        assert_eq!(sb.bytes_in, outcome.bytes_sent);
        assert_eq!(sb.bytes_out, outcome.bytes_received);

        // Absorbing B's payload teaches A about external pages, which
        // changes its world-node composition.
        let world_a_after = a.with_peer(|p| p.world_score());
        assert!(
            (world_a_after - world_a_before).abs() > 0.0,
            "meeting had no effect on A's world node"
        );
    }

    #[test]
    fn payload_bytes_match_analytic_wire_size() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        net.register(2, Arc::new(b));
        let expected_request = jxp_wire::HEADER_LEN as u64 + a.current_payload().wire_size() as u64;
        let outcome = a.meet(2, &net, &RetryPolicy::default()).unwrap();
        assert_eq!(outcome.bytes_sent, expected_request);
    }

    #[test]
    fn failed_meeting_counts_and_returns_error() {
        let (a, _) = two_fragment_nodes();
        let net = LoopbackNetwork::new(); // nobody registered
        let policy = RetryPolicy {
            max_attempts: 2,
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(1),
        };
        assert!(a.meet(9, &net, &policy).is_err());
        let s = a.stats();
        assert_eq!(s.meetings_attempted, 1);
        assert_eq!(s.meetings_failed, 1);
        assert_eq!(s.meetings_completed, 0);
        assert_eq!(s.retries, 1);
        assert_eq!(s.bytes_out, 0);
    }

    #[test]
    fn rejected_meeting_charges_no_retries() {
        // A responder that refuses every meeting: the failure is fatal on
        // the first attempt, so zero retries must be recorded even under
        // a generous retry policy (the bug this guards against charged
        // max_attempts - 1 unconditionally).
        struct Refuser;
        impl FrameHandler for Refuser {
            fn handle(&self, _frame: Frame) -> Option<Frame> {
                Some(Frame::Error {
                    code: ErrorCode::Refused,
                    detail: "no meetings today".to_string(),
                })
            }
        }
        let (a, _) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        net.register(5, Arc::new(Refuser));
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(1),
        };
        // The reply decodes fine, so the exchange "succeeds" and the
        // Error frame surfaces as Rejected after zero retries.
        assert!(matches!(
            a.meet(5, &net, &policy),
            Err(TransportError::Rejected(_))
        ));
        let s = a.stats();
        assert_eq!(s.meetings_attempted, 1);
        assert_eq!(s.meetings_failed, 1);
        assert_eq!(s.retries, 0, "fatal first-attempt failure charged retries");
    }

    #[test]
    fn synopsis_exchange_and_premeet_scoring() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        let b_syn = b.synopses();
        net.register(2, Arc::new(b));
        let fetched = a.fetch_synopses(2, &net, &RetryPolicy::default()).unwrap();
        assert_eq!(fetched, b_syn);
        // B links into A (5 -> 0), so B must outscore a candidate with
        // no links into A at all.
        let score = a.premeet_score(&fetched);
        assert!(score > 0.0, "expected positive containment, got {score}");
    }

    #[test]
    fn hello_and_reply_only_frames() {
        let (a, _) = two_fragment_nodes();
        let reply = a
            .handle(Frame::Hello {
                node_id: 99,
                num_pages: 0,
            })
            .unwrap();
        assert_eq!(
            reply,
            Frame::Hello {
                node_id: 1,
                num_pages: 3
            }
        );
        let reply = a.handle(Frame::MeetReply(a.current_payload())).unwrap();
        assert!(matches!(reply, Frame::Error { .. }));
        let reply = a
            .handle(Frame::StatsReply(StatsPayload::default()))
            .unwrap();
        assert!(matches!(reply, Frame::Error { .. }));
    }

    #[test]
    fn score_epoch_advances_on_every_absorb_path() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        let b = Arc::new(b);
        net.register(2, Arc::clone(&b) as Arc<dyn FrameHandler>);
        assert_eq!(a.score_epoch(), 0);
        assert_eq!(b.score_epoch(), 0);

        // Initiator absorb and responder serve each bump once.
        a.meet(2, &net, &RetryPolicy::default()).unwrap();
        assert_eq!(a.score_epoch(), 1);
        assert_eq!(b.score_epoch(), 1);

        // Repair is an absorb too.
        let payload = b.current_payload();
        a.apply_repair(&payload);
        assert_eq!(a.score_epoch(), 2);

        // Non-mutating traffic leaves the epoch alone.
        a.handle(Frame::Hello {
            node_id: 9,
            num_pages: 1,
        });
        a.handle(Frame::StatsRequest);
        assert_eq!(a.score_epoch(), 2);
    }

    #[test]
    fn bare_node_refuses_queries_and_rejects_query_replies() {
        let (a, _) = two_fragment_nodes();
        let reply = a
            .handle(Frame::QueryRequest(jxp_wire::QueryPayload {
                query_id: 1,
                k: 10,
                terms: vec![3],
            }))
            .unwrap();
        assert!(
            matches!(
                &reply,
                Frame::Error {
                    code: ErrorCode::Refused,
                    ..
                }
            ),
            "expected Refused, got {reply:?}"
        );
        let reply = a
            .handle(Frame::QueryReply(jxp_wire::QueryReplyPayload {
                node_id: 2,
                query_id: 1,
                epoch: 0,
                cached: false,
                hits: vec![],
            }))
            .unwrap();
        assert!(
            matches!(
                &reply,
                Frame::Error {
                    code: ErrorCode::BadRequest,
                    ..
                }
            ),
            "reply-only frame must be rejected, got {reply:?}"
        );
    }

    #[test]
    fn stats_endpoint_is_opt_in_and_reports_pre_request_counters() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        let b = Arc::new(b);
        net.register(2, Arc::clone(&b) as Arc<dyn FrameHandler>);

        // Disabled by default: the request is refused (and refusal is
        // fatal — no retries charged on the client side either).
        assert!(matches!(
            a.fetch_stats(2, &net, &RetryPolicy::default()),
            Err(TransportError::Rejected(_))
        ));

        b.enable_stats_endpoint();
        a.meet(2, &net, &RetryPolicy::default()).unwrap();
        let before = b.stats();
        let payload = a.fetch_stats(2, &net, &RetryPolicy::default()).unwrap();
        assert_eq!(payload.node_id, 2);
        assert_eq!(payload.meetings_served, before.meetings_served);
        // The reply was built before its own frame's bytes were counted,
        // so the payload matches the pre-request snapshot exactly.
        assert_eq!(payload.bytes_in, before.bytes_in);
        assert_eq!(payload.bytes_out, before.bytes_out);
    }

    #[test]
    fn stats_never_take_the_state_lock() {
        // Hold the node's state mutex on this thread, then read stats
        // and serve counter updates from another: if any stats path
        // touched the lock this would deadlock until the 5s timeout.
        let (a, _) = two_fragment_nodes();
        let a = Arc::new(a);
        let guard = a.lock();
        let worker = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                a.metrics().bytes_in.add(17);
                a.metrics().meetings_served.inc();
                a.stats()
            })
        };
        let mut waited = std::time::Duration::ZERO;
        while !worker.is_finished() && waited < std::time::Duration::from_secs(5) {
            std::thread::sleep(std::time::Duration::from_millis(5));
            waited += std::time::Duration::from_millis(5);
        }
        assert!(
            worker.is_finished(),
            "stats() blocked on the state mutex held by this thread"
        );
        drop(guard);
        let s = worker.join().unwrap();
        assert_eq!(s.bytes_in, 17);
        assert_eq!(s.meetings_served, 1);
    }

    #[test]
    fn registered_metrics_surface_in_registry_snapshot() {
        let registry = Registry::new();
        let ga = Subgraph::from_adjacency(vec![(PageId(0), vec![PageId(1)])]);
        let perms = MipsPermutations::generate(8, 3);
        let node = JxpNode::with_metrics(
            4,
            JxpPeer::new(ga, 2, JxpConfig::default()),
            &perms,
            NodeMetrics::registered(&registry, 4),
        );
        node.metrics().bytes_out.add(99);
        assert_eq!(node.stats().bytes_out, 99);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["jxp_node_bytes_out_total{node=\"4\"}"], 99);
    }
}
