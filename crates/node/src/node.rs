//! The networked peer runtime: a [`JxpNode`] owns a [`JxpPeer`] plus its
//! synopses and answers/initiates meetings over any [`Transport`].
//!
//! Protocol invariant (paper §4): both sides of a meeting compute their
//! outgoing payload **before** absorbing the other's. The responder
//! therefore builds its `MeetReply` from pre-absorption state, and the
//! initiator absorbs the reply only after the exchange returns.

use crate::transport::{
    request_with_retry, FrameHandler, NodeId, RetryPolicy, Transport, TransportError,
};
use jxp_core::payload::MeetingPayload;
use jxp_core::peer::JxpPeer;
use jxp_core::selection::{PeerSynopses, PreMeetingsConfig};
use jxp_synopses::mips::MipsPermutations;
use jxp_wire::{encoded_len, ErrorCode, Frame, SynopsisPayload};
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-node traffic and meeting counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Meetings this node initiated.
    pub meetings_attempted: u64,
    /// Initiated meetings that completed (reply absorbed).
    pub meetings_completed: u64,
    /// Initiated meetings abandoned after exhausting retries.
    pub meetings_failed: u64,
    /// Inbound meeting requests this node answered.
    pub meetings_served: u64,
    /// Retries spent across all initiated exchanges.
    pub retries: u64,
    /// Wire bytes received (requests in + replies in), measured.
    pub bytes_in: u64,
    /// Wire bytes sent (requests out + replies out), measured.
    pub bytes_out: u64,
}

/// Result of one successfully initiated meeting.
#[derive(Debug, Clone, Copy)]
pub struct MeetOutcome {
    /// Request frame bytes on the wire.
    pub bytes_sent: u64,
    /// Reply frame bytes on the wire.
    pub bytes_received: u64,
    /// Retries the exchange needed.
    pub retries: u32,
}

pub(crate) struct NodeState {
    pub(crate) peer: JxpPeer,
    pub(crate) synopses: PeerSynopses,
    pub(crate) stats: NodeStats,
}

/// A JXP peer bound to a node id, safe to share between the transport's
/// server side and a driver thread.
pub struct JxpNode {
    id: NodeId,
    state: Arc<Mutex<NodeState>>,
}

impl JxpNode {
    /// Wrap `peer`, computing its synopses with `perms`.
    pub fn new(id: NodeId, peer: JxpPeer, perms: &MipsPermutations) -> Self {
        let synopses = PeerSynopses::compute(peer.graph(), perms);
        JxpNode {
            id,
            state: Arc::new(Mutex::new(NodeState {
                peer,
                synopses,
                stats: NodeStats::default(),
            })),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> NodeStats {
        self.lock().stats
    }

    /// Copy of this node's own synopses.
    pub fn synopses(&self) -> PeerSynopses {
        self.lock().synopses.clone()
    }

    /// Run `f` against the wrapped peer (e.g. to read scores).
    pub fn with_peer<R>(&self, f: impl FnOnce(&JxpPeer) -> R) -> R {
        f(&self.lock().peer)
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, NodeState> {
        self.state.lock().unwrap()
    }

    /// Handshake: announce ourselves to `target`, returning its id and
    /// page count from the answering `Hello`.
    pub fn hello(
        &self,
        target: NodeId,
        transport: &dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<(NodeId, u64), TransportError> {
        let request = {
            let state = self.lock();
            Frame::Hello {
                node_id: self.id,
                num_pages: state.peer.num_pages() as u64,
            }
        };
        let outcome = request_with_retry(transport, target, &request, policy)?;
        let mut state = self.lock();
        state.stats.bytes_out += outcome.exchange.bytes_sent;
        state.stats.bytes_in += outcome.exchange.bytes_received;
        match outcome.exchange.reply {
            Frame::Hello { node_id, num_pages } => Ok((node_id, num_pages)),
            Frame::Error { detail, .. } => Err(TransportError::Rejected(detail)),
            other => Err(TransportError::Wire(jxp_wire::WireError::Malformed(
                unexpected_reply(&other),
            ))),
        }
    }

    /// Initiate a meeting with `target`: send our payload, absorb the
    /// reply. The node's own lock is **not** held across the transport
    /// call, so this node keeps answering inbound requests while its
    /// own exchange is in flight (and loopback cannot self-deadlock).
    pub fn meet(
        &self,
        target: NodeId,
        transport: &dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<MeetOutcome, TransportError> {
        let payload = {
            let mut state = self.lock();
            state.stats.meetings_attempted += 1;
            state.peer.payload()
        };
        let request = Frame::MeetRequest(payload);
        let outcome = match request_with_retry(transport, target, &request, policy) {
            Ok(done) => done,
            Err(e) => {
                let mut state = self.lock();
                state.stats.meetings_failed += 1;
                state.stats.retries += u64::from(policy.max_attempts.max(1) - 1);
                return Err(e);
            }
        };
        let remote = match outcome.exchange.reply {
            Frame::MeetReply(remote) => remote,
            Frame::Error { detail, .. } => {
                self.lock().stats.meetings_failed += 1;
                return Err(TransportError::Rejected(detail));
            }
            other => {
                self.lock().stats.meetings_failed += 1;
                return Err(TransportError::Wire(jxp_wire::WireError::Malformed(
                    unexpected_reply(&other),
                )));
            }
        };
        let mut state = self.lock();
        state.peer.absorb(&remote);
        state.stats.meetings_completed += 1;
        state.stats.retries += u64::from(outcome.retries);
        state.stats.bytes_out += outcome.exchange.bytes_sent;
        state.stats.bytes_in += outcome.exchange.bytes_received;
        Ok(MeetOutcome {
            bytes_sent: outcome.exchange.bytes_sent,
            bytes_received: outcome.exchange.bytes_received,
            retries: outcome.retries,
        })
    }

    /// Pre-meetings probe: swap synopses with `target` and return theirs.
    pub fn fetch_synopses(
        &self,
        target: NodeId,
        transport: &dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<PeerSynopses, TransportError> {
        let request = Frame::SynopsisExchange(SynopsisPayload {
            synopses: self.synopses(),
            sketch: None,
            bloom: None,
        });
        let outcome = request_with_retry(transport, target, &request, policy)?;
        let remote = match outcome.exchange.reply {
            Frame::SynopsisExchange(p) => p.synopses,
            Frame::Error { detail, .. } => return Err(TransportError::Rejected(detail)),
            other => {
                return Err(TransportError::Wire(jxp_wire::WireError::Malformed(
                    unexpected_reply(&other),
                )))
            }
        };
        let mut state = self.lock();
        state.stats.bytes_out += outcome.exchange.bytes_sent;
        state.stats.bytes_in += outcome.exchange.bytes_received;
        Ok(remote)
    }

    /// Score a candidate partner from its synopses: the estimated
    /// containment of the candidate's out-link targets in our local
    /// fragment (paper §6 — peers that link into us teach us the most).
    pub fn premeet_score(&self, remote: &PeerSynopses) -> f64 {
        remote.inlink_containment_into(&self.lock().synopses)
    }

    /// Pick the best-scoring candidate above the configured containment
    /// threshold, or `None` if nobody qualifies (caller falls back to a
    /// random partner, as the paper's pre-meetings loop does).
    pub fn select_by_synopses(
        &self,
        candidates: &[(NodeId, PeerSynopses)],
        config: &PreMeetingsConfig,
    ) -> Option<NodeId> {
        let state = self.lock();
        candidates
            .iter()
            .map(|(id, syn)| (*id, syn.inlink_containment_into(&state.synopses)))
            .filter(|(_, score)| *score >= config.containment_threshold)
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
    }

    /// The payload this node would send right now (for tests/inspection).
    pub fn current_payload(&self) -> MeetingPayload {
        self.lock().peer.payload()
    }
}

fn unexpected_reply(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "unexpected Hello reply",
        Frame::MeetRequest(_) => "unexpected MeetRequest reply",
        Frame::MeetReply(_) => "unexpected MeetReply reply",
        Frame::SynopsisExchange(_) => "unexpected SynopsisExchange reply",
        Frame::Ack { .. } => "unexpected Ack reply",
        Frame::Error { .. } => "unexpected Error reply",
    }
}

impl FrameHandler for JxpNode {
    fn handle(&self, frame: Frame) -> Option<Frame> {
        let inbound = encoded_len(&frame) as u64;
        let reply = match frame {
            Frame::Hello { .. } => {
                let state = self.lock();
                Frame::Hello {
                    node_id: self.id,
                    num_pages: state.peer.num_pages() as u64,
                }
            }
            Frame::MeetRequest(payload) => {
                let mut state = self.lock();
                // Outgoing payload first — pre-absorption state.
                let own = state.peer.payload();
                match state.peer.try_absorb(&payload) {
                    Ok(()) => {
                        state.stats.meetings_served += 1;
                        Frame::MeetReply(own)
                    }
                    Err(why) => Frame::Error {
                        code: ErrorCode::BadRequest,
                        detail: why,
                    },
                }
            }
            Frame::SynopsisExchange(_) => {
                let state = self.lock();
                Frame::SynopsisExchange(SynopsisPayload {
                    synopses: state.synopses.clone(),
                    sketch: None,
                    bloom: None,
                })
            }
            Frame::Ack { of } => Frame::Ack { of },
            Frame::MeetReply(_) | Frame::Error { .. } => Frame::Error {
                code: ErrorCode::BadRequest,
                detail: "frame type is reply-only".to_string(),
            },
        };
        let mut state = self.lock();
        state.stats.bytes_in += inbound;
        state.stats.bytes_out += encoded_len(&reply) as u64;
        Some(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackNetwork;
    use jxp_core::config::JxpConfig;
    use jxp_webgraph::{PageId, Subgraph};

    fn two_fragment_nodes() -> (JxpNode, JxpNode) {
        // A tiny 6-page world split across two peers with cross links.
        let ga = Subgraph::from_adjacency(vec![
            (PageId(0), vec![PageId(1)]),
            (PageId(1), vec![PageId(2)]),
            (PageId(2), vec![PageId(3)]),
        ]);
        let gb = Subgraph::from_adjacency(vec![
            (PageId(3), vec![PageId(4)]),
            (PageId(4), vec![PageId(5)]),
            (PageId(5), vec![PageId(0)]),
        ]);
        let perms = MipsPermutations::generate(16, 7);
        let a = JxpNode::new(1, JxpPeer::new(ga, 6, JxpConfig::default()), &perms);
        let b = JxpNode::new(2, JxpPeer::new(gb, 6, JxpConfig::default()), &perms);
        (a, b)
    }

    #[test]
    fn meeting_over_loopback_updates_both_sides() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        let b = Arc::new(b);
        net.register(2, Arc::clone(&b) as Arc<dyn FrameHandler>);

        let world_a_before = a.with_peer(|p| p.world_score());
        let outcome = a.meet(2, &net, &RetryPolicy::default()).unwrap();

        let sa = a.stats();
        assert_eq!(sa.meetings_attempted, 1);
        assert_eq!(sa.meetings_completed, 1);
        assert_eq!(sa.meetings_failed, 0);
        assert_eq!(sa.bytes_out, outcome.bytes_sent);
        assert_eq!(sa.bytes_in, outcome.bytes_received);

        let sb = b.stats();
        assert_eq!(sb.meetings_served, 1);
        // Responder measured the same frames from the other side.
        assert_eq!(sb.bytes_in, outcome.bytes_sent);
        assert_eq!(sb.bytes_out, outcome.bytes_received);

        // Absorbing B's payload teaches A about external pages, which
        // changes its world-node composition.
        let world_a_after = a.with_peer(|p| p.world_score());
        assert!(
            (world_a_after - world_a_before).abs() > 0.0,
            "meeting had no effect on A's world node"
        );
    }

    #[test]
    fn payload_bytes_match_analytic_wire_size() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        net.register(2, Arc::new(b));
        let expected_request = jxp_wire::HEADER_LEN as u64 + a.current_payload().wire_size() as u64;
        let outcome = a.meet(2, &net, &RetryPolicy::default()).unwrap();
        assert_eq!(outcome.bytes_sent, expected_request);
    }

    #[test]
    fn failed_meeting_counts_and_returns_error() {
        let (a, _) = two_fragment_nodes();
        let net = LoopbackNetwork::new(); // nobody registered
        let policy = RetryPolicy {
            max_attempts: 2,
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(1),
        };
        assert!(a.meet(9, &net, &policy).is_err());
        let s = a.stats();
        assert_eq!(s.meetings_attempted, 1);
        assert_eq!(s.meetings_failed, 1);
        assert_eq!(s.meetings_completed, 0);
        assert_eq!(s.retries, 1);
        assert_eq!(s.bytes_out, 0);
    }

    #[test]
    fn synopsis_exchange_and_premeet_scoring() {
        let (a, b) = two_fragment_nodes();
        let net = LoopbackNetwork::new();
        let b_syn = b.synopses();
        net.register(2, Arc::new(b));
        let fetched = a.fetch_synopses(2, &net, &RetryPolicy::default()).unwrap();
        assert_eq!(fetched, b_syn);
        // B links into A (5 -> 0), so B must outscore a candidate with
        // no links into A at all.
        let score = a.premeet_score(&fetched);
        assert!(score > 0.0, "expected positive containment, got {score}");
    }

    #[test]
    fn hello_and_reply_only_frames() {
        let (a, _) = two_fragment_nodes();
        let reply = a
            .handle(Frame::Hello {
                node_id: 99,
                num_pages: 0,
            })
            .unwrap();
        assert_eq!(
            reply,
            Frame::Hello {
                node_id: 1,
                num_pages: 3
            }
        );
        let reply = a.handle(Frame::MeetReply(a.current_payload())).unwrap();
        assert!(matches!(reply, Frame::Error { .. }));
    }
}
