//! jxp-node: networked peer runtime for JXP meetings.
//!
//! Where `jxp-p2pnet` simulates a peer network by calling peers' methods
//! directly, this crate runs the meeting protocol **over a wire**: every
//! request and reply is a [`jxp_wire`] frame, moved by a pluggable
//! [`transport::Transport`] — a deterministic in-memory loopback or
//! localhost TCP. A [`node::JxpNode`] owns a `JxpPeer`, answers inbound
//! frames (meetings, synopsis probes, hellos), and initiates exchanges
//! under configurable timeout + bounded exponential-backoff retry, with
//! per-node counters for meetings, retries, and measured wire bytes.
//! [`cluster::run_cluster`] drives N nodes through M meetings and
//! reports convergence and traffic; it backs the `jxp cluster` command.

#![deny(missing_docs)]

pub mod cluster;
pub mod loopback;
pub mod node;
pub mod persist;
pub mod reactor;
pub mod tcp;
pub mod transport;

pub use cluster::{
    run_cluster, run_cluster_with, ClusterConfig, ClusterCtx, ClusterHooks, ClusterReport,
    StallPlan, TransportKind,
};
pub use loopback::{Fault, LoopbackNetwork};
pub use node::{JxpNode, MeetOutcome, NodeMetrics, NodeStats};
pub use persist::{NodePersist, PersistConfig, SharedStore};
pub use reactor::{reactor_premeet_sweep, run_reactor_round, HandlerService, ReactorTransport};
pub use tcp::{TcpConfig, TcpServer, TcpTransport};
pub use transport::{
    request_with_retry, Exchange, FrameHandler, NodeId, RetryError, RetryPolicy, StallInjector,
    Transport, TransportError,
};
