//! Transport abstraction: how one node's frames reach another node.
//!
//! A transport is *synchronous request/response*: the JXP meeting protocol
//! is strictly client-driven (the initiator sends a frame, the responder
//! answers with exactly one frame), so the whole exchange maps onto one
//! `request` call. Two implementations exist: a deterministic in-memory
//! loopback ([`crate::loopback`]) and localhost TCP ([`crate::tcp`]).
//! Both move **real encoded frames** through [`jxp_wire`], so the byte
//! counts they report are measured codec output, not estimates.

use jxp_wire::{Frame, WireError};
use std::time::Duration;

/// Stable identifier of a node within a cluster.
pub type NodeId = u64;

/// A completed request/response exchange, with the measured frame bytes
/// in each direction (exactly [`jxp_wire::encoded_len`] of each frame).
#[derive(Debug, Clone)]
pub struct Exchange {
    /// The responder's reply frame.
    pub reply: Frame,
    /// Bytes of the request frame as sent.
    pub bytes_sent: u64,
    /// Bytes of the reply frame as received.
    pub bytes_received: u64,
}

/// Why an exchange failed.
#[derive(Debug)]
pub enum TransportError {
    /// No route / connection to the peer (includes connections dropped
    /// before a reply arrived).
    Unreachable(String),
    /// The peer accepted the request but no reply arrived in time.
    Timeout,
    /// The bytes that arrived do not decode (version mismatch, truncated
    /// or corrupt frame).
    Wire(WireError),
    /// The peer replied with a protocol [`Frame::Error`]. Retrying will
    /// not help, so the retry loop stops on this immediately.
    Rejected(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable(why) => write!(f, "peer unreachable: {why}"),
            TransportError::Timeout => write!(f, "timed out waiting for reply"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
            TransportError::Rejected(why) => write!(f, "peer rejected request: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// Send one frame to `peer` and wait for the single reply frame.
pub trait Transport: Send + Sync {
    /// Perform one request/response exchange.
    fn request(&self, peer: NodeId, frame: &Frame) -> Result<Exchange, TransportError>;
}

/// Server side of a transport: turns one inbound frame into one reply.
///
/// Returning `None` models a stalled responder — the transport surfaces
/// it to the initiator as a [`TransportError::Timeout`] (loopback) or a
/// dropped connection (TCP), exercising the retry path.
pub trait FrameHandler: Send + Sync {
    /// Handle one decoded inbound frame.
    fn handle(&self, frame: Frame) -> Option<Frame>;
}

/// Wraps a [`FrameHandler`] and swallows the next N inbound requests
/// (the inner handler never runs and no reply is produced), simulating
/// a stalled peer on any transport. Used by the cluster driver's fault
/// injection and by tests.
pub struct StallInjector {
    inner: std::sync::Arc<dyn FrameHandler>,
    stall_remaining: std::sync::atomic::AtomicU32,
}

impl StallInjector {
    /// Wrap `inner` with no stalls pending.
    pub fn new(inner: std::sync::Arc<dyn FrameHandler>) -> Self {
        StallInjector {
            inner,
            stall_remaining: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Swallow the next `n` requests.
    pub fn stall_next(&self, n: u32) {
        self.stall_remaining
            .fetch_add(n, std::sync::atomic::Ordering::SeqCst);
    }
}

impl FrameHandler for StallInjector {
    fn handle(&self, frame: Frame) -> Option<Frame> {
        use std::sync::atomic::Ordering;
        let mut left = self.stall_remaining.load(Ordering::SeqCst);
        while left > 0 {
            match self.stall_remaining.compare_exchange(
                left,
                left - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return None,
                Err(now) => left = now,
            }
        }
        self.inner.handle(frame)
    }
}

/// Bounded exponential backoff for failed exchanges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff cap; doubling stops here.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): `base · 2^retry`,
    /// capped at `max_delay`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(retry.min(16)));
        exp.min(self.max_delay)
    }
}

/// Outcome of [`request_with_retry`].
#[derive(Debug)]
pub struct RetriedExchange {
    /// The successful exchange.
    pub exchange: Exchange,
    /// Retries that were needed (0 = first attempt succeeded).
    pub retries: u32,
}

/// Failure of [`request_with_retry`], carrying how many retries were
/// actually spent before giving up — a first-attempt fatal rejection
/// reports 0, a full exhaustion reports `max_attempts - 1` — so callers
/// can account retries exactly instead of assuming the worst case.
#[derive(Debug)]
pub struct RetryError {
    /// The error from the last attempt.
    pub error: TransportError,
    /// Retries spent (attempts made minus the first try).
    pub retries: u32,
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (after {} retries)", self.error, self.retries)
    }
}

impl std::error::Error for RetryError {}

impl From<RetryError> for TransportError {
    fn from(e: RetryError) -> Self {
        e.error
    }
}

/// Run one exchange under a [`RetryPolicy`], sleeping the backoff between
/// attempts. On failure the error reports the retries actually spent.
pub fn request_with_retry(
    transport: &dyn Transport,
    peer: NodeId,
    frame: &Frame,
    policy: &RetryPolicy,
) -> Result<RetriedExchange, RetryError> {
    let attempts = policy.max_attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        match transport.request(peer, frame) {
            Ok(exchange) => {
                return Ok(RetriedExchange {
                    exchange,
                    retries: attempt,
                })
            }
            Err(e) => {
                let fatal = matches!(e, TransportError::Rejected(_));
                last = Some(RetryError {
                    error: e,
                    retries: attempt,
                });
                if fatal {
                    break;
                }
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct FlakyTransport {
        fail_first: u32,
        calls: AtomicU32,
    }

    impl Transport for FlakyTransport {
        fn request(&self, _peer: NodeId, frame: &Frame) -> Result<Exchange, TransportError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                return Err(TransportError::Timeout);
            }
            Ok(Exchange {
                reply: frame.clone(),
                bytes_sent: jxp_wire::encoded_len(frame) as u64,
                bytes_received: jxp_wire::encoded_len(frame) as u64,
            })
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(60),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(60));
        assert_eq!(p.backoff(10), Duration::from_millis(60));
    }

    #[test]
    fn retry_survives_transient_failures() {
        let t = FlakyTransport {
            fail_first: 2,
            calls: AtomicU32::new(0),
        };
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        };
        let frame = Frame::Ack { of: 1 };
        let out = request_with_retry(&t, 0, &frame, &policy).unwrap();
        assert_eq!(out.retries, 2);
        assert_eq!(
            out.exchange.bytes_sent,
            jxp_wire::encoded_len(&frame) as u64
        );
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let t = FlakyTransport {
            fail_first: 10,
            calls: AtomicU32::new(0),
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
        };
        let err = request_with_retry(&t, 0, &Frame::Ack { of: 1 }, &policy).unwrap_err();
        assert!(matches!(err.error, TransportError::Timeout));
        assert_eq!(err.retries, 2, "three attempts = two retries");
        assert_eq!(t.calls.load(Ordering::SeqCst), 3);
    }

    struct Rejecting;

    impl Transport for Rejecting {
        fn request(&self, _peer: NodeId, _frame: &Frame) -> Result<Exchange, TransportError> {
            Err(TransportError::Rejected("go away".into()))
        }
    }

    #[test]
    fn fatal_rejection_on_first_attempt_reports_zero_retries() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
        };
        let err = request_with_retry(&Rejecting, 0, &Frame::Ack { of: 1 }, &policy).unwrap_err();
        assert!(matches!(err.error, TransportError::Rejected(_)));
        assert_eq!(
            err.retries, 0,
            "fatal first attempt must not charge retries"
        );
    }
}
