//! Reactor-backed transport: hundreds of in-flight meetings per node
//! over one multiplexed connection per peer, driven by a single thread.
//!
//! [`ReactorTransport`] is the [`Transport`] facade (blocking
//! request/reply, drop-in for loopback and threaded TCP). The batch
//! entry points are where the reactor pays off:
//!
//! - [`run_reactor_round`] submits a whole node-disjoint meeting round
//!   and harvests it in schedule order, using the split
//!   [`JxpNode::meet_begin`]/[`JxpNode::meet_finish`] halves so the
//!   counter trace matches the blocking path exactly. Pair-disjointness
//!   makes the submit-all-then-harvest reordering invisible: no node in
//!   a round touches another pair's state, so every payload equals what
//!   serial execution would have built.
//! - [`reactor_premeet_sweep`] runs the all-pairs synopsis exchange
//!   under a sliding submission window, holding `window` probes in
//!   flight. Synopses are immutable before meetings start, so results
//!   are identical to the serial sweep no matter the concurrency — and
//!   the in-flight gauge provably reaches `min(window, pairs)`.

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use jxp_core::selection::PeerSynopses;
use jxp_reactor::{FrameService, ReactorError, ReactorHandle, Ticket};
use jxp_telemetry::lock_unpoisoned;
use jxp_wire::Frame;

use crate::node::{JxpNode, MeetOutcome};
use crate::transport::{
    Exchange, FrameHandler, NodeId, RetriedExchange, RetryError, RetryPolicy, Transport,
    TransportError,
};

/// Adapt a node-side [`FrameHandler`] (a `JxpNode` or an injector
/// wrapping one) to the reactor's serve interface. `handle` runs inline
/// on the loop thread, which is what preserves journal-before-reply:
/// the Serve WAL record is written inside `handle` before the reply
/// frame is queued on the socket.
pub struct HandlerService(pub Arc<dyn FrameHandler>);

impl FrameService for HandlerService {
    fn serve(&self, frame: Frame) -> Option<Frame> {
        self.0.handle(frame)
    }
}

fn map_err(e: ReactorError) -> TransportError {
    match e {
        ReactorError::Unreachable(detail) => TransportError::Unreachable(detail),
        ReactorError::Timeout => TransportError::Timeout,
        ReactorError::Wire(w) => TransportError::Wire(w),
        ReactorError::Closed => TransportError::Unreachable("reactor shut down".to_string()),
    }
}

/// Client side of the reactor: routes node ids to listener addresses,
/// multiplexing every request for a peer over one connection.
#[derive(Clone)]
pub struct ReactorTransport {
    inner: Arc<ReactorTransportInner>,
}

struct ReactorTransportInner {
    handle: ReactorHandle,
    routes: Mutex<HashMap<NodeId, SocketAddr>>,
}

impl ReactorTransport {
    /// Wrap a running reactor's handle.
    pub fn new(handle: ReactorHandle) -> ReactorTransport {
        ReactorTransport {
            inner: Arc::new(ReactorTransportInner {
                handle,
                routes: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Map `id` to the address of its reactor listener.
    pub fn add_route(&self, id: NodeId, addr: SocketAddr) {
        lock_unpoisoned(&self.inner.routes).insert(id, addr);
    }

    fn route(&self, peer: NodeId) -> Result<SocketAddr, TransportError> {
        lock_unpoisoned(&self.inner.routes)
            .get(&peer)
            .copied()
            .ok_or_else(|| TransportError::Unreachable(format!("no route to node {peer}")))
    }

    /// Queue a request without blocking; redeem the ticket later. This
    /// is what lets one driver thread hold hundreds of meetings open.
    pub fn submit(&self, peer: NodeId, frame: &Frame) -> Result<Ticket, TransportError> {
        let addr = self.route(peer)?;
        Ok(self.inner.handle.submit(addr, frame))
    }
}

impl Transport for ReactorTransport {
    fn request(&self, peer: NodeId, frame: &Frame) -> Result<Exchange, TransportError> {
        let addr = self.route(peer)?;
        let (reply, bytes_sent, bytes_received) =
            self.inner.handle.request(addr, frame).map_err(map_err)?;
        Ok(Exchange {
            reply,
            bytes_sent,
            bytes_received,
        })
    }
}

/// [`crate::transport::request_with_retry`] over a pre-submitted
/// ticket: identical attempt counting, backoff schedule, and error
/// selection, with each retry resubmitted through the reactor.
fn wait_with_retry(
    transport: &ReactorTransport,
    peer: NodeId,
    frame: &Frame,
    policy: &RetryPolicy,
    first: Ticket,
) -> Result<RetriedExchange, RetryError> {
    let attempts = policy.max_attempts.max(1);
    let mut ticket = Some(first);
    let mut last = None;
    for attempt in 0..attempts {
        let pending = match ticket.take() {
            Some(t) => t,
            None => {
                std::thread::sleep(policy.backoff(attempt - 1));
                match transport.submit(peer, frame) {
                    Ok(t) => t,
                    Err(error) => {
                        return Err(RetryError {
                            error,
                            retries: attempt,
                        })
                    }
                }
            }
        };
        match pending.wait_full() {
            Ok((reply, bytes_sent, bytes_received)) => {
                return Ok(RetriedExchange {
                    exchange: Exchange {
                        reply,
                        bytes_sent,
                        bytes_received,
                    },
                    retries: attempt,
                })
            }
            Err(e) => {
                last = Some(RetryError {
                    error: map_err(e),
                    retries: attempt,
                });
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Execute one node-disjoint meeting round through the reactor: submit
/// every request up front, then harvest in schedule order.
///
/// Each `(initiator_index, target, slot)` triple mirrors the pool
/// path's task shape; `slot` receives `Some(outcome)` exactly when
/// `nodes[initiator].meet(..)` would have returned `Ok`.
pub fn run_reactor_round(
    transport: &ReactorTransport,
    nodes: &[Arc<JxpNode>],
    retry: &RetryPolicy,
    round: Vec<(usize, NodeId, &mut Option<MeetOutcome>)>,
) {
    let mut inflight = Vec::with_capacity(round.len());
    for (initiator, target, slot) in round {
        // Disjoint pairs: no other meeting in this round can touch this
        // initiator, so the payload equals what serial execution builds.
        let request = nodes[initiator].meet_begin();
        let ticket = transport.submit(target, &request);
        inflight.push((initiator, target, slot, request, ticket));
    }
    for (initiator, target, slot, request, ticket) in inflight {
        let node = &nodes[initiator];
        *slot = match ticket {
            Ok(t) => match wait_with_retry(transport, target, &request, retry, t) {
                Ok(done) => node.meet_finish(done.exchange, done.retries).ok(),
                Err(failed) => {
                    node.meet_abort(failed.retries);
                    None
                }
            },
            Err(_unroutable) => {
                node.meet_abort(0);
                None
            }
        };
    }
}

/// The all-pairs pre-meetings synopsis sweep, multiplexed: submit
/// probes in `(i, j)` order under a sliding window of `window` in
/// flight, harvest in the same order. Returns per-node candidate lists
/// shaped exactly like the serial sweep's.
///
/// Determinism: synopses are computed at join and do not change until
/// the first meeting, so every probe's request and reply are
/// independent of scheduling; collecting in `(i, j)` order makes the
/// output byte-identical to the serial path.
pub fn reactor_premeet_sweep(
    transport: &ReactorTransport,
    nodes: &[Arc<JxpNode>],
    retry: &RetryPolicy,
    window: usize,
) -> Vec<Vec<(NodeId, PeerSynopses)>> {
    let n = nodes.len();
    let mut pairs = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
    for (i, node) in nodes.iter().enumerate() {
        for other in nodes.iter() {
            if other.id() != node.id() {
                pairs.push((i, other.id()));
            }
        }
    }

    let window = window.max(1);
    let mut results: Vec<Vec<(NodeId, PeerSynopses)>> = (0..n).map(|_| Vec::new()).collect();
    let mut queue: VecDeque<(usize, NodeId, Frame, Result<Ticket, TransportError>)> =
        VecDeque::new();
    let mut next = 0usize;

    let submit_pair = |pair: (usize, NodeId)| {
        let (i, j) = pair;
        let request = nodes[i].synopses_request();
        let ticket = transport.submit(j, &request);
        (i, j, request, ticket)
    };

    while next < pairs.len() && queue.len() < window {
        queue.push_back(submit_pair(pairs[next]));
        next += 1;
    }
    while let Some((i, j, request, ticket)) = queue.pop_front() {
        // Refill before waiting so the window stays full while the
        // front probe resolves.
        if next < pairs.len() {
            queue.push_back(submit_pair(pairs[next]));
            next += 1;
        }
        let outcome = match ticket {
            Ok(t) => wait_with_retry(transport, j, &request, retry, t)
                .map_err(|failed| failed.error)
                .and_then(|done| nodes[i].synopses_accept(done.exchange)),
            Err(e) => Err(e),
        };
        if let Ok(synopses) = outcome {
            results[i].push((j, synopses));
        }
    }
    results
}
