//! Per-node durable persistence: WAL appends after every applied
//! meeting delta, periodic checkpoints, and the resume bookkeeping the
//! cluster driver uses to continue a killed run.
//!
//! A [`NodePersist`] lives *inside* the node's state mutex, so the
//! event sequence it assigns is exactly the order in which deltas were
//! applied to the peer — the property WAL replay relies on. The
//! responder side journals before its reply leaves the lock, which
//! gives the crash-consistency invariant (DESIGN.md §12): for any torn
//! meeting, the responder's record exists and the initiator's does not,
//! never the other way around.
//!
//! Store failures are counted (`jxp_store_errors_total`), not
//! propagated: losing durability must not take down the meeting loop.

use std::sync::Arc;

use jxp_core::{snapshot, JxpPeer, MeetingPayload};
use jxp_store::{StateStore, StoreMetrics, WalKind, WalRecord};

/// Shared handle to any [`StateStore`] backend.
pub type SharedStore = Arc<dyn StateStore + Send + Sync>;

/// Knobs for when a node checkpoints.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Checkpoint after this many applied events (0 = only on demand).
    pub checkpoint_every: u64,
    /// Also checkpoint early once the WAL outgrows this many bytes,
    /// which is what bounds WAL growth between interval checkpoints.
    pub wal_compact_bytes: u64,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            checkpoint_every: 8,
            wal_compact_bytes: 1 << 20,
        }
    }
}

/// Durable journal for one node.
pub struct NodePersist {
    store: SharedStore,
    key: String,
    config: PersistConfig,
    metrics: StoreMetrics,
    seq: u64,
    since_checkpoint: u64,
}

impl NodePersist {
    /// Journal into `store` under `key`, continuing from `start_seq`
    /// (0 for a fresh node, the recovered sequence after a resume).
    pub fn new(
        store: SharedStore,
        key: impl Into<String>,
        config: PersistConfig,
        metrics: StoreMetrics,
        start_seq: u64,
    ) -> Self {
        NodePersist {
            store,
            key: key.into(),
            config,
            metrics,
            seq: start_seq,
            since_checkpoint: 0,
        }
    }

    /// Events durably journaled so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The store metrics this journal reports into.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Journal an initiator-side absorb (the peer just applied
    /// `inbound` from a meeting it started).
    pub fn record_absorb(&mut self, peer: &JxpPeer, inbound: &MeetingPayload) {
        self.record(peer, WalKind::Absorb, inbound, None);
    }

    /// Journal a responder-side serve: the peer absorbed `inbound` and
    /// sent `outbound` back. The outbound payload rides along so a
    /// crashed initiator can repair the torn meeting from this record.
    pub fn record_serve(
        &mut self,
        peer: &JxpPeer,
        inbound: &MeetingPayload,
        outbound: &MeetingPayload,
    ) {
        self.record(peer, WalKind::Serve, inbound, Some(outbound));
    }

    fn record(
        &mut self,
        peer: &JxpPeer,
        kind: WalKind,
        inbound: &MeetingPayload,
        outbound: Option<&MeetingPayload>,
    ) {
        self.seq += 1;
        let record = WalRecord {
            seq: self.seq,
            kind,
            inbound: inbound.clone(),
            outbound: outbound.cloned(),
        };
        match self.store.append(&self.key, &record) {
            Ok(wal_bytes) => {
                self.since_checkpoint += 1;
                let interval_due = self.config.checkpoint_every > 0
                    && self.since_checkpoint >= self.config.checkpoint_every;
                let wal_oversized =
                    self.config.wal_compact_bytes > 0 && wal_bytes > self.config.wal_compact_bytes;
                if interval_due || wal_oversized {
                    self.checkpoint(peer);
                }
            }
            Err(_) => self.metrics.errors_total.inc(),
        }
    }

    /// Install a checkpoint of `peer` at the current sequence (also
    /// compacts the WAL). Called automatically per [`PersistConfig`]
    /// and explicitly at clean shutdown.
    pub fn checkpoint(&mut self, peer: &JxpPeer) {
        let snap = snapshot::save(peer);
        match self.store.checkpoint(&self.key, self.seq, &snap) {
            Ok(()) => self.since_checkpoint = 0,
            Err(_) => self.metrics.errors_total.inc(),
        }
    }
}
