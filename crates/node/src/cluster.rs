//! Cluster driver: spawn N nodes over loopback or localhost TCP, run M
//! meetings through the real wire codec, and report convergence and
//! traffic. Backs the `jxp cluster` CLI command and the integration
//! tests; fault injection ([`StallPlan`]) proves the timeout + retry
//! path keeps a run alive when a peer stalls mid-experiment.

use crate::loopback::LoopbackNetwork;
use crate::node::{JxpNode, NodeMetrics, NodeStats};
use crate::tcp::{TcpConfig, TcpServer, TcpTransport};
use crate::transport::{FrameHandler, NodeId, RetryPolicy, StallInjector, Transport};
use jxp_core::config::JxpConfig;
use jxp_core::evaluate::{centralized_ranking, total_ranking};
use jxp_core::selection::{PeerSynopses, PreMeetingsConfig};
use jxp_pagerank::metrics::footrule_distance;
use jxp_synopses::mips::MipsPermutations;
use jxp_telemetry::{Event, TelemetryHub, TelemetrySnapshot};
use jxp_webgraph::Subgraph;
use jxp_wire::StatsPayload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which transport carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Deterministic in-memory codec loopback.
    Loopback,
    /// Localhost TCP with one server per node.
    Tcp,
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "loopback" => Ok(TransportKind::Loopback),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!(
                "unknown transport '{other}' (expected loopback|tcp)"
            )),
        }
    }
}

/// Injected fault: just before meeting number `at_meeting` starts, node
/// `node_index` begins swallowing the next `count` inbound requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallPlan {
    /// Index (0-based) of the node that stalls.
    pub node_index: usize,
    /// Meeting number at which the stall is armed.
    pub at_meeting: usize,
    /// How many consecutive requests it swallows.
    pub count: u32,
}

/// Everything configurable about a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total meetings to initiate (round-robin initiators).
    pub meetings: usize,
    /// Loopback or TCP.
    pub transport: TransportKind,
    /// Seed for partner selection (and synopsis permutations).
    pub seed: u64,
    /// Select partners by exchanged synopses instead of uniformly.
    pub premeetings: bool,
    /// Retry policy for every exchange.
    pub retry: RetryPolicy,
    /// Optional stall injection.
    pub stall: Option<StallPlan>,
    /// Min-wise permutations per synopsis vector.
    pub mips_dims: usize,
    /// Worker threads executing each meeting round (`0` = the machine's
    /// available parallelism, `1` = serial). The schedule is always drawn
    /// serially and partitioned into rounds of **node-disjoint** pairs:
    /// two in-flight meetings sharing a node would interleave their lock
    /// acquisitions nondeterministically (a node answers inbound requests
    /// while its own exchange is in flight), so disjointness is what
    /// makes the results bit-identical for every value of this knob. A
    /// [`StallPlan`] forces serial round execution so the injector
    /// swallows exactly the scheduled requests.
    pub threads: usize,
    /// Collect telemetry: per-node registry counters plus a structured
    /// event stream, snapshotted into [`ClusterReport::telemetry`].
    /// Observation-only — results are bit-identical either way.
    pub telemetry: bool,
    /// Enable every node's wire stats endpoint and sweep it after the
    /// run into [`ClusterReport::wire_stats`].
    pub stats_endpoint: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            meetings: 100,
            transport: TransportKind::Loopback,
            seed: 42,
            premeetings: false,
            retry: RetryPolicy::default(),
            stall: None,
            mips_dims: 64,
            threads: 1,
            telemetry: false,
            stats_endpoint: false,
        }
    }
}

/// Aggregated result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Nodes in the cluster.
    pub num_nodes: usize,
    /// Meetings initiated.
    pub meetings_attempted: u64,
    /// Meetings whose reply was absorbed.
    pub meetings_completed: u64,
    /// Meetings abandoned after retries.
    pub meetings_failed: u64,
    /// Retries spent across all exchanges.
    pub retries: u64,
    /// Total wire bytes, counted once at each frame's sender.
    pub bytes_total: u64,
    /// Spearman's footrule vs. centralized PageRank (if truth given).
    pub footrule: Option<f64>,
    /// Per-node counter snapshots.
    pub per_node: Vec<NodeStats>,
    /// Telemetry snapshot (when [`ClusterConfig::telemetry`] was set),
    /// taken at the same instant as `per_node` — counter totals match
    /// the `NodeStats` sums exactly.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Counter snapshots fetched over the wire via `StatsRequest` (when
    /// [`ClusterConfig::stats_endpoint`] was set), one per node. Fetched
    /// after `per_node`, so the first fetch mirrors it exactly.
    pub wire_stats: Option<Vec<StatsPayload>>,
}

/// Run a full cluster experiment over `fragments` (one per node).
///
/// `truth` is the centralized PageRank score vector of the union graph;
/// when given, the report carries the footrule distance between it and
/// the merged distributed ranking (top-100, as in the paper's plots).
///
/// # Panics
/// Panics if `fragments` has fewer than two entries, or if a TCP server
/// fails to bind.
pub fn run_cluster(
    fragments: Vec<Subgraph>,
    n_total: u64,
    jxp: JxpConfig,
    config: &ClusterConfig,
    truth: Option<&[f64]>,
) -> ClusterReport {
    assert!(fragments.len() >= 2, "a cluster needs at least two nodes");
    let num_nodes = fragments.len();
    let perms = MipsPermutations::generate(config.mips_dims, config.seed ^ 0x5a5a);

    let hub = config.telemetry.then(TelemetryHub::shared);
    let nodes: Vec<Arc<JxpNode>> = fragments
        .into_iter()
        .enumerate()
        .map(|(i, frag)| {
            let metrics = match &hub {
                Some(hub) => NodeMetrics::registered(hub.registry(), i as NodeId),
                None => NodeMetrics::detached(),
            };
            Arc::new(JxpNode::with_metrics(
                i as NodeId,
                jxp_core::peer::JxpPeer::new(frag, n_total, jxp.clone()),
                &perms,
                metrics,
            ))
        })
        .collect();
    if config.stats_endpoint {
        for node in &nodes {
            node.enable_stats_endpoint();
        }
    }
    let injectors: Vec<Arc<StallInjector>> = nodes
        .iter()
        .map(|n| Arc::new(StallInjector::new(Arc::clone(n) as Arc<dyn FrameHandler>)))
        .collect();

    // Bring up the chosen transport; TCP servers stay alive in `_servers`.
    let mut _servers: Vec<TcpServer> = Vec::new();
    let transport: Box<dyn Transport> = match config.transport {
        TransportKind::Loopback => {
            let net = LoopbackNetwork::new();
            for (i, inj) in injectors.iter().enumerate() {
                net.register(i as NodeId, Arc::clone(inj) as Arc<dyn FrameHandler>);
            }
            Box::new(net)
        }
        TransportKind::Tcp => {
            let tcp = TcpTransport::new(TcpConfig::default());
            for (i, inj) in injectors.iter().enumerate() {
                let server = TcpServer::spawn(Arc::clone(inj) as Arc<dyn FrameHandler>)
                    .expect("bind localhost TCP server");
                tcp.add_route(i as NodeId, server.addr());
                _servers.push(server);
            }
            Box::new(tcp)
        }
    };

    // Join handshake: each node hellos its ring successor over the wire.
    for (i, node) in nodes.iter().enumerate() {
        let next = ((i + 1) % num_nodes) as NodeId;
        let _ = node.hello(next, transport.as_ref(), &config.retry);
    }

    // Pre-meetings: one synopsis sweep per node, over the wire, so the
    // probe traffic is real and counted.
    let premeet_cfg = PreMeetingsConfig::default();
    let remote_synopses: Vec<Vec<(NodeId, PeerSynopses)>> = if config.premeetings {
        nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                (0..num_nodes)
                    .filter(|&j| j != i)
                    .filter_map(|j| {
                        node.fetch_synopses(j as NodeId, transport.as_ref(), &config.retry)
                            .ok()
                            .map(|syn| (j as NodeId, syn))
                    })
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    // Draw the whole schedule serially (round-robin initiators, seeded
    // partner choice), partitioned into rounds of node-disjoint pairs; a
    // drawn pair that conflicts with its round carries over to open the
    // next one, so the executed sequence is exactly the drawn sequence.
    // Disjoint meetings commute — each touches only its two nodes — so
    // executing a round concurrently is bit-identical to replaying it
    // serially in schedule order, for every thread count.
    let threads = jxp_pagerank::par::resolve_threads(config.threads);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rounds: Vec<Vec<(usize, usize, NodeId)>> = Vec::new();
    let mut round: Vec<(usize, usize, NodeId)> = Vec::new();
    let mut busy = vec![false; num_nodes];
    for m in 0..config.meetings {
        let initiator = m % num_nodes;
        let target = pick_target(
            initiator,
            num_nodes,
            m,
            config.premeetings.then(|| &remote_synopses[initiator]),
            &nodes[initiator],
            &premeet_cfg,
            &mut rng,
        );
        if busy[initiator] || busy[target as usize] {
            rounds.push(std::mem::take(&mut round));
            busy.fill(false);
        }
        busy[initiator] = true;
        busy[target as usize] = true;
        round.push((m, initiator, target));
    }
    if !round.is_empty() {
        rounds.push(round);
    }

    // Telemetry handles are registered once, up front (cold path).
    let round_metrics = hub.as_ref().map(|h| {
        (
            h.registry().counter("jxp_cluster_rounds_total"),
            h.registry()
                .histogram("jxp_cluster_round_width", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
        )
    });

    // Stall injection must see requests in schedule order to swallow
    // exactly the planned ones, so it pins execution to one worker.
    let workers = if config.stall.is_some() { 1 } else { threads };
    for (round_no, round) in rounds.into_iter().enumerate() {
        let arm_stall = |m: usize| {
            if let Some(plan) = config.stall {
                if plan.at_meeting == m {
                    injectors[plan.node_index].stall_next(plan.count);
                }
            }
        };
        // Outcomes are collected in schedule order so telemetry events
        // can be emitted serially afterwards: the event stream is then
        // independent of how the round's meetings interleaved.
        let mut outcomes: Vec<Option<crate::node::MeetOutcome>> = vec![None; round.len()];
        if workers.min(round.len()) <= 1 {
            for (k, &(m, initiator, target)) in round.iter().enumerate() {
                arm_stall(m);
                // Failures are part of the experiment: counted, never fatal.
                outcomes[k] = nodes[initiator]
                    .meet(target, transport.as_ref(), &config.retry)
                    .ok();
            }
        } else {
            let num_buckets = workers.min(round.len());
            let mut buckets: Vec<Vec<(usize, usize, NodeId)>> =
                (0..num_buckets).map(|_| Vec::new()).collect();
            for (k, &(_, initiator, target)) in round.iter().enumerate() {
                buckets[k % num_buckets].push((k, initiator, target));
            }
            let nodes = &nodes;
            let transport = transport.as_ref();
            let retry = &config.retry;
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(k, initiator, target)| {
                                    (k, nodes[initiator].meet(target, transport, retry).ok())
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (k, outcome) in handle.join().expect("meeting worker panicked") {
                        outcomes[k] = outcome;
                    }
                }
            });
        }
        if let Some(hub) = &hub {
            for (&(m, initiator, target), outcome) in round.iter().zip(&outcomes) {
                hub.events().record(Event::MeetingStarted {
                    meeting: m as u64,
                    initiator: initiator as u64,
                    partner: target,
                });
                hub.events().record(match outcome {
                    Some(o) => Event::MeetingCompleted {
                        meeting: m as u64,
                        initiator: initiator as u64,
                        partner: target,
                        bytes: o.bytes_sent + o.bytes_received,
                    },
                    None => Event::MeetingFailed {
                        meeting: m as u64,
                        initiator: initiator as u64,
                        partner: target,
                    },
                });
            }
            hub.events().record(Event::RoundExecuted {
                round: round_no as u64,
                pairs: round.len() as u64,
                threads: workers.min(round.len().max(1)) as u64,
            });
            let (rounds_total, round_width) = round_metrics.as_ref().expect("registered with hub");
            rounds_total.inc();
            round_width.observe(round.len() as f64);
        }
    }

    let per_node: Vec<NodeStats> = nodes.iter().map(|n| n.stats()).collect();
    let footrule = truth.map(|scores| {
        let guards: Vec<_> = nodes.iter().map(|n| n.lock()).collect();
        let distributed = total_ranking(guards.iter().map(|g| &g.peer));
        let k = distributed.len().min(100);
        footrule_distance(&distributed, &centralized_ranking(scores), k)
    });
    if let (Some(hub), Some(f)) = (&hub, footrule) {
        hub.registry().gauge("jxp_cluster_footrule").set(f);
    }
    // Snapshot before any stats-endpoint sweep so counter totals match
    // `per_node` exactly (the sweep itself moves bytes).
    let telemetry = hub.as_ref().map(|h| h.snapshot());
    let wire_stats = config.stats_endpoint.then(|| {
        (0..num_nodes)
            .map(|j| {
                let initiator = (j + 1) % num_nodes;
                nodes[initiator]
                    .fetch_stats(j as NodeId, transport.as_ref(), &config.retry)
                    .unwrap_or_else(|_| StatsPayload {
                        node_id: j as u64,
                        ..StatsPayload::default()
                    })
            })
            .collect()
    });

    ClusterReport {
        num_nodes,
        meetings_attempted: per_node.iter().map(|s| s.meetings_attempted).sum(),
        meetings_completed: per_node.iter().map(|s| s.meetings_completed).sum(),
        meetings_failed: per_node.iter().map(|s| s.meetings_failed).sum(),
        retries: per_node.iter().map(|s| s.retries).sum(),
        bytes_total: per_node.iter().map(|s| s.bytes_out).sum(),
        footrule,
        per_node,
        telemetry,
        wire_stats,
    }
}

/// Choose a meeting partner: synopsis-guided when pre-meetings data is
/// available (with every k-th meeting random, as the paper's selector
/// keeps exploring), uniform otherwise.
fn pick_target(
    initiator: usize,
    num_nodes: usize,
    meeting_no: usize,
    synopses: Option<&Vec<(NodeId, PeerSynopses)>>,
    node: &JxpNode,
    premeet_cfg: &PreMeetingsConfig,
    rng: &mut StdRng,
) -> NodeId {
    if let Some(candidates) = synopses {
        let force_random =
            premeet_cfg.random_every_k > 0 && meeting_no.is_multiple_of(premeet_cfg.random_every_k);
        if !force_random {
            if let Some(best) = node.select_by_synopses(candidates, premeet_cfg) {
                return best;
            }
        }
    }
    let mut t = rng.gen_range(0..num_nodes - 1);
    if t >= initiator {
        t += 1;
    }
    t as NodeId
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::PageId;

    /// A 12-page ring split into `n` fragments of 12/n pages each.
    fn ring_fragments(n: usize) -> (Vec<Subgraph>, u64) {
        let total = 12u32;
        let per = total as usize / n;
        let frags = (0..n)
            .map(|i| {
                let lo = (i * per) as u32;
                Subgraph::from_adjacency(
                    (lo..lo + per as u32)
                        .map(|p| (PageId(p), vec![PageId((p + 1) % total)]))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        (frags, u64::from(total))
    }

    #[test]
    fn loopback_cluster_runs_and_counts() {
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 20,
            seed: 3,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        assert_eq!(report.num_nodes, 4);
        assert_eq!(report.meetings_attempted, 20);
        assert_eq!(report.meetings_completed, 20);
        assert_eq!(report.meetings_failed, 0);
        assert!(report.bytes_total > 0);
    }

    #[test]
    fn stall_is_survived_via_retry() {
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 12,
            seed: 5,
            retry: RetryPolicy {
                max_attempts: 4,
                base_delay: std::time::Duration::from_millis(1),
                max_delay: std::time::Duration::from_millis(2),
            },
            stall: Some(StallPlan {
                node_index: 1,
                at_meeting: 0,
                count: 2,
            }),
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        // The stalled requests were retried, not fatal: every meeting
        // still completed and retries were recorded somewhere.
        assert_eq!(report.meetings_completed, 12);
        assert_eq!(report.meetings_failed, 0);
        assert!(report.retries >= 1, "expected recorded retries");
    }

    #[test]
    fn cluster_results_are_identical_across_thread_counts() {
        let (frags, n_total) = ring_fragments(4);
        let truth = vec![1.0 / 12.0; 12];
        let run = |threads: usize| {
            let config = ClusterConfig {
                meetings: 24,
                seed: 11,
                threads,
                ..ClusterConfig::default()
            };
            run_cluster(
                frags.clone(),
                n_total,
                JxpConfig::default(),
                &config,
                Some(&truth),
            )
        };
        let want = run(1);
        assert_eq!(want.meetings_completed, 24);
        for threads in [2, 4] {
            let got = run(threads);
            assert_eq!(got.footrule, want.footrule, "{threads} threads");
            for (g, w) in got.per_node.iter().zip(&want.per_node) {
                assert_eq!(g.meetings_attempted, w.meetings_attempted);
                assert_eq!(g.meetings_completed, w.meetings_completed);
                assert_eq!(g.bytes_out, w.bytes_out, "{threads} threads");
                assert_eq!(g.bytes_in, w.bytes_in, "{threads} threads");
            }
        }
    }

    #[test]
    fn telemetry_counters_match_per_node_stats_exactly() {
        let (frags, n_total) = ring_fragments(4);
        let truth = vec![1.0 / 12.0; 12];
        let config = ClusterConfig {
            meetings: 20,
            seed: 7,
            telemetry: true,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, Some(&truth));
        let snap = report.telemetry.as_ref().expect("telemetry requested");
        for (i, stats) in report.per_node.iter().enumerate() {
            let counter = |field: &str| {
                snap.metrics.counters[&format!("jxp_node_{field}_total{{node=\"{i}\"}}")]
            };
            assert_eq!(counter("meetings_attempted"), stats.meetings_attempted);
            assert_eq!(counter("meetings_completed"), stats.meetings_completed);
            assert_eq!(counter("meetings_served"), stats.meetings_served);
            assert_eq!(counter("retries"), stats.retries);
            assert_eq!(counter("bytes_in"), stats.bytes_in);
            assert_eq!(counter("bytes_out"), stats.bytes_out);
        }
        // One Started + one Completed/Failed per meeting, plus a
        // RoundExecuted per round.
        let completed = snap
            .events
            .iter()
            .filter(|r| r.event.kind() == "meeting_completed")
            .count() as u64;
        assert_eq!(completed, report.meetings_completed);
        let started = snap
            .events
            .iter()
            .filter(|r| r.event.kind() == "meeting_started")
            .count() as u64;
        assert_eq!(started, report.meetings_attempted);
        assert_eq!(
            snap.metrics.gauges["jxp_cluster_footrule"],
            report.footrule.unwrap()
        );
        assert!(snap.metrics.counters["jxp_cluster_rounds_total"] >= 1);
        // Completed-meeting byte totals cover both frames of each
        // exchange: their sum equals all wire traffic (request + reply
        // counted once each) when no premeetings/hello bytes... hellos
        // do add traffic, so the event bytes are a lower bound.
        let event_bytes: u64 = snap
            .events
            .iter()
            .filter_map(|r| match r.event {
                jxp_telemetry::Event::MeetingCompleted { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum();
        assert!(event_bytes > 0 && event_bytes <= report.bytes_total);
    }

    #[test]
    fn stats_endpoint_sweep_mirrors_per_node_counters() {
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 16,
            seed: 13,
            stats_endpoint: true,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        let wire = report.wire_stats.as_ref().expect("stats endpoint enabled");
        assert_eq!(wire.len(), report.per_node.len());
        for (j, payload) in wire.iter().enumerate() {
            assert_eq!(payload.node_id, j as u64);
            // Meeting counters are untouched by the stats sweep itself.
            let stats = &report.per_node[j];
            assert_eq!(payload.meetings_attempted, stats.meetings_attempted);
            assert_eq!(payload.meetings_completed, stats.meetings_completed);
            assert_eq!(payload.meetings_served, stats.meetings_served);
            assert_eq!(payload.retries, stats.retries);
        }
        // The very first fetch (node 0) precedes all stats traffic, so
        // even its byte counters mirror the snapshot exactly.
        assert_eq!(wire[0].bytes_in, report.per_node[0].bytes_in);
        assert_eq!(wire[0].bytes_out, report.per_node[0].bytes_out);
    }

    #[test]
    fn telemetry_does_not_perturb_results() {
        let (frags, n_total) = ring_fragments(4);
        let truth = vec![1.0 / 12.0; 12];
        let run = |telemetry: bool| {
            let config = ClusterConfig {
                meetings: 24,
                seed: 11,
                telemetry,
                stats_endpoint: telemetry,
                ..ClusterConfig::default()
            };
            run_cluster(
                frags.clone(),
                n_total,
                JxpConfig::default(),
                &config,
                Some(&truth),
            )
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(on.footrule, off.footrule);
        assert_eq!(on.per_node, off.per_node);
        assert_eq!(on.bytes_total, off.bytes_total);
    }

    #[test]
    fn premeetings_mode_runs_and_reports_footrule() {
        let (frags, n_total) = ring_fragments(3);
        // Uniform truth for a plain ring: every page has score 1/12.
        let truth = vec![1.0 / 12.0; 12];
        let config = ClusterConfig {
            meetings: 15,
            seed: 9,
            premeetings: true,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, Some(&truth));
        assert_eq!(report.meetings_completed, 15);
        assert!(report.footrule.is_some());
    }
}
