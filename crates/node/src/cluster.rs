//! Cluster driver: spawn N nodes over loopback or localhost TCP, run M
//! meetings through the real wire codec, and report convergence and
//! traffic. Backs the `jxp cluster` CLI command and the integration
//! tests; fault injection ([`StallPlan`]) proves the timeout + retry
//! path keeps a run alive when a peer stalls mid-experiment.

use crate::loopback::LoopbackNetwork;
use crate::node::{JxpNode, NodeMetrics, NodeStats};
use crate::persist::{NodePersist, PersistConfig, SharedStore};
use crate::reactor::{reactor_premeet_sweep, run_reactor_round, HandlerService, ReactorTransport};
use crate::tcp::{TcpConfig, TcpServer, TcpTransport};
use crate::transport::{FrameHandler, NodeId, RetryPolicy, StallInjector, Transport};
use jxp_core::config::JxpConfig;
use jxp_core::evaluate::{centralized_ranking, total_ranking};
use jxp_core::selection::{PeerSynopses, PreMeetingsConfig};
use jxp_pagerank::metrics::footrule_distance;
use jxp_reactor::{Reactor, ReactorConfig, ReactorMetrics};
use jxp_store::{DirStore, StoreMetrics, WalKind, WalRecord};
use jxp_synopses::mips::MipsPermutations;
use jxp_telemetry::{Event, MetricsServer, TelemetryHub, TelemetrySnapshot};
use jxp_webgraph::Subgraph;
use jxp_wire::StatsPayload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sliding submission window for the reactor's all-pairs pre-meetings
/// sweep: how many synopsis probes one driver thread keeps in flight.
/// Sized so even modest clusters exercise hundreds of concurrent
/// exchanges; the in-flight gauge peaks at `min(window, pairs)`.
const PREMEET_WINDOW: usize = 512;

/// Which transport carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Deterministic in-memory codec loopback.
    Loopback,
    /// Localhost TCP, thread-per-connection (alias: `threads`).
    Tcp,
    /// Non-blocking multiplexed reactor: one loop thread moves every
    /// frame, hundreds of meetings stay in flight at once.
    Reactor,
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "loopback" => Ok(TransportKind::Loopback),
            "tcp" | "threads" => Ok(TransportKind::Tcp),
            "reactor" => Ok(TransportKind::Reactor),
            other => Err(format!(
                "unknown transport '{other}' (expected loopback|tcp|threads|reactor)"
            )),
        }
    }
}

/// Injected fault: just before meeting number `at_meeting` starts, node
/// `node_index` begins swallowing the next `count` inbound requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallPlan {
    /// Index (0-based) of the node that stalls.
    pub node_index: usize,
    /// Meeting number at which the stall is armed.
    pub at_meeting: usize,
    /// How many consecutive requests it swallows.
    pub count: u32,
}

/// Everything configurable about a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total meetings to initiate (round-robin initiators).
    pub meetings: usize,
    /// Loopback or TCP.
    pub transport: TransportKind,
    /// Seed for partner selection (and synopsis permutations).
    pub seed: u64,
    /// Select partners by exchanged synopses instead of uniformly.
    pub premeetings: bool,
    /// Retry policy for every exchange.
    pub retry: RetryPolicy,
    /// Optional stall injection.
    pub stall: Option<StallPlan>,
    /// Min-wise permutations per synopsis vector.
    pub mips_dims: usize,
    /// Worker threads executing each meeting round (`0` = the machine's
    /// available parallelism, `1` = serial). The schedule is always drawn
    /// serially and partitioned into rounds of **node-disjoint** pairs:
    /// two in-flight meetings sharing a node would interleave their lock
    /// acquisitions nondeterministically (a node answers inbound requests
    /// while its own exchange is in flight), so disjointness is what
    /// makes the results bit-identical for every value of this knob. A
    /// [`StallPlan`] forces serial round execution so the injector
    /// swallows exactly the scheduled requests.
    pub threads: usize,
    /// Collect telemetry: per-node registry counters plus a structured
    /// event stream, snapshotted into [`ClusterReport::telemetry`].
    /// Observation-only — results are bit-identical either way.
    pub telemetry: bool,
    /// Enable every node's wire stats endpoint and sweep it after the
    /// run into [`ClusterReport::wire_stats`].
    pub stats_endpoint: bool,
    /// Serve the Prometheus text exposition over HTTP at this address
    /// (e.g. `127.0.0.1:9184`; port 0 binds an ephemeral port, reported
    /// in [`ClusterReport::metrics_addr`]) for the duration of the run.
    /// Implies a telemetry hub even when [`ClusterConfig::telemetry`]
    /// is off, but [`ClusterReport::telemetry`] stays gated on that
    /// flag. Observation-only, like the rest of telemetry.
    pub metrics_listen: Option<String>,
    /// Use this hub instead of creating one, so a caller embedding the
    /// run (e.g. the `jxp-serve` experiment) can register its own
    /// metrics in the same registry the scrape endpoint exports.
    pub hub: Option<Arc<TelemetryHub>>,
    /// Durable state directory. When set, every node journals applied
    /// meeting deltas to a per-node WAL under this directory (with
    /// periodic checkpoints) and, on startup, resumes from whatever
    /// state the directory holds: already-journaled meetings of the
    /// deterministic schedule are skipped, a torn meeting is repaired
    /// from its partner's final `Serve` record, and the rest execute
    /// normally. Scores at the end are bit-identical to a run that was
    /// never interrupted (DESIGN.md §12).
    pub state_dir: Option<PathBuf>,
    /// Checkpoint every N applied events per node (0 = only at exit).
    pub checkpoint_every: u64,
    /// Write a final checkpoint per node when the run completes. Tests
    /// disable this to leave checkpoint + WAL state on disk, exactly as
    /// a crash would.
    pub checkpoint_on_exit: bool,
    /// Sleep this long after each executed round — pacing for the CI
    /// crash-recovery job, which SIGKILLs a deliberately slow run.
    pub round_delay: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            meetings: 100,
            transport: TransportKind::Loopback,
            seed: 42,
            premeetings: false,
            retry: RetryPolicy::default(),
            stall: None,
            mips_dims: 64,
            threads: 1,
            telemetry: false,
            stats_endpoint: false,
            metrics_listen: None,
            hub: None,
            state_dir: None,
            checkpoint_every: 8,
            checkpoint_on_exit: true,
            round_delay: None,
        }
    }
}

/// Aggregated result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Nodes in the cluster.
    pub num_nodes: usize,
    /// Meetings initiated.
    pub meetings_attempted: u64,
    /// Meetings whose reply was absorbed.
    pub meetings_completed: u64,
    /// Meetings abandoned after retries.
    pub meetings_failed: u64,
    /// Retries spent across all exchanges.
    pub retries: u64,
    /// Total wire bytes, counted once at each frame's sender.
    pub bytes_total: u64,
    /// Spearman's footrule vs. centralized PageRank (if truth given).
    pub footrule: Option<f64>,
    /// Per-node counter snapshots.
    pub per_node: Vec<NodeStats>,
    /// Telemetry snapshot (when [`ClusterConfig::telemetry`] was set),
    /// taken at the same instant as `per_node` — counter totals match
    /// the `NodeStats` sums exactly.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Counter snapshots fetched over the wire via `StatsRequest` (when
    /// [`ClusterConfig::stats_endpoint`] was set), one per node. Fetched
    /// after `per_node`, so the first fetch mirrors it exactly.
    pub wire_stats: Option<Vec<StatsPayload>>,
    /// FNV-1a hash over every node's final score bits, in node order.
    /// Bit-identical runs — including a killed run resumed from its
    /// [`ClusterConfig::state_dir`] — report the same hash.
    pub score_hash: u64,
    /// Where the Prometheus scrape endpoint listened (when
    /// [`ClusterConfig::metrics_listen`] was set), with port 0 resolved
    /// to the real port. The listener itself stops when the run ends.
    pub metrics_addr: Option<SocketAddr>,
    /// High-water mark of concurrent in-flight requests over the whole
    /// run, as tracked by the `jxp_node_inflight_meetings` gauge. Only
    /// on [`TransportKind::Reactor`] — the blocking transports have no
    /// submission queue to measure.
    pub inflight_peak: Option<u64>,
}

/// What a [`ClusterHooks::concurrent`] driver sees while the meeting
/// rounds execute.
pub struct ClusterCtx<'a> {
    /// The run's transport — send [`jxp_wire::Frame`]s to any node.
    pub transport: &'a dyn Transport,
    /// Every node, in id order. Read-only observation (e.g. epochs);
    /// mutating state from the driver would break determinism.
    pub nodes: &'a [Arc<JxpNode>],
    /// Flips to `true` (release ordering) once every meeting round has
    /// executed. The driver should finish soon after — the run joins it.
    pub meetings_done: &'a AtomicBool,
    /// The scrape endpoint's bound address, when one was requested.
    pub metrics_addr: Option<SocketAddr>,
}

/// Extension points that let a caller embed extra behaviour in a
/// cluster run without `jxp-node` growing dependencies on it (the
/// query front end in `jxp-serve` is the motivating user).
#[derive(Default)]
pub struct ClusterHooks<'a> {
    /// Wrap node `i`'s frame handler. The returned handler sits between
    /// the node and the stall injector (injector outermost), so wire
    /// faults still hit the whole chain. The wrapper must delegate any
    /// frame it does not consume to the node itself.
    #[allow(clippy::type_complexity)]
    pub wrap_handler: Option<&'a (dyn Fn(usize, &Arc<JxpNode>) -> Arc<dyn FrameHandler> + Sync)>,
    /// Run concurrently with the meeting rounds (e.g. a closed-loop
    /// load generator), started just before the first round and joined
    /// right after [`ClusterCtx::meetings_done`] flips.
    pub concurrent: Option<&'a (dyn Fn(&ClusterCtx<'_>) + Sync)>,
}

/// Run a full cluster experiment over `fragments` (one per node).
///
/// `truth` is the centralized PageRank score vector of the union graph;
/// when given, the report carries the footrule distance between it and
/// the merged distributed ranking (top-100, as in the paper's plots).
///
/// # Panics
/// Panics if `fragments` has fewer than two entries, or if a TCP server
/// fails to bind.
pub fn run_cluster(
    fragments: Vec<Subgraph>,
    n_total: u64,
    jxp: JxpConfig,
    config: &ClusterConfig,
    truth: Option<&[f64]>,
) -> ClusterReport {
    run_cluster_with(
        fragments,
        n_total,
        jxp,
        config,
        truth,
        &ClusterHooks::default(),
    )
}

/// [`run_cluster`] with [`ClusterHooks`] — same experiment, plus
/// caller-supplied handler wrapping and a concurrent driver.
///
/// # Panics
/// Panics like [`run_cluster`], plus if [`ClusterConfig::metrics_listen`]
/// fails to bind or the concurrent driver panics.
pub fn run_cluster_with(
    fragments: Vec<Subgraph>,
    n_total: u64,
    jxp: JxpConfig,
    config: &ClusterConfig,
    truth: Option<&[f64]>,
    hooks: &ClusterHooks<'_>,
) -> ClusterReport {
    /// What resume decided for one scheduled meeting.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum MeetAction {
        /// Execute normally (fresh runs: every meeting).
        Run,
        /// Both sides already journaled it — nothing to do.
        Skip,
        /// Responder journaled, initiator didn't: torn meeting; the
        /// initiator absorbs the responder's journaled outbound.
        Repair,
    }
    assert!(fragments.len() >= 2, "a cluster needs at least two nodes");
    let num_nodes = fragments.len();
    let perms = MipsPermutations::generate(config.mips_dims, config.seed ^ 0x5a5a);

    let hub = config.hub.clone().or_else(|| {
        (config.telemetry || config.metrics_listen.is_some()).then(TelemetryHub::shared)
    });
    // The scrape endpoint stays up for the whole run (dropped on return).
    let metrics_server = config.metrics_listen.as_ref().map(|addr| {
        let hub = hub.as_ref().expect("metrics_listen implies a hub");
        MetricsServer::bind(addr.as_str(), Arc::clone(hub))
            .unwrap_or_else(|e| panic!("bind metrics listener {addr}: {e}"))
    });
    let metrics_addr = metrics_server.as_ref().map(MetricsServer::local_addr);

    // Durable state: open the store (if configured), recover whatever
    // each node left behind, and remember per-node recovery facts for
    // the schedule classification below.
    let store: Option<(SharedStore, StoreMetrics)> = config.state_dir.as_ref().map(|dir| {
        let store_metrics = match &hub {
            Some(hub) => StoreMetrics::registered(hub.registry()),
            None => StoreMetrics::detached(),
        };
        let dir_store = DirStore::with_metrics(dir, store_metrics.clone())
            .unwrap_or_else(|e| panic!("open state dir {}: {e}", dir.display()));
        (Arc::new(dir_store) as SharedStore, store_metrics)
    });
    let mut recovered_seq = vec![0u64; num_nodes];
    let mut repair_records: Vec<Option<WalRecord>> = (0..num_nodes).map(|_| None).collect();

    let nodes: Vec<Arc<JxpNode>> = fragments
        .into_iter()
        .enumerate()
        .map(|(i, frag)| {
            let metrics = match &hub {
                Some(hub) => NodeMetrics::registered(hub.registry(), i as NodeId),
                None => NodeMetrics::detached(),
            };
            let mut peer = jxp_core::peer::JxpPeer::new(frag, n_total, jxp.clone());
            let key = format!("node-{i}");
            if let Some((store, _)) = &store {
                match store.load(&key) {
                    Ok(Some(recovered)) => {
                        recovered_seq[i] = recovered.seq;
                        repair_records[i] = recovered.last_record;
                        peer = recovered.peer;
                    }
                    Ok(None) => {}
                    Err(e) => panic!("recover {key}: {e}"),
                }
            }
            let node = Arc::new(JxpNode::with_metrics(i as NodeId, peer, &perms, metrics));
            if let Some((store, store_metrics)) = &store {
                node.attach_persistence(NodePersist::new(
                    Arc::clone(store),
                    key,
                    PersistConfig {
                        checkpoint_every: config.checkpoint_every,
                        ..PersistConfig::default()
                    },
                    store_metrics.clone(),
                    recovered_seq[i],
                ));
                if recovered_seq[i] == 0 {
                    // Seed checkpoint so recovery always has a base to
                    // replay the WAL over, even if we die before the
                    // first interval checkpoint.
                    node.persist_checkpoint();
                }
            }
            node
        })
        .collect();
    if config.stats_endpoint {
        for node in &nodes {
            node.enable_stats_endpoint();
        }
    }
    let injectors: Vec<Arc<StallInjector>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let inner: Arc<dyn FrameHandler> = match hooks.wrap_handler {
                Some(wrap) => wrap(i, n),
                None => Arc::clone(n) as Arc<dyn FrameHandler>,
            };
            Arc::new(StallInjector::new(inner))
        })
        .collect();

    // Bring up the chosen transport; TCP servers stay alive in
    // `_servers`, the reactor's loop thread in `reactor`. The typed
    // `reactor_rt` clone is what the batch paths (premeet sweep,
    // pipelined rounds) use — the `Box<dyn Transport>` facade only
    // carries the serial traffic (hellos, stats sweep, stall runs).
    let mut _servers: Vec<TcpServer> = Vec::new();
    let mut reactor: Option<Reactor> = None;
    let mut reactor_rt: Option<ReactorTransport> = None;
    let transport: Box<dyn Transport> = match config.transport {
        TransportKind::Loopback => {
            let net = LoopbackNetwork::new();
            for (i, inj) in injectors.iter().enumerate() {
                net.register(i as NodeId, Arc::clone(inj) as Arc<dyn FrameHandler>);
            }
            Box::new(net)
        }
        TransportKind::Tcp => {
            let tcp = TcpTransport::new(TcpConfig::default());
            for (i, inj) in injectors.iter().enumerate() {
                let server = TcpServer::spawn(Arc::clone(inj) as Arc<dyn FrameHandler>)
                    .expect("bind localhost TCP server");
                tcp.add_route(i as NodeId, server.addr());
                _servers.push(server);
            }
            Box::new(tcp)
        }
        TransportKind::Reactor => {
            let metrics = match &hub {
                Some(hub) => ReactorMetrics::registered(hub.registry()),
                None => ReactorMetrics::detached(),
            };
            let r = Reactor::start(ReactorConfig::default(), metrics);
            let rt = ReactorTransport::new(r.handle());
            for (i, inj) in injectors.iter().enumerate() {
                let service = Arc::new(HandlerService(Arc::clone(inj) as Arc<dyn FrameHandler>));
                let addr = r.handle().listen(service).expect("bind reactor listener");
                rt.add_route(i as NodeId, addr);
            }
            reactor = Some(r);
            reactor_rt = Some(rt.clone());
            Box::new(rt)
        }
    };

    // Join handshake: each node hellos its ring successor over the wire.
    for (i, node) in nodes.iter().enumerate() {
        let next = ((i + 1) % num_nodes) as NodeId;
        let _ = node.hello(next, transport.as_ref(), &config.retry);
    }

    // Pre-meetings: one synopsis sweep per node, over the wire, so the
    // probe traffic is real and counted. On the reactor the all-pairs
    // sweep runs under a sliding submission window — synopses are
    // immutable until the first meeting, so the answers (and the bytes
    // counted) are identical to the serial sweep's, just concurrent.
    let premeet_cfg = PreMeetingsConfig::default();
    let remote_synopses: Vec<Vec<(NodeId, PeerSynopses)>> = if !config.premeetings {
        Vec::new()
    } else if let Some(rt) = &reactor_rt {
        reactor_premeet_sweep(rt, &nodes, &config.retry, PREMEET_WINDOW)
    } else {
        nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                (0..num_nodes)
                    .filter(|&j| j != i)
                    .filter_map(|j| {
                        node.fetch_synopses(j as NodeId, transport.as_ref(), &config.retry)
                            .ok()
                            .map(|syn| (j as NodeId, syn))
                    })
                    .collect()
            })
            .collect()
    };

    // Draw the whole schedule serially (round-robin initiators, seeded
    // partner choice), partitioned into rounds of node-disjoint pairs; a
    // drawn pair that conflicts with its round carries over to open the
    // next one, so the executed sequence is exactly the drawn sequence.
    // Disjoint meetings commute — each touches only its two nodes — so
    // executing a round concurrently is bit-identical to replaying it
    // serially in schedule order, for every thread count.
    let threads = jxp_pagerank::par::resolve_threads(config.threads);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rounds: Vec<Vec<(usize, usize, NodeId)>> = Vec::new();
    let mut round: Vec<(usize, usize, NodeId)> = Vec::new();
    let mut busy = vec![false; num_nodes];
    for m in 0..config.meetings {
        let initiator = m % num_nodes;
        let target = pick_target(
            initiator,
            num_nodes,
            m,
            config.premeetings.then(|| &remote_synopses[initiator]),
            &nodes[initiator],
            &premeet_cfg,
            &mut rng,
        );
        if busy[initiator] || busy[target as usize] {
            rounds.push(std::mem::take(&mut round));
            busy.fill(false);
        }
        busy[initiator] = true;
        busy[target as usize] = true;
        round.push((m, initiator, target));
    }
    if !round.is_empty() {
        rounds.push(round);
    }

    // Resume classification: walk the drawn schedule tracking how many
    // events each node *would* have applied, and compare against what
    // the WAL says it *did* apply. Rounds are node-disjoint and execute
    // behind a barrier, so a crash leaves each node mid-flight in at
    // most one meeting and the per-meeting (responder done, initiator
    // done) pair is unambiguous: (true, true) already happened — skip;
    // (false, false) never happened — run; (true, false) is a torn
    // meeting — the responder journaled its serve (it does so before
    // the reply leaves) but the initiator died first, so repair the
    // initiator from the outbound payload the serve record kept.
    // (false, true) would mean the initiator absorbed a reply that was
    // never served: impossible unless the state dir belongs to a
    // different run.
    let actions: Vec<Vec<MeetAction>> = {
        let mut expected = vec![0u64; num_nodes];
        rounds
            .iter()
            .map(|round| {
                round
                    .iter()
                    .map(|&(m, initiator, target)| {
                        let t = target as usize;
                        let responder_event = expected[t] + 1;
                        let initiator_event = expected[initiator] + 1;
                        expected[t] = responder_event;
                        expected[initiator] = initiator_event;
                        let responder_done = recovered_seq[t] >= responder_event;
                        let initiator_done = recovered_seq[initiator] >= initiator_event;
                        match (responder_done, initiator_done) {
                            (true, true) => MeetAction::Skip,
                            (false, false) => MeetAction::Run,
                            (true, false) => MeetAction::Repair,
                            (false, true) => panic!(
                                "state dir inconsistent at meeting {m}: initiator {initiator} \
                                 journaled an event node {t} never served — wrong --state-dir \
                                 for this seed/topology?"
                            ),
                        }
                    })
                    .collect()
            })
            .collect()
    };
    for (round, acts) in rounds.iter().zip(&actions) {
        for (&(m, initiator, target), act) in round.iter().zip(acts) {
            if *act != MeetAction::Repair {
                continue;
            }
            let t = target as usize;
            let record = repair_records[t].as_ref().unwrap_or_else(|| {
                panic!("meeting {m} needs repair but node {t} has no journaled record")
            });
            assert_eq!(
                record.seq, recovered_seq[t],
                "torn meeting {m} must be node {t}'s final journaled event"
            );
            assert_eq!(
                record.kind,
                WalKind::Serve,
                "torn meeting {m}: node {t}'s final record is not a serve"
            );
            let outbound = record
                .outbound
                .as_ref()
                .expect("serve records always carry the outbound payload");
            nodes[initiator].apply_repair(outbound);
        }
    }

    // Telemetry handles are registered once, up front (cold path).
    let round_metrics = hub.as_ref().map(|h| {
        (
            h.registry().counter("jxp_cluster_rounds_total"),
            h.registry()
                .histogram("jxp_cluster_round_width", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
        )
    });

    // Stall injection must see requests in schedule order to swallow
    // exactly the planned ones, so it pins execution to one worker.
    let workers = if config.stall.is_some() { 1 } else { threads };
    // The concurrent driver (if any) runs for the whole meeting phase
    // and is joined before any teardown, so every frame it sends meets
    // a live handler chain.
    let meetings_done = AtomicBool::new(false);
    std::thread::scope(|driver_scope| {
        let driver = hooks.concurrent.map(|run| {
            let ctx = ClusterCtx {
                transport: transport.as_ref(),
                nodes: &nodes,
                meetings_done: &meetings_done,
                metrics_addr,
            };
            driver_scope.spawn(move || run(&ctx))
        });
        for (round_no, (full_round, acts)) in rounds.iter().zip(&actions).enumerate() {
            // Already-journaled meetings (and repaired torn ones) are
            // skipped on resume; only the remainder executes.
            let round: Vec<(usize, usize, NodeId)> = full_round
                .iter()
                .zip(acts)
                .filter(|(_, act)| **act == MeetAction::Run)
                .map(|(&mtg, _)| mtg)
                .collect();
            if round.is_empty() {
                continue;
            }
            let arm_stall = |m: usize| {
                if let Some(plan) = config.stall {
                    if plan.at_meeting == m {
                        injectors[plan.node_index].stall_next(plan.count);
                    }
                }
            };
            // Outcomes are collected in schedule order so telemetry events
            // can be emitted serially afterwards: the event stream is then
            // independent of how the round's meetings interleaved.
            let mut outcomes: Vec<Option<crate::node::MeetOutcome>> = vec![None; round.len()];
            if let (Some(rt), None) = (&reactor_rt, config.stall) {
                // Reactor path: submit the whole node-disjoint round,
                // then harvest in schedule order. Disjointness makes
                // the reordering invisible (no pair touches another's
                // state), so outcomes are bit-identical to the serial
                // and pooled paths at every `threads` value.
                let tasks: Vec<(usize, NodeId, &mut Option<crate::node::MeetOutcome>)> = round
                    .iter()
                    .zip(outcomes.iter_mut())
                    .map(|(&(_, initiator, target), slot)| (initiator, target, slot))
                    .collect();
                run_reactor_round(rt, &nodes, &config.retry, tasks);
            } else if workers.min(round.len()) <= 1 {
                for (k, &(m, initiator, target)) in round.iter().enumerate() {
                    arm_stall(m);
                    // Failures are part of the experiment: counted, never fatal.
                    outcomes[k] = nodes[initiator]
                        .meet(target, transport.as_ref(), &config.retry)
                        .ok();
                }
            } else {
                // Persistent shared pool instead of spawn-per-round
                // scoped threads: each task owns its outcome slot, so
                // placement (dealing or stealing) cannot reorder or
                // lose results.
                let nodes = &nodes;
                let transport = transport.as_ref();
                let retry = &config.retry;
                let tasks: Vec<(usize, NodeId, &mut Option<crate::node::MeetOutcome>)> = round
                    .iter()
                    .zip(outcomes.iter_mut())
                    .map(|(&(_, initiator, target), slot)| (initiator, target, slot))
                    .collect();
                jxp_pool::global().run_dealt(workers, tasks, |(initiator, target, slot)| {
                    // Failures are part of the experiment: counted, never fatal.
                    *slot = nodes[initiator].meet(target, transport, retry).ok();
                });
            }
            if let Some(hub) = &hub {
                for (&(m, initiator, target), outcome) in round.iter().zip(&outcomes) {
                    hub.events().record(Event::MeetingStarted {
                        meeting: m as u64,
                        initiator: initiator as u64,
                        partner: target,
                    });
                    hub.events().record(match outcome {
                        Some(o) => Event::MeetingCompleted {
                            meeting: m as u64,
                            initiator: initiator as u64,
                            partner: target,
                            bytes: o.bytes_sent + o.bytes_received,
                        },
                        None => Event::MeetingFailed {
                            meeting: m as u64,
                            initiator: initiator as u64,
                            partner: target,
                        },
                    });
                }
                hub.events().record(Event::RoundExecuted {
                    round: round_no as u64,
                    pairs: round.len() as u64,
                });
                let (rounds_total, round_width) =
                    round_metrics.as_ref().expect("registered with hub");
                rounds_total.inc();
                round_width.observe(round.len() as f64);
            }
            if let Some(delay) = config.round_delay {
                std::thread::sleep(delay);
            }
        }
        meetings_done.store(true, Ordering::Release);
        if let Some(driver) = driver {
            driver.join().expect("concurrent driver panicked");
        }
    });

    // Clean shutdown: one final checkpoint per node, so a later resume
    // starts from the finished state instead of replaying the tail.
    if store.is_some() && config.checkpoint_on_exit {
        for node in &nodes {
            node.persist_checkpoint();
        }
    }

    let per_node: Vec<NodeStats> = nodes.iter().map(|n| n.stats()).collect();
    let score_hash = {
        let guards: Vec<_> = nodes.iter().map(|n| n.lock()).collect();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for guard in &guards {
            for &score in guard.peer.scores() {
                for byte in score.to_bits().to_le_bytes() {
                    hash ^= u64::from(byte);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        hash
    };
    let footrule = truth.map(|scores| {
        let guards: Vec<_> = nodes.iter().map(|n| n.lock()).collect();
        let distributed = total_ranking(guards.iter().map(|g| &g.peer));
        let k = distributed.len().min(100);
        footrule_distance(&distributed, &centralized_ranking(scores), k)
    });
    if let (Some(hub), Some(f)) = (&hub, footrule) {
        hub.registry().gauge("jxp_cluster_footrule").set(f);
    }
    // Snapshot before any stats-endpoint sweep so counter totals match
    // `per_node` exactly (the sweep itself moves bytes). Gated on the
    // telemetry flag: a hub forced by `metrics_listen` alone stays out
    // of the report.
    let telemetry = config
        .telemetry
        .then(|| hub.as_ref().expect("telemetry implies a hub").snapshot());
    let wire_stats = config.stats_endpoint.then(|| {
        (0..num_nodes)
            .map(|j| {
                let initiator = (j + 1) % num_nodes;
                nodes[initiator]
                    .fetch_stats(j as NodeId, transport.as_ref(), &config.retry)
                    .unwrap_or_else(|_| StatsPayload {
                        node_id: j as u64,
                        ..StatsPayload::default()
                    })
            })
            .collect()
    });

    ClusterReport {
        num_nodes,
        meetings_attempted: per_node.iter().map(|s| s.meetings_attempted).sum(),
        meetings_completed: per_node.iter().map(|s| s.meetings_completed).sum(),
        meetings_failed: per_node.iter().map(|s| s.meetings_failed).sum(),
        retries: per_node.iter().map(|s| s.retries).sum(),
        bytes_total: per_node.iter().map(|s| s.bytes_out).sum(),
        footrule,
        per_node,
        telemetry,
        wire_stats,
        score_hash,
        metrics_addr,
        inflight_peak: reactor.as_ref().map(Reactor::peak_inflight),
    }
}

/// Choose a meeting partner: synopsis-guided when pre-meetings data is
/// available (with every k-th meeting random, as the paper's selector
/// keeps exploring), uniform otherwise.
fn pick_target(
    initiator: usize,
    num_nodes: usize,
    meeting_no: usize,
    synopses: Option<&Vec<(NodeId, PeerSynopses)>>,
    node: &JxpNode,
    premeet_cfg: &PreMeetingsConfig,
    rng: &mut StdRng,
) -> NodeId {
    if let Some(candidates) = synopses {
        let force_random =
            premeet_cfg.random_every_k > 0 && meeting_no.is_multiple_of(premeet_cfg.random_every_k);
        if !force_random {
            if let Some(best) = node.select_by_synopses(candidates, premeet_cfg) {
                return best;
            }
        }
    }
    let mut t = rng.gen_range(0..num_nodes - 1);
    if t >= initiator {
        t += 1;
    }
    t as NodeId
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::PageId;

    /// A 12-page ring split into `n` fragments of 12/n pages each.
    fn ring_fragments(n: usize) -> (Vec<Subgraph>, u64) {
        let total = 12u32;
        let per = total as usize / n;
        let frags = (0..n)
            .map(|i| {
                let lo = (i * per) as u32;
                Subgraph::from_adjacency(
                    (lo..lo + per as u32)
                        .map(|p| (PageId(p), vec![PageId((p + 1) % total)]))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        (frags, u64::from(total))
    }

    #[test]
    fn loopback_cluster_runs_and_counts() {
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 20,
            seed: 3,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        assert_eq!(report.num_nodes, 4);
        assert_eq!(report.meetings_attempted, 20);
        assert_eq!(report.meetings_completed, 20);
        assert_eq!(report.meetings_failed, 0);
        assert!(report.bytes_total > 0);
    }

    #[test]
    fn stall_is_survived_via_retry() {
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 12,
            seed: 5,
            retry: RetryPolicy {
                max_attempts: 4,
                base_delay: std::time::Duration::from_millis(1),
                max_delay: std::time::Duration::from_millis(2),
            },
            stall: Some(StallPlan {
                node_index: 1,
                at_meeting: 0,
                count: 2,
            }),
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        // The stalled requests were retried, not fatal: every meeting
        // still completed and retries were recorded somewhere.
        assert_eq!(report.meetings_completed, 12);
        assert_eq!(report.meetings_failed, 0);
        assert!(report.retries >= 1, "expected recorded retries");
    }

    #[test]
    fn cluster_results_are_identical_across_thread_counts() {
        let (frags, n_total) = ring_fragments(4);
        let truth = vec![1.0 / 12.0; 12];
        let run = |threads: usize| {
            let config = ClusterConfig {
                meetings: 24,
                seed: 11,
                threads,
                ..ClusterConfig::default()
            };
            run_cluster(
                frags.clone(),
                n_total,
                JxpConfig::default(),
                &config,
                Some(&truth),
            )
        };
        let want = run(1);
        assert_eq!(want.meetings_completed, 24);
        for threads in [2, 4] {
            let got = run(threads);
            assert_eq!(got.footrule, want.footrule, "{threads} threads");
            for (g, w) in got.per_node.iter().zip(&want.per_node) {
                assert_eq!(g.meetings_attempted, w.meetings_attempted);
                assert_eq!(g.meetings_completed, w.meetings_completed);
                assert_eq!(g.bytes_out, w.bytes_out, "{threads} threads");
                assert_eq!(g.bytes_in, w.bytes_in, "{threads} threads");
            }
        }
    }

    #[test]
    fn telemetry_counters_match_per_node_stats_exactly() {
        let (frags, n_total) = ring_fragments(4);
        let truth = vec![1.0 / 12.0; 12];
        let config = ClusterConfig {
            meetings: 20,
            seed: 7,
            telemetry: true,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, Some(&truth));
        let snap = report.telemetry.as_ref().expect("telemetry requested");
        for (i, stats) in report.per_node.iter().enumerate() {
            let counter = |field: &str| {
                snap.metrics.counters[&format!("jxp_node_{field}_total{{node=\"{i}\"}}")]
            };
            assert_eq!(counter("meetings_attempted"), stats.meetings_attempted);
            assert_eq!(counter("meetings_completed"), stats.meetings_completed);
            assert_eq!(counter("meetings_served"), stats.meetings_served);
            assert_eq!(counter("retries"), stats.retries);
            assert_eq!(counter("bytes_in"), stats.bytes_in);
            assert_eq!(counter("bytes_out"), stats.bytes_out);
        }
        // One Started + one Completed/Failed per meeting, plus a
        // RoundExecuted per round.
        let completed = snap
            .events
            .iter()
            .filter(|r| r.event.kind() == "meeting_completed")
            .count() as u64;
        assert_eq!(completed, report.meetings_completed);
        let started = snap
            .events
            .iter()
            .filter(|r| r.event.kind() == "meeting_started")
            .count() as u64;
        assert_eq!(started, report.meetings_attempted);
        assert_eq!(
            snap.metrics.gauges["jxp_cluster_footrule"],
            report.footrule.unwrap()
        );
        assert!(snap.metrics.counters["jxp_cluster_rounds_total"] >= 1);
        // Completed-meeting byte totals cover both frames of each
        // exchange: their sum equals all wire traffic (request + reply
        // counted once each) when no premeetings/hello bytes... hellos
        // do add traffic, so the event bytes are a lower bound.
        let event_bytes: u64 = snap
            .events
            .iter()
            .filter_map(|r| match r.event {
                jxp_telemetry::Event::MeetingCompleted { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum();
        assert!(event_bytes > 0 && event_bytes <= report.bytes_total);
    }

    #[test]
    fn stats_endpoint_sweep_mirrors_per_node_counters() {
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 16,
            seed: 13,
            stats_endpoint: true,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        let wire = report.wire_stats.as_ref().expect("stats endpoint enabled");
        assert_eq!(wire.len(), report.per_node.len());
        for (j, payload) in wire.iter().enumerate() {
            assert_eq!(payload.node_id, j as u64);
            // Meeting counters are untouched by the stats sweep itself.
            let stats = &report.per_node[j];
            assert_eq!(payload.meetings_attempted, stats.meetings_attempted);
            assert_eq!(payload.meetings_completed, stats.meetings_completed);
            assert_eq!(payload.meetings_served, stats.meetings_served);
            assert_eq!(payload.retries, stats.retries);
        }
        // The very first fetch (node 0) precedes all stats traffic, so
        // even its byte counters mirror the snapshot exactly.
        assert_eq!(wire[0].bytes_in, report.per_node[0].bytes_in);
        assert_eq!(wire[0].bytes_out, report.per_node[0].bytes_out);
    }

    #[test]
    fn telemetry_does_not_perturb_results() {
        let (frags, n_total) = ring_fragments(4);
        let truth = vec![1.0 / 12.0; 12];
        let run = |telemetry: bool| {
            let config = ClusterConfig {
                meetings: 24,
                seed: 11,
                telemetry,
                stats_endpoint: telemetry,
                ..ClusterConfig::default()
            };
            run_cluster(
                frags.clone(),
                n_total,
                JxpConfig::default(),
                &config,
                Some(&truth),
            )
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(on.footrule, off.footrule);
        assert_eq!(on.per_node, off.per_node);
        assert_eq!(on.bytes_total, off.bytes_total);
    }

    #[test]
    fn metrics_listener_serves_scrapes_mid_run() {
        use std::io::{Read as _, Write as _};
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 24,
            seed: 19,
            metrics_listen: Some("127.0.0.1:0".into()),
            ..ClusterConfig::default()
        };
        let scraped = std::sync::Mutex::new(String::new());
        let scrape = |ctx: &ClusterCtx<'_>| {
            let addr = ctx.metrics_addr.expect("listener requested");
            let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape");
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("send scrape");
            let mut out = String::new();
            stream.read_to_string(&mut out).expect("read scrape");
            *jxp_telemetry::lock_unpoisoned(&scraped) = out;
        };
        let hooks = ClusterHooks {
            concurrent: Some(&scrape),
            ..ClusterHooks::default()
        };
        let report = run_cluster_with(frags, n_total, JxpConfig::default(), &config, None, &hooks);
        assert_eq!(report.meetings_completed, 24);
        assert!(report.metrics_addr.is_some());
        assert!(
            report.telemetry.is_none(),
            "metrics_listen alone must not put telemetry in the report"
        );
        let body = jxp_telemetry::lock_unpoisoned(&scraped);
        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
        assert!(body.contains("jxp_node_meetings_attempted_total"), "{body}");
    }

    #[test]
    fn wrapped_handlers_see_every_frame_without_perturbing_results() {
        use std::sync::atomic::AtomicU64;

        struct Counting {
            inner: Arc<JxpNode>,
            seen: Arc<AtomicU64>,
        }
        impl FrameHandler for Counting {
            fn handle(&self, frame: jxp_wire::Frame) -> Option<jxp_wire::Frame> {
                self.seen.fetch_add(1, Ordering::AcqRel);
                self.inner.handle(frame)
            }
        }

        let (frags, n_total) = ring_fragments(4);
        let base = ClusterConfig {
            meetings: 24,
            seed: 11,
            ..ClusterConfig::default()
        };
        let control = run_cluster(frags.clone(), n_total, JxpConfig::default(), &base, None);

        let seen = Arc::new(AtomicU64::new(0));
        let wrap = |_: usize, node: &Arc<JxpNode>| {
            Arc::new(Counting {
                inner: Arc::clone(node),
                seen: Arc::clone(&seen),
            }) as Arc<dyn FrameHandler>
        };
        let hooks = ClusterHooks {
            wrap_handler: Some(&wrap),
            ..ClusterHooks::default()
        };
        let wrapped = run_cluster_with(frags, n_total, JxpConfig::default(), &base, None, &hooks);
        // A read-only wrapper changes nothing about the experiment…
        assert_eq!(wrapped.score_hash, control.score_hash);
        assert_eq!(wrapped.per_node, control.per_node);
        // …and every inbound request passed through it (hellos + meets).
        assert!(seen.load(Ordering::Acquire) >= 24 + 4);
    }

    #[test]
    fn premeetings_mode_runs_and_reports_footrule() {
        let (frags, n_total) = ring_fragments(3);
        // Uniform truth for a plain ring: every page has score 1/12.
        let truth = vec![1.0 / 12.0; 12];
        let config = ClusterConfig {
            meetings: 15,
            seed: 9,
            premeetings: true,
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, Some(&truth));
        assert_eq!(report.meetings_completed, 15);
        assert!(report.footrule.is_some());
    }

    #[test]
    fn transport_kind_parses_every_spelling() {
        assert_eq!(
            "loopback".parse::<TransportKind>(),
            Ok(TransportKind::Loopback)
        );
        assert_eq!("tcp".parse::<TransportKind>(), Ok(TransportKind::Tcp));
        assert_eq!("threads".parse::<TransportKind>(), Ok(TransportKind::Tcp));
        assert_eq!(
            "reactor".parse::<TransportKind>(),
            Ok(TransportKind::Reactor)
        );
        let err = "bogus".parse::<TransportKind>().unwrap_err();
        assert!(err.contains("loopback|tcp|threads|reactor"), "{err}");
    }

    #[test]
    fn reactor_transport_matches_loopback_and_tcp_bit_for_bit() {
        let (frags, n_total) = ring_fragments(4);
        let run = |transport: TransportKind, threads: usize| {
            let config = ClusterConfig {
                meetings: 24,
                seed: 11,
                premeetings: true,
                transport,
                threads,
                ..ClusterConfig::default()
            };
            run_cluster(frags.clone(), n_total, JxpConfig::default(), &config, None)
        };
        let want = run(TransportKind::Loopback, 1);
        assert_eq!(want.meetings_completed, 24);
        assert_eq!(want.inflight_peak, None, "no gauge off the reactor");
        let tcp = run(TransportKind::Tcp, 8);
        assert_eq!(tcp.score_hash, want.score_hash);
        for threads in [1usize, 2, 8] {
            let got = run(TransportKind::Reactor, threads);
            assert_eq!(got.score_hash, want.score_hash, "{threads} threads");
            assert_eq!(got.meetings_completed, 24, "{threads} threads");
            for (g, w) in got.per_node.iter().zip(&want.per_node) {
                assert_eq!(g.meetings_attempted, w.meetings_attempted);
                assert_eq!(g.meetings_completed, w.meetings_completed);
                assert_eq!(g.meetings_served, w.meetings_served);
                assert_eq!(g.bytes_out, w.bytes_out, "{threads} threads");
                assert_eq!(g.bytes_in, w.bytes_in, "{threads} threads");
            }
            assert!(got.inflight_peak.unwrap_or(0) >= 1, "{threads} threads");
        }
    }

    #[test]
    fn stall_on_the_reactor_is_survived_via_retry() {
        let (frags, n_total) = ring_fragments(4);
        let config = ClusterConfig {
            meetings: 12,
            seed: 5,
            transport: TransportKind::Reactor,
            retry: RetryPolicy {
                max_attempts: 4,
                base_delay: std::time::Duration::from_millis(1),
                max_delay: std::time::Duration::from_millis(2),
            },
            stall: Some(StallPlan {
                node_index: 1,
                at_meeting: 0,
                count: 2,
            }),
            ..ClusterConfig::default()
        };
        let report = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        // A swallowed request drains the multiplexed connection; the
        // retry reconnects and the run completes in full.
        assert_eq!(report.meetings_completed, 12);
        assert_eq!(report.meetings_failed, 0);
        assert!(report.retries >= 1, "expected recorded retries");
    }

    #[test]
    fn reactor_premeet_sweep_holds_many_probes_in_flight() {
        use std::io::{Read as _, Write as _};
        // 12 nodes -> 132 ordered pairs: the sweep's initial window
        // fill outpaces the loop thread's connect handshakes by orders
        // of magnitude, so dozens of probes pile up in flight.
        let (frags, n_total) = ring_fragments(12);
        let config = ClusterConfig {
            meetings: 24,
            seed: 23,
            premeetings: true,
            transport: TransportKind::Reactor,
            metrics_listen: Some("127.0.0.1:0".into()),
            ..ClusterConfig::default()
        };
        let scraped = std::sync::Mutex::new(String::new());
        let scrape = |ctx: &ClusterCtx<'_>| {
            let addr = ctx.metrics_addr.expect("listener requested");
            let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape");
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("send scrape");
            let mut out = String::new();
            stream.read_to_string(&mut out).expect("read scrape");
            *jxp_telemetry::lock_unpoisoned(&scraped) = out;
        };
        let hooks = ClusterHooks {
            concurrent: Some(&scrape),
            ..ClusterHooks::default()
        };
        let report = run_cluster_with(frags, n_total, JxpConfig::default(), &config, None, &hooks);
        assert_eq!(report.meetings_completed, 24);
        let peak = report.inflight_peak.expect("reactor reports its peak");
        assert!(peak >= 16, "expected a crowded window, saw peak {peak}");
        // The gauge is a first-class scrape metric, not just a report
        // field.
        let body = jxp_telemetry::lock_unpoisoned(&scraped);
        assert!(body.contains("jxp_node_inflight_meetings"), "{body}");
        assert!(body.contains("jxp_node_inflight_meetings_peak"), "{body}");
    }

    #[test]
    fn reactor_run_resumes_bit_identically() {
        let (frags, n_total) = ring_fragments(4);
        let base = ClusterConfig {
            meetings: 60,
            seed: 17,
            premeetings: true,
            transport: TransportKind::Reactor,
            checkpoint_every: 4,
            ..ClusterConfig::default()
        };
        let control = run_cluster(frags.clone(), n_total, JxpConfig::default(), &base, None);

        let dir = temp_state_dir("reactor-resume");
        let interrupted = ClusterConfig {
            meetings: 30,
            state_dir: Some(dir.clone()),
            checkpoint_on_exit: false,
            ..base.clone()
        };
        let half = run_cluster(
            frags.clone(),
            n_total,
            JxpConfig::default(),
            &interrupted,
            None,
        );
        assert_eq!(half.meetings_completed, 30);

        let resumed_cfg = ClusterConfig {
            state_dir: Some(dir.clone()),
            ..base.clone()
        };
        let resumed = run_cluster(frags, n_total, JxpConfig::default(), &resumed_cfg, None);
        // Journal-before-reply held over the multiplexed wire: the back
        // half replays onto the recovered state and lands on the exact
        // hash of the uninterrupted run.
        assert_eq!(resumed.meetings_completed, 30);
        assert_eq!(resumed.score_hash, control.score_hash);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Fresh state directory under the OS temp dir, unique per call.
    fn temp_state_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("jxp-cluster-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn resumed_run_matches_an_uninterrupted_run_bit_for_bit() {
        let truth = vec![1.0 / 12.0; 12];
        for threads in [1usize, 2, 8] {
            let (frags, n_total) = ring_fragments(4);
            let base = ClusterConfig {
                meetings: 80,
                seed: 17,
                premeetings: true,
                threads,
                checkpoint_every: 4,
                ..ClusterConfig::default()
            };
            let control = run_cluster(
                frags.clone(),
                n_total,
                JxpConfig::default(),
                &base,
                Some(&truth),
            );

            // Same schedule, but die after 40 meetings without a final
            // checkpoint: disk holds mid-run checkpoints plus a WAL tail,
            // exactly what a crash leaves behind.
            let dir = temp_state_dir("resume");
            let interrupted = ClusterConfig {
                meetings: 40,
                state_dir: Some(dir.clone()),
                checkpoint_on_exit: false,
                ..base.clone()
            };
            let half = run_cluster(
                frags.clone(),
                n_total,
                JxpConfig::default(),
                &interrupted,
                None,
            );
            assert_eq!(half.meetings_completed, 40, "{threads} threads");

            let resumed_cfg = ClusterConfig {
                state_dir: Some(dir.clone()),
                ..base.clone()
            };
            let resumed = run_cluster(
                frags,
                n_total,
                JxpConfig::default(),
                &resumed_cfg,
                Some(&truth),
            );
            // Only the back half actually executed…
            assert_eq!(resumed.meetings_completed, 40, "{threads} threads");
            // …yet the final state is bit-identical to never stopping.
            assert_eq!(resumed.score_hash, control.score_hash, "{threads} threads");
            assert_eq!(resumed.footrule, control.footrule, "{threads} threads");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn completed_run_resumes_as_a_no_op() {
        let (frags, n_total) = ring_fragments(4);
        let dir = temp_state_dir("noop");
        let config = ClusterConfig {
            meetings: 24,
            seed: 13,
            state_dir: Some(dir.clone()),
            ..ClusterConfig::default()
        };
        let first = run_cluster(frags.clone(), n_total, JxpConfig::default(), &config, None);
        assert_eq!(first.meetings_completed, 24);
        // The exit checkpoint covered everything: a rerun over the same
        // state dir skips every meeting and lands on the same hash.
        let second = run_cluster(frags, n_total, JxpConfig::default(), &config, None);
        assert_eq!(second.meetings_completed, 0);
        assert_eq!(second.meetings_attempted, 0);
        assert_eq!(second.score_hash, first.score_hash);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_meeting_is_repaired_from_the_responders_journal() {
        use jxp_wire::Frame;

        let (frags, n_total) = ring_fragments(2);
        let dir = temp_state_dir("torn");
        // Control: the full run, never interrupted.
        let base = ClusterConfig {
            meetings: 9,
            seed: 29,
            checkpoint_every: 3,
            ..ClusterConfig::default()
        };
        let control = run_cluster(frags.clone(), n_total, JxpConfig::default(), &base, None);

        // Crash reproduction: run all but the last meeting durably, then
        // drive the final meeting's request into the responder by hand
        // and drop the reply on the floor — the responder journaled a
        // serve, the initiator never absorbed. That is exactly the torn
        // state a mid-meeting SIGKILL leaves.
        let interrupted = ClusterConfig {
            meetings: 8,
            state_dir: Some(dir.clone()),
            checkpoint_on_exit: false,
            ..base.clone()
        };
        run_cluster(
            frags.clone(),
            n_total,
            JxpConfig::default(),
            &interrupted,
            None,
        );
        // Replay the schedule draw to learn meeting 8's initiator/target.
        let mut rng = StdRng::seed_from_u64(base.seed);
        let mut pair = (0usize, 0 as NodeId);
        for m in 0..9usize {
            let initiator = m % 2;
            let mut t = rng.gen_range(0..1usize);
            if t >= initiator {
                t += 1;
            }
            pair = (initiator, t as NodeId);
        }
        let (initiator, target) = pair;
        {
            // Re-open the two nodes from disk, as `run_cluster` would.
            let store: SharedStore = Arc::new(DirStore::open(&dir).expect("reopen state dir"));
            let perms = MipsPermutations::generate(base.mips_dims, base.seed ^ 0x5a5a);
            let nodes: Vec<Arc<JxpNode>> = (0..2)
                .map(|i| {
                    let rec = store
                        .load(&format!("node-{i}"))
                        .expect("load")
                        .expect("state exists");
                    let node = Arc::new(JxpNode::with_metrics(
                        i as NodeId,
                        rec.peer,
                        &perms,
                        NodeMetrics::detached(),
                    ));
                    node.attach_persistence(NodePersist::new(
                        Arc::clone(&store),
                        format!("node-{i}"),
                        PersistConfig {
                            checkpoint_every: base.checkpoint_every,
                            ..PersistConfig::default()
                        },
                        StoreMetrics::detached(),
                        rec.seq,
                    ));
                    node
                })
                .collect();
            let request = Frame::MeetRequest(nodes[initiator].current_payload());
            let reply = nodes[target as usize].handle(request);
            assert!(matches!(reply, Some(Frame::MeetReply(_))));
            // …and the reply is dropped here: the initiator dies first.
        }

        // Resume over the torn directory: meeting 8 classifies as
        // Repair, the initiator absorbs the journaled outbound, and the
        // final state matches the uninterrupted control exactly.
        let resumed_cfg = ClusterConfig {
            state_dir: Some(dir.clone()),
            ..base.clone()
        };
        let resumed = run_cluster(frags, n_total, JxpConfig::default(), &resumed_cfg, None);
        assert_eq!(resumed.meetings_completed, 0, "nothing left to execute");
        assert_eq!(resumed.score_hash, control.score_hash);
        std::fs::remove_dir_all(&dir).ok();
    }
}
