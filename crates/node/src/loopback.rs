//! Deterministic in-memory transport.
//!
//! Every request is encoded with [`jxp_wire::encode_frame`], "delivered"
//! by decoding the bytes on the responder side, handled, and the reply
//! travels back the same way — so loopback exchanges exercise the real
//! codec and report exact wire byte counts, without sockets or threads.
//! Fault injection lets tests and the cluster driver simulate dropped
//! connections and stalled peers on demand.

use crate::transport::{Exchange, FrameHandler, NodeId, Transport, TransportError};
use jxp_wire::{decode_frame, encode_frame, Frame};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// An injected failure for the next request(s) addressed to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The connection is refused: the request never reaches the handler
    /// and the initiator sees [`TransportError::Unreachable`].
    DropNext,
    /// The request is lost in flight: the handler is never invoked and
    /// the initiator sees [`TransportError::Timeout`].
    StallNext,
}

#[derive(Default)]
struct Inner {
    handlers: HashMap<NodeId, Arc<dyn FrameHandler>>,
    faults: HashMap<NodeId, VecDeque<Fault>>,
}

/// Shared in-memory "network" connecting loopback nodes.
#[derive(Clone, Default)]
pub struct LoopbackNetwork {
    inner: Arc<Mutex<Inner>>,
}

impl LoopbackNetwork {
    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry access that survives poisoning: a handler that panicked
    /// while the registry lock was held (it isn't held across handler
    /// calls, but defense in depth) must not wedge every later meeting.
    fn inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        jxp_telemetry::sync::lock_unpoisoned(&self.inner)
    }

    /// Attach `handler` as the responder for `id` (replacing any previous).
    pub fn register(&self, id: NodeId, handler: Arc<dyn FrameHandler>) {
        self.inner().handlers.insert(id, handler);
    }

    /// Detach the responder for `id`; subsequent requests to it fail
    /// with [`TransportError::Unreachable`].
    pub fn unregister(&self, id: NodeId) {
        self.inner().handlers.remove(&id);
    }

    /// Queue a fault to hit the next request addressed to `id`. Faults
    /// queue FIFO and each consumes exactly one request.
    pub fn inject_fault(&self, id: NodeId, fault: Fault) {
        self.inner().faults.entry(id).or_default().push_back(fault);
    }
}

impl Transport for LoopbackNetwork {
    fn request(&self, peer: NodeId, frame: &Frame) -> Result<Exchange, TransportError> {
        // Resolve the handler and pop any pending fault under the lock,
        // then drop it: the handler may itself issue requests (a node
        // answering while another meeting is in flight) and must not
        // deadlock against the registry.
        let (handler, fault) = {
            let mut inner = self.inner();
            let fault = inner.faults.get_mut(&peer).and_then(|q| q.pop_front());
            let handler = inner.handlers.get(&peer).cloned();
            (handler, fault)
        };
        match fault {
            Some(Fault::DropNext) => {
                return Err(TransportError::Unreachable(format!(
                    "connection to node {peer} refused (injected)"
                )))
            }
            Some(Fault::StallNext) => return Err(TransportError::Timeout),
            None => {}
        }
        let handler = handler.ok_or_else(|| {
            TransportError::Unreachable(format!("no node {peer} on loopback network"))
        })?;

        // Round-trip through the real codec in both directions.
        let request_bytes = encode_frame(frame);
        let (delivered, _) = decode_frame(&request_bytes)?;
        let reply = handler.handle(delivered).ok_or(TransportError::Timeout)?;
        let reply_bytes = encode_frame(&reply);
        let (reply, _) = decode_frame(&reply_bytes)?;
        Ok(Exchange {
            reply,
            bytes_sent: request_bytes.len() as u64,
            bytes_received: reply_bytes.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_wire::encoded_len;

    struct Echo;

    impl FrameHandler for Echo {
        fn handle(&self, frame: Frame) -> Option<Frame> {
            match frame {
                Frame::Hello { node_id, num_pages } => Some(Frame::Hello {
                    node_id: node_id + 100,
                    num_pages,
                }),
                other => Some(other),
            }
        }
    }

    struct Mute;

    impl FrameHandler for Mute {
        fn handle(&self, _frame: Frame) -> Option<Frame> {
            None
        }
    }

    #[test]
    fn roundtrip_reports_exact_codec_bytes() {
        let net = LoopbackNetwork::new();
        net.register(7, Arc::new(Echo));
        let req = Frame::Hello {
            node_id: 1,
            num_pages: 42,
        };
        let ex = net.request(7, &req).unwrap();
        assert_eq!(
            ex.reply,
            Frame::Hello {
                node_id: 101,
                num_pages: 42
            }
        );
        assert_eq!(ex.bytes_sent, encoded_len(&req) as u64);
        assert_eq!(ex.bytes_received, encoded_len(&ex.reply) as u64);
    }

    #[test]
    fn unknown_peer_is_unreachable() {
        let net = LoopbackNetwork::new();
        let err = net.request(9, &Frame::Ack { of: 1 }).unwrap_err();
        assert!(matches!(err, TransportError::Unreachable(_)));
    }

    #[test]
    fn mute_handler_times_out() {
        let net = LoopbackNetwork::new();
        net.register(3, Arc::new(Mute));
        let err = net.request(3, &Frame::Ack { of: 1 }).unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
    }

    #[test]
    fn faults_fire_once_in_fifo_order() {
        let net = LoopbackNetwork::new();
        net.register(5, Arc::new(Echo));
        net.inject_fault(5, Fault::DropNext);
        net.inject_fault(5, Fault::StallNext);
        let req = Frame::Ack { of: 2 };
        assert!(matches!(
            net.request(5, &req).unwrap_err(),
            TransportError::Unreachable(_)
        ));
        assert!(matches!(
            net.request(5, &req).unwrap_err(),
            TransportError::Timeout
        ));
        assert!(net.request(5, &req).is_ok());
    }
}
