//! Per-peer inverted index with tf·idf scoring.
//!
//! Every Minerva peer "is a full-fledged search engine with its own
//! crawler, indexer, and query processor" — this is the indexer: postings
//! lists over the documents of the peer's local pages, with idf computed
//! from the peer's own collection statistics (a peer has no global view).

use crate::corpus::{Corpus, TermId};
use crate::topk::{ta_topk, ScoredList, TaResult};
use jxp_webgraph::{FxHashMap, PageId, Subgraph};

/// One posting: a local document containing the term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The page (document) id.
    pub page: PageId,
    /// Term frequency in that document.
    pub tf: u32,
}

/// A peer's inverted index over its local fragment.
#[derive(Debug, Clone, Default)]
pub struct PeerIndex {
    postings: FxHashMap<TermId, Vec<Posting>>,
    num_docs: usize,
}

impl PeerIndex {
    /// Index the documents of all pages in `fragment`.
    pub fn build(fragment: &Subgraph, corpus: &Corpus) -> Self {
        let mut postings: FxHashMap<TermId, Vec<Posting>> = FxHashMap::default();
        for &page in fragment.pages() {
            for &(term, tf) in &corpus.document(page).terms {
                postings.entry(term).or_default().push(Posting { page, tf });
            }
        }
        PeerIndex {
            postings,
            num_docs: fragment.num_pages(),
        }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Document frequency of a term in this peer's collection.
    pub fn df(&self, t: TermId) -> usize {
        self.postings.get(&t).map_or(0, Vec::len)
    }

    /// Postings list of a term (empty slice if absent).
    pub fn postings(&self, t: TermId) -> &[Posting] {
        self.postings.get(&t).map_or(&[], Vec::as_slice)
    }

    /// Smoothed inverse document frequency:
    /// `ln(1 + (N_docs − df + 0.5) / (df + 0.5))` (BM25-style, always > 0).
    pub fn idf(&self, t: TermId) -> f64 {
        let df = self.df(t) as f64;
        let n = self.num_docs as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// tf·idf scores of all local documents matching *any* query term
    /// (disjunctive semantics, like the paper's Web queries):
    /// `score(d) = Σ_t (1 + ln tf(t, d)) · idf(t)`.
    pub fn score_query(&self, terms: &[TermId]) -> Vec<(PageId, f64)> {
        let mut acc: FxHashMap<PageId, f64> = FxHashMap::default();
        for &t in terms {
            let idf = self.idf(t);
            for p in self.postings(t) {
                *acc.entry(p.page).or_insert(0.0) += (1.0 + (p.tf as f64).ln()) * idf;
            }
        }
        let mut out: Vec<(PageId, f64)> = acc.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }
}

/// Score-sorted posting lists keyed by term, precomputed from a
/// [`PeerIndex`] for query serving.
///
/// The raw index stores `(page, tf)` postings and re-derives scores on
/// every query; a serving node instead materializes each term's list as
/// descending `(page, (1 + ln tf) · idf)` entries once, so per-request
/// work is a threshold-algorithm walk over list *prefixes* — the same
/// math as [`PeerIndex::score_query`], pinned by a test below.
#[derive(Debug, Clone, Default)]
pub struct ServingIndex {
    lists: FxHashMap<TermId, ScoredList>,
    num_docs: usize,
}

impl ServingIndex {
    /// Precompute score-sorted lists for every indexed term.
    pub fn build(index: &PeerIndex) -> Self {
        let lists = index
            .postings
            .iter()
            .map(|(&t, posts)| {
                let idf = index.idf(t);
                let scored = ScoredList::from_pairs(
                    posts
                        .iter()
                        .map(|p| (p.page, (1.0 + (p.tf as f64).ln()) * idf)),
                );
                (t, scored)
            })
            .collect();
        ServingIndex {
            lists,
            num_docs: index.num_docs,
        }
    }

    /// Number of documents behind the index.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Number of distinct indexed terms.
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// The score-sorted list of one term (`None` for unindexed terms).
    pub fn list(&self, t: TermId) -> Option<&ScoredList> {
        self.lists.get(&t)
    }

    /// Exact tf·idf top-`k` for a bag-of-words query, via TA over the
    /// precomputed lists. Terms without postings contribute nothing.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn topk(&self, terms: &[TermId], k: usize) -> TaResult {
        let lists: Vec<&ScoredList> = terms.iter().filter_map(|&t| self.lists.get(&t)).collect();
        ta_topk(&lists, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusParams;
    use jxp_pagerank::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CategorizedGraph, Corpus) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 60,
                intra_out_per_node: 3,
                cross_fraction: 0.1,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(2),
        );
        (cg, corpus)
    }

    #[test]
    fn index_counts_match_corpus() {
        let (cg, corpus) = setup();
        let frag = Subgraph::from_pages(&cg.graph, (0..30).map(PageId));
        let idx = PeerIndex::build(&frag, &corpus);
        assert_eq!(idx.num_docs(), 30);
        // Every (term, doc) of the fragment appears exactly once.
        let total_postings: usize = (0..30)
            .map(|p| corpus.document(PageId(p)).terms.len())
            .sum();
        let indexed: usize = corpus
            .documents()
            .iter()
            .flat_map(|d| d.terms.iter().map(move |&(t, _)| (d.page, t)))
            .filter(|&(p, t)| p.0 < 30 && idx.postings(t).iter().any(|x| x.page == p))
            .count();
        assert_eq!(indexed, total_postings);
    }

    #[test]
    fn idf_decreases_with_df() {
        let (cg, corpus) = setup();
        let frag = Subgraph::from_pages(&cg.graph, (0..60).map(PageId));
        let idx = PeerIndex::build(&frag, &corpus);
        // Background term 0 (most frequent) vs a rarer background term.
        let common = crate::corpus::TermId(0);
        let rare_df = (0..400u32)
            .map(crate::corpus::TermId)
            .filter(|&t| idx.df(t) > 0)
            .min_by_key(|&t| idx.df(t))
            .unwrap();
        assert!(idx.df(common) > idx.df(rare_df));
        assert!(idx.idf(common) < idx.idf(rare_df));
        assert!(idx.idf(common) > 0.0);
    }

    #[test]
    fn query_scoring_prefers_on_topic_documents() {
        let (cg, corpus) = setup();
        let frag = Subgraph::from_pages(&cg.graph, (0..120).map(PageId));
        let idx = PeerIndex::build(&frag, &corpus);
        let terms = corpus.top_topic_terms(0, 3);
        let results = idx.score_query(&terms);
        assert!(!results.is_empty());
        // Top results must be category-0 documents.
        for &(page, _) in results.iter().take(5) {
            assert_eq!(corpus.category(page), 0, "off-topic page {page:?} in top-5");
        }
        // Scores sorted descending.
        assert!(results.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn unknown_term_scores_nothing() {
        let (cg, corpus) = setup();
        let frag = Subgraph::from_pages(&cg.graph, (0..10).map(PageId));
        let idx = PeerIndex::build(&frag, &corpus);
        let results = idx.score_query(&[crate::corpus::TermId(999_999)]);
        assert!(results.is_empty());
        assert_eq!(idx.df(crate::corpus::TermId(999_999)), 0);
    }

    #[test]
    fn serving_index_topk_matches_exhaustive_scoring() {
        let (cg, corpus) = setup();
        let frag = Subgraph::from_pages(&cg.graph, (0..120).map(PageId));
        let idx = PeerIndex::build(&frag, &corpus);
        let serving = ServingIndex::build(&idx);
        assert_eq!(serving.num_docs(), idx.num_docs());
        for cat in 0..corpus.num_categories() {
            let terms = corpus.top_topic_terms(cat, 3);
            let exhaustive = idx.score_query(&terms);
            let served = serving.topk(&terms, 10);
            assert_eq!(served.hits.len(), exhaustive.len().min(10));
            for (hit, &(page, score)) in served.hits.iter().zip(exhaustive.iter()) {
                assert_eq!(hit.page, page);
                assert!((hit.tfidf - score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn serving_index_lists_are_score_sorted() {
        let (cg, corpus) = setup();
        let frag = Subgraph::from_pages(&cg.graph, (0..120).map(PageId));
        let idx = PeerIndex::build(&frag, &corpus);
        let serving = ServingIndex::build(&idx);
        assert!(serving.num_terms() > 0);
        let term = corpus.top_topic_terms(0, 1)[0];
        let list = serving.list(term).expect("topic term is indexed");
        assert_eq!(list.len(), idx.df(term));
        assert!(serving.list(crate::corpus::TermId(999_999)).is_none());
    }

    #[test]
    fn serving_index_skips_unindexed_terms() {
        let (cg, corpus) = setup();
        let frag = Subgraph::from_pages(&cg.graph, (0..10).map(PageId));
        let serving = ServingIndex::build(&PeerIndex::build(&frag, &corpus));
        let r = serving.topk(&[crate::corpus::TermId(999_999)], 5);
        assert!(r.hits.is_empty());
    }
}
