//! Query routing and result merging across peers.
//!
//! §6.3: "A Web query issued by a peer is first executed locally on the
//! peer's own content, and then possibly routed to a small number of
//! remote peers for additional results." Peers are ranked for a query by
//! how much of the query vocabulary their collections cover (a standard
//! CORI-style resource-selection score on df statistics); the per-peer
//! result lists are merged by page, keeping each page's best tf·idf score.

use crate::corpus::Query;
use crate::index::PeerIndex;
use crate::query::{execute_local, SearchHit};
use jxp_webgraph::FxHashMap;

/// Score a peer's promise for a query: sum over query terms of
/// `df(t) / (df(t) + 50)` — saturating df evidence, so a peer with many
/// matching documents for every term wins.
pub fn peer_score(index: &PeerIndex, query: &Query) -> f64 {
    query
        .terms
        .iter()
        .map(|&t| {
            let df = index.df(t) as f64;
            df / (df + 50.0)
        })
        .sum()
}

/// Pick the `fanout` most promising peers for a query (ties by index).
pub fn route(indexes: &[PeerIndex], query: &Query, fanout: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = indexes
        .iter()
        .enumerate()
        .map(|(i, idx)| (i, peer_score(idx, query)))
        .collect();
    scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.into_iter().take(fanout).map(|(i, _)| i).collect()
}

/// Authority-aware peer score — the paper's §7 future-work item
/// ("integrate the JXP scores into the query routing mechanism in order to
/// guide the search for relevant peers"), implemented here: the df-based
/// resource-selection evidence is boosted by the JXP authority mass of the
/// peer's documents that match the query, so a peer holding *authoritative*
/// answers outranks a peer holding merely *many* answers.
///
/// `authority_weight` interpolates: 0 reproduces [`peer_score`]; 1 weighs
/// the accumulated authority of matching documents as strongly as the df
/// evidence.
pub fn peer_score_with_authority(
    index: &PeerIndex,
    query: &Query,
    jxp: &jxp_pagerank::Ranking,
    authority_weight: f64,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&authority_weight),
        "authority_weight must be in [0, 1]"
    );
    let df_evidence = peer_score(index, query);
    if authority_weight == 0.0 {
        return df_evidence;
    }
    // Authority mass of this peer's matching documents, deduplicated.
    let mut seen = jxp_webgraph::FxHashSet::default();
    let mut mass = 0.0;
    for &t in &query.terms {
        for p in index.postings(t) {
            if seen.insert(p.page) {
                mass += jxp.score(p.page).unwrap_or(0.0);
            }
        }
    }
    // Saturating authority evidence on a comparable scale to the df term:
    // `mass` is a PageRank mass (≤ 1 network-wide); the knee at ~10 top
    // pages' worth of mass keeps a few strong authorities decisive.
    let knee = 10.0 / jxp.len().max(1) as f64;
    let authority_evidence = query.terms.len() as f64 * mass / (mass + knee);
    (1.0 - authority_weight) * df_evidence + authority_weight * authority_evidence
}

/// [`route`] with the §7 authority-aware peer score.
pub fn route_with_authority(
    indexes: &[PeerIndex],
    query: &Query,
    fanout: usize,
    jxp: &jxp_pagerank::Ranking,
    authority_weight: f64,
) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = indexes
        .iter()
        .enumerate()
        .map(|(i, idx)| {
            (
                i,
                peer_score_with_authority(idx, query, jxp, authority_weight),
            )
        })
        .collect();
    scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.into_iter().take(fanout).map(|(i, _)| i).collect()
}

/// Execute a routed query: run it locally on each selected peer (taking
/// `per_peer_k` results from each) and merge by page, keeping the maximum
/// tf·idf score for pages returned by several peers.
pub fn execute_routed(
    indexes: &[PeerIndex],
    query: &Query,
    fanout: usize,
    per_peer_k: usize,
) -> Vec<SearchHit> {
    let mut merged: FxHashMap<jxp_webgraph::PageId, f64> = FxHashMap::default();
    for peer in route(indexes, query, fanout) {
        for hit in execute_local(&indexes[peer], query, per_peer_k) {
            let e = merged.entry(hit.page).or_insert(f64::NEG_INFINITY);
            *e = e.max(hit.tfidf);
        }
    }
    let mut hits: Vec<SearchHit> = merged
        .into_iter()
        .map(|(page, tfidf)| SearchHit { page, tfidf })
        .collect();
    hits.sort_unstable_by(|a, b| {
        b.tfidf
            .partial_cmp(&a.tfidf)
            .unwrap()
            .then(a.page.cmp(&b.page))
    });
    hits
}

/// Execute a routed query with the threshold algorithm ([`crate::topk`]):
/// the selected peers contribute per-term score lists (term-wise maximum
/// across peers), and TA finds the exact top-`k` of the summed scores
/// while shipping only list prefixes. Returns the hits plus the access
/// accounting.
pub fn execute_routed_topk(
    indexes: &[PeerIndex],
    query: &Query,
    fanout: usize,
    k: usize,
) -> crate::topk::TaResult {
    let peers = route(indexes, query, fanout);
    let lists: Vec<crate::topk::ScoredList> = query
        .terms
        .iter()
        .map(|&t| {
            crate::topk::ScoredList::from_pairs(peers.iter().flat_map(|&p| {
                let idx = &indexes[p];
                let idf = idx.idf(t);
                idx.postings(t)
                    .iter()
                    .map(move |post| (post.page, (1.0 + (post.tf as f64).ln()) * idf))
            }))
        })
        .collect();
    crate::topk::ta_topk(&lists, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusParams};
    use jxp_pagerank::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::{PageId, Subgraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Corpus, Vec<PeerIndex>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 80,
                intra_out_per_node: 3,
                cross_fraction: 0.1,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(2),
        );
        // Peer 0: category-0 pages; peer 1: category-1 pages;
        // peer 2: a mixed slice overlapping both.
        let indexes = vec![
            PeerIndex::build(
                &Subgraph::from_pages(&cg.graph, (0..80).map(PageId)),
                &corpus,
            ),
            PeerIndex::build(
                &Subgraph::from_pages(&cg.graph, (80..160).map(PageId)),
                &corpus,
            ),
            PeerIndex::build(
                &Subgraph::from_pages(&cg.graph, (40..120).map(PageId)),
                &corpus,
            ),
        ];
        (corpus, indexes)
    }

    #[test]
    fn routing_prefers_on_topic_peers() {
        let (corpus, indexes) = setup();
        let q0 = crate::corpus::Query {
            name: "c0".into(),
            terms: corpus.top_topic_terms(0, 2),
            category: 0,
        };
        let routed = route(&indexes, &q0, 2);
        assert_eq!(routed[0], 0, "peer 0 holds all of category 0");
        assert!(routed.contains(&2), "the mixed peer is second best");
        let q1 = crate::corpus::Query {
            name: "c1".into(),
            terms: corpus.top_topic_terms(1, 2),
            category: 1,
        };
        assert_eq!(route(&indexes, &q1, 1), vec![1]);
    }

    #[test]
    fn merged_results_deduplicate_pages() {
        let (corpus, indexes) = setup();
        let q = crate::corpus::Query {
            name: "c0".into(),
            terms: corpus.top_topic_terms(0, 2),
            category: 0,
        };
        let hits = execute_routed(&indexes, &q, 3, 20);
        let mut pages: Vec<PageId> = hits.iter().map(|h| h.page).collect();
        let before = pages.len();
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), before, "duplicate pages in merged results");
        assert!(hits.windows(2).all(|w| w[0].tfidf >= w[1].tfidf));
    }

    #[test]
    fn topk_execution_matches_term_max_aggregate() {
        let (corpus, indexes) = setup();
        let q = crate::corpus::Query {
            name: "c0".into(),
            terms: corpus.top_topic_terms(0, 3),
            category: 0,
        };
        let r = execute_routed_topk(&indexes, &q, 3, 10);
        assert_eq!(r.hits.len(), 10);
        assert!(r.hits.windows(2).all(|w| w[0].tfidf >= w[1].tfidf));
        // Verify against an exhaustive computation of the same aggregate
        // (per-term max across the routed peers, summed over terms).
        let peers = route(&indexes, &q, 3);
        let mut acc: FxHashMap<PageId, f64> = FxHashMap::default();
        for &t in &q.terms {
            let mut per_term: FxHashMap<PageId, f64> = FxHashMap::default();
            for &p in &peers {
                let idf = indexes[p].idf(t);
                for post in indexes[p].postings(t) {
                    let s = (1.0 + (post.tf as f64).ln()) * idf;
                    let e = per_term.entry(post.page).or_insert(f64::NEG_INFINITY);
                    *e = e.max(s);
                }
            }
            for (p, s) in per_term {
                *acc.entry(p).or_insert(0.0) += s;
            }
        }
        let mut expect: Vec<(PageId, f64)> = acc.into_iter().collect();
        expect.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for (hit, (p, s)) in r.hits.iter().zip(expect.iter()) {
            assert!((hit.tfidf - s).abs() < 1e-9, "{:?} vs {p:?}", hit.page);
        }
        // TA should not have read everything.
        assert!(r.sorted_accesses <= r.total_entries);
    }

    use jxp_webgraph::FxHashMap;

    #[test]
    fn authority_aware_routing_prefers_authoritative_peers() {
        // Peer 0 holds many matching documents of no authority; peer 1
        // holds two matching documents that carry all the JXP mass.
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 1,
                nodes_per_category: 40,
                intra_out_per_node: 3,
                cross_fraction: 0.0,
            },
            &mut StdRng::seed_from_u64(9),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(10),
        );
        let indexes = vec![
            PeerIndex::build(
                &Subgraph::from_pages(&cg.graph, (0..30).map(PageId)),
                &corpus,
            ),
            PeerIndex::build(
                &Subgraph::from_pages(&cg.graph, (30..40).map(PageId)),
                &corpus,
            ),
        ];
        let q = crate::corpus::Query {
            name: "auth".into(),
            terms: corpus.top_topic_terms(0, 2),
            category: 0,
        };
        // All authority lives at pages 30..40 (peer 1's fragment).
        let jxp = jxp_pagerank::Ranking::from_scores(
            (0..40u32).map(|p| (PageId(p), if p >= 30 { 0.09 } else { 1e-6 })),
        );
        // Pure df evidence: the big peer wins.
        assert_eq!(route_with_authority(&indexes, &q, 1, &jxp, 0.0), vec![0]);
        // Authority-guided: the authoritative peer wins.
        assert_eq!(route_with_authority(&indexes, &q, 1, &jxp, 0.9), vec![1]);
        // Scores are monotone in the weight direction for the small peer.
        let s_low = peer_score_with_authority(&indexes[1], &q, &jxp, 0.1);
        let s_high = peer_score_with_authority(&indexes[1], &q, &jxp, 0.9);
        assert!(s_high > s_low);
    }

    #[test]
    #[should_panic(expected = "authority_weight")]
    fn authority_weight_out_of_range_panics() {
        let (corpus, indexes) = setup();
        let q = crate::corpus::Query {
            name: "x".into(),
            terms: corpus.top_topic_terms(0, 1),
            category: 0,
        };
        let jxp = jxp_pagerank::Ranking::from_scores(std::iter::empty());
        let _ = peer_score_with_authority(&indexes[0], &q, &jxp, 1.5);
    }

    #[test]
    fn fanout_bounds_peers_consulted() {
        let (corpus, indexes) = setup();
        let q = crate::corpus::Query {
            name: "c1".into(),
            terms: corpus.top_topic_terms(1, 2),
            category: 1,
        };
        // Fanout 1 routes to peer 1 only → all hits from pages 80..160.
        let hits = execute_routed(&indexes, &q, 1, 50);
        assert!(hits.iter().all(|h| (80..160).contains(&h.page.0)));
    }
}
