//! Threshold-algorithm top-k over distributed score lists.
//!
//! The real Minerva system (Bender, Michel, Triantafillou, Weikum,
//! Zimmer — VLDB 2005, cited as reference 4) executes queries with
//! Fagin-style top-k algorithms over per-term score lists so that peers
//! ship only list *prefixes* instead of full postings. This module
//! implements the classic **TA** (threshold algorithm): round-robin
//! sorted access over the per-term lists, random access to complete each
//! newly seen page's score, stopping as soon as the `k`-th best complete
//! score reaches the threshold (the sum of the last-seen scores per
//! list). The result is *exactly* the top-k — verified against exhaustive
//! scoring in the tests — at a fraction of the accesses on skewed
//! (tf·idf-like) score distributions.

use crate::query::SearchHit;
use jxp_webgraph::{FxHashMap, FxHashSet, PageId};

/// One term's score list: descending scores with a random-access index.
#[derive(Debug, Clone, Default)]
pub struct ScoredList {
    entries: Vec<(PageId, f64)>,
    index: FxHashMap<PageId, f64>,
}

impl ScoredList {
    /// Build from arbitrary `(page, score)` pairs; duplicates keep the
    /// maximum score (the cross-peer merge rule).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (PageId, f64)>) -> Self {
        let mut index: FxHashMap<PageId, f64> = FxHashMap::default();
        for (p, s) in pairs {
            let e = index.entry(p).or_insert(f64::NEG_INFINITY);
            *e = e.max(s);
        }
        let mut entries: Vec<(PageId, f64)> = index.iter().map(|(&p, &s)| (p, s)).collect();
        entries.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ScoredList { entries, index }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted access: the `i`-th best entry.
    fn sorted(&self, i: usize) -> Option<(PageId, f64)> {
        self.entries.get(i).copied()
    }

    /// Random access: the score of `p` in this list (0 if absent —
    /// disjunctive query semantics).
    fn random(&self, p: PageId) -> f64 {
        self.index.get(&p).copied().unwrap_or(0.0)
    }
}

/// Outcome of a TA run, with access accounting.
#[derive(Debug, Clone)]
pub struct TaResult {
    /// The exact top-k by summed score, best first.
    pub hits: Vec<SearchHit>,
    /// Sorted accesses performed (list-prefix entries shipped).
    pub sorted_accesses: usize,
    /// Random accesses performed (per-page score lookups).
    pub random_accesses: usize,
    /// Total entries across all lists (the exhaustive-cost yardstick).
    pub total_entries: usize,
}

/// Fagin's TA over `lists`, combining scores by **sum**, returning the
/// exact top-`k`. Accepts owned or borrowed lists, so a precomputed
/// [`crate::index::ServingIndex`] can serve without cloning entries.
///
/// # Panics
/// Panics if `k == 0`.
pub fn ta_topk<L: std::borrow::Borrow<ScoredList>>(lists: &[L], k: usize) -> TaResult {
    assert!(k > 0, "top-0 is undefined");
    let lists: Vec<&ScoredList> = lists.iter().map(std::borrow::Borrow::borrow).collect();
    let lists = lists.as_slice();
    let total_entries: usize = lists.iter().map(|l| l.len()).sum();
    let mut seen: FxHashSet<PageId> = FxHashSet::default();
    // Current top-k candidates: (score, page), kept sorted ascending so
    // [0] is the weakest member.
    let mut best: Vec<(f64, PageId)> = Vec::with_capacity(k + 1);
    let mut sorted_accesses = 0usize;
    let mut random_accesses = 0usize;

    let mut depth = 0usize;
    loop {
        let mut any = false;
        let mut threshold = 0.0;
        for list in lists {
            match list.sorted(depth) {
                None => {}
                Some((page, score)) => {
                    any = true;
                    sorted_accesses += 1;
                    threshold += score;
                    if seen.insert(page) {
                        // Complete the page's score by random access.
                        let mut total = 0.0;
                        for other in lists {
                            random_accesses += 1;
                            total += other.random(page);
                        }
                        let pos = best
                            .binary_search_by(|probe| {
                                probe
                                    .0
                                    .partial_cmp(&total)
                                    .unwrap()
                                    .then(page.cmp(&probe.1))
                            })
                            .unwrap_or_else(|e| e);
                        best.insert(pos, (total, page));
                        if best.len() > k {
                            best.remove(0);
                        }
                    }
                }
            }
        }
        depth += 1;
        if !any {
            break; // all lists exhausted
        }
        // TA stopping rule: the k-th best complete score dominates every
        // unseen page's maximum possible score.
        if best.len() == k && best[0].0 >= threshold {
            break;
        }
    }
    let hits = best
        .into_iter()
        .rev()
        .map(|(score, page)| SearchHit { page, tfidf: score })
        .collect();
    TaResult {
        hits,
        sorted_accesses,
        random_accesses,
        total_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: sum scores over all lists, take top-k.
    fn exhaustive(lists: &[ScoredList], k: usize) -> Vec<(PageId, f64)> {
        let mut acc: FxHashMap<PageId, f64> = FxHashMap::default();
        for l in lists {
            for &(p, s) in &l.entries {
                *acc.entry(p).or_insert(0.0) += s;
            }
        }
        let mut v: Vec<(PageId, f64)> = acc.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    fn zipfy_list(seed: u64, n: u32) -> ScoredList {
        // Deterministic skewed scores: score ∝ 1/rank with shuffled pages.
        ScoredList::from_pairs((0..n).map(|i| {
            let page = PageId((i.wrapping_mul(2654435761).wrapping_add(seed as u32)) % n);
            (page, 1.0 / (1.0 + ((i + 1) as f64)))
        }))
    }

    #[test]
    fn matches_exhaustive_on_small_inputs() {
        let lists = vec![
            ScoredList::from_pairs([(PageId(1), 0.9), (PageId(2), 0.5), (PageId(3), 0.1)]),
            ScoredList::from_pairs([(PageId(2), 0.8), (PageId(3), 0.6), (PageId(4), 0.2)]),
        ];
        let r = ta_topk(&lists, 2);
        let expect = exhaustive(&lists, 2);
        assert_eq!(r.hits.len(), 2);
        for (hit, (p, s)) in r.hits.iter().zip(expect.iter()) {
            assert_eq!(hit.page, *p);
            assert!((hit.tfidf - s).abs() < 1e-12);
        }
        // Page 2 wins: 0.5 + 0.8 = 1.3.
        assert_eq!(r.hits[0].page, PageId(2));
    }

    #[test]
    fn matches_exhaustive_on_skewed_lists() {
        let lists = vec![zipfy_list(1, 500), zipfy_list(2, 500), zipfy_list(3, 500)];
        for k in [1usize, 5, 20] {
            let r = ta_topk(&lists, k);
            let expect = exhaustive(&lists, k);
            let got: Vec<PageId> = r.hits.iter().map(|h| h.page).collect();
            let want: Vec<PageId> = expect.iter().map(|&(p, _)| p).collect();
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    fn early_termination_saves_accesses() {
        let lists = vec![zipfy_list(1, 2000), zipfy_list(2, 2000)];
        let r = ta_topk(&lists, 5);
        assert!(
            r.sorted_accesses < r.total_entries / 2,
            "no early termination: {} of {}",
            r.sorted_accesses,
            r.total_entries
        );
    }

    #[test]
    fn handles_disjoint_lists_and_short_k() {
        let lists = vec![
            ScoredList::from_pairs([(PageId(1), 0.9)]),
            ScoredList::from_pairs([(PageId(2), 0.8)]),
        ];
        let r = ta_topk(&lists, 10);
        assert_eq!(r.hits.len(), 2);
        assert_eq!(r.hits[0].page, PageId(1));
        assert_eq!(r.hits[1].page, PageId(2));
    }

    #[test]
    fn duplicate_pairs_keep_max() {
        let l = ScoredList::from_pairs([(PageId(1), 0.2), (PageId(1), 0.7), (PageId(1), 0.4)]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.random(PageId(1)), 0.7);
    }

    #[test]
    fn empty_lists_yield_empty_result() {
        let r = ta_topk(&[ScoredList::default(), ScoredList::default()], 3);
        assert!(r.hits.is_empty());
        assert_eq!(r.sorted_accesses, 0);
    }

    #[test]
    #[should_panic(expected = "top-0")]
    fn k_zero_panics() {
        let _ = ta_topk(&[ScoredList::default()], 0);
    }
}
