#![deny(missing_docs)]
//! # jxp-minerva
//!
//! A Minerva-style P2P Web search engine (paper §6.3): "each Minerva peer
//! is a full-fledged search engine with its own crawler, indexer, and
//! query processor. […] A Web query issued by a peer is first executed
//! locally on the peer's own content, and then possibly routed to a small
//! number of remote peers for additional results."
//!
//! The paper's Table 2 experiment ranks merged results two ways — plain
//! tf·idf and `0.6·tf·idf + 0.4·JXP` — and measures precision@10. The
//! document contents and manual relevance assessments of the 2005 Web
//! collection are unavailable, so [`corpus`] generates a synthetic topical
//! corpus over the graph nodes with programmatic ground truth in which
//! relevance correlates with page authority (see DESIGN.md §2 for why this
//! substitution preserves the experiment's point).
//!
//! Modules: [`corpus`] (documents, queries, ground truth), [`index`]
//! (per-peer inverted index, tf·idf), [`query`] (local execution),
//! [`routing`] (peer selection + result merging), [`fusion`] (score
//! combination), [`eval`] (precision@k, Table 2 harness).

pub mod corpus;
pub mod eval;
pub mod fusion;
pub mod index;
pub mod query;
pub mod routing;
pub mod topk;

pub use corpus::{Corpus, CorpusParams, Query, TermId};
pub use index::{PeerIndex, ServingIndex};
