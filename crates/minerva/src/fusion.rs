//! Score fusion: combining tf·idf with JXP authority (§6.3).
//!
//! The paper ranks merged results "by a weighted sum of the tf*idf score
//! and the JXP score (with weight 0.6 of the first component and weight
//! 0.4 of the second component)". Both components are normalized to
//! `[0, 1]` over the result list before weighting (raw tf·idf and
//! PageRank-style scores live on incomparable scales).

use crate::query::SearchHit;
use jxp_pagerank::Ranking;
use jxp_webgraph::PageId;

/// The paper's fusion weights: 0.6 tf·idf + 0.4 JXP.
pub const PAPER_TFIDF_WEIGHT: f64 = 0.6;
/// See [`PAPER_TFIDF_WEIGHT`].
pub const PAPER_JXP_WEIGHT: f64 = 0.4;

/// A result after fusion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedHit {
    /// The result page.
    pub page: PageId,
    /// Combined score.
    pub score: f64,
}

/// Rank `hits` by pure (normalized) tf·idf — the paper's first ranking.
pub fn rank_by_tfidf(hits: &[SearchHit]) -> Vec<PageId> {
    let mut v: Vec<&SearchHit> = hits.iter().collect();
    v.sort_by(|a, b| {
        b.tfidf
            .partial_cmp(&a.tfidf)
            .unwrap()
            .then(a.page.cmp(&b.page))
    });
    v.into_iter().map(|h| h.page).collect()
}

/// Rank `hits` by `w_tfidf · tfidf_norm + w_jxp · jxp_norm` — the paper's
/// second ranking. Pages missing from the JXP ranking (e.g. never scored
/// by any consulted peer) get authority 0.
///
/// # Panics
/// Panics if the weights are negative or both zero.
pub fn rank_by_fusion(
    hits: &[SearchHit],
    jxp: &Ranking,
    w_tfidf: f64,
    w_jxp: f64,
) -> Vec<FusedHit> {
    assert!(w_tfidf >= 0.0 && w_jxp >= 0.0, "negative fusion weight");
    assert!(w_tfidf + w_jxp > 0.0, "all-zero fusion weights");
    let max_tfidf = hits
        .iter()
        .map(|h| h.tfidf)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let max_jxp = hits
        .iter()
        .filter_map(|h| jxp.score(h.page))
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut fused: Vec<FusedHit> = hits
        .iter()
        .map(|h| {
            let t = h.tfidf / max_tfidf;
            let a = jxp.score(h.page).unwrap_or(0.0) / max_jxp;
            FusedHit {
                page: h.page,
                score: w_tfidf * t + w_jxp * a,
            }
        })
        .collect();
    fused.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.page.cmp(&b.page))
    });
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits() -> Vec<SearchHit> {
        vec![
            SearchHit {
                page: PageId(1),
                tfidf: 10.0,
            },
            SearchHit {
                page: PageId(2),
                tfidf: 8.0,
            },
            SearchHit {
                page: PageId(3),
                tfidf: 6.0,
            },
        ]
    }

    #[test]
    fn tfidf_ranking_orders_by_score() {
        assert_eq!(
            rank_by_tfidf(&hits()),
            vec![PageId(1), PageId(2), PageId(3)]
        );
    }

    #[test]
    fn fusion_with_zero_jxp_weight_equals_tfidf() {
        let jxp = Ranking::from_scores([(PageId(3), 0.9), (PageId(1), 0.1)]);
        let fused = rank_by_fusion(&hits(), &jxp, 1.0, 0.0);
        let order: Vec<PageId> = fused.iter().map(|h| h.page).collect();
        assert_eq!(order, rank_by_tfidf(&hits()));
    }

    #[test]
    fn authority_can_promote_a_lower_tfidf_page() {
        // Page 3 has much higher authority; with the paper's 0.6/0.4
        // weights it overtakes page 2 (normalized tf·idf gap 0.2·0.6 =
        // 0.12 < authority gap ≈ 0.4).
        let jxp = Ranking::from_scores([(PageId(1), 0.05), (PageId(2), 0.01), (PageId(3), 0.90)]);
        let fused = rank_by_fusion(&hits(), &jxp, PAPER_TFIDF_WEIGHT, PAPER_JXP_WEIGHT);
        let order: Vec<PageId> = fused.iter().map(|h| h.page).collect();
        assert_eq!(
            order[0],
            PageId(3),
            "authority should promote page 3: {order:?}"
        );
    }

    #[test]
    fn pages_unknown_to_jxp_get_zero_authority() {
        let jxp = Ranking::from_scores([(PageId(1), 0.5)]);
        let fused = rank_by_fusion(&hits(), &jxp, 0.5, 0.5);
        let p3 = fused.iter().find(|h| h.page == PageId(3)).unwrap();
        // tf·idf component only: 0.5 · (6/10).
        assert!((p3.score - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_hits_fuse_to_empty() {
        let jxp = Ranking::from_scores(std::iter::empty());
        assert!(rank_by_fusion(&[], &jxp, 0.6, 0.4).is_empty());
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_weights_panic() {
        let jxp = Ranking::from_scores(std::iter::empty());
        let _ = rank_by_fusion(&hits(), &jxp, 0.0, 0.0);
    }

    #[test]
    fn fused_order_is_total_and_permutation_invariant() {
        // Ties everywhere the sort can see them: equal tf·idf scores and
        // equal authority, so only the PageId tie-break decides. Every
        // input permutation must yield the same total order.
        let tied: Vec<SearchHit> = [5u32, 2, 9, 1, 7]
            .into_iter()
            .map(|p| SearchHit {
                page: PageId(p),
                tfidf: 4.0,
            })
            .collect();
        let jxp = Ranking::from_scores(tied.iter().map(|h| (h.page, 0.25)));
        let reference = rank_by_fusion(&tied, &jxp, PAPER_TFIDF_WEIGHT, PAPER_JXP_WEIGHT);
        let ref_pages: Vec<PageId> = reference.iter().map(|h| h.page).collect();
        assert_eq!(
            ref_pages,
            vec![PageId(1), PageId(2), PageId(5), PageId(7), PageId(9)],
            "ties must break by ascending page id"
        );
        // Rotate through several permutations of the same hit set.
        let mut perm = tied.clone();
        for i in 0..perm.len() {
            perm.rotate_left(1);
            perm.swap(0, i);
            let fused = rank_by_fusion(&perm, &jxp, PAPER_TFIDF_WEIGHT, PAPER_JXP_WEIGHT);
            assert_eq!(fused, reference, "order depends on input permutation");
            assert_eq!(rank_by_tfidf(&perm), ref_pages);
        }
    }

    #[test]
    fn empty_posting_lists_yield_empty_fusion() {
        // A query whose terms have no postings anywhere produces an empty
        // hit list end to end; fusion and the tf·idf ranking must both
        // pass that through instead of panicking on the normalization.
        let index = crate::index::PeerIndex::default();
        let hits: Vec<SearchHit> = index
            .score_query(&[crate::corpus::TermId(42)])
            .into_iter()
            .map(|(page, tfidf)| SearchHit { page, tfidf })
            .collect();
        assert!(hits.is_empty());
        let jxp = Ranking::from_scores([(PageId(1), 0.5)]);
        assert!(rank_by_fusion(&hits, &jxp, 0.6, 0.4).is_empty());
        assert!(rank_by_tfidf(&hits).is_empty());
    }

    #[test]
    fn duplicate_doc_ids_across_peers_keep_max_and_fuse_once() {
        // Two peers both indexed page 7 with different local idf stats.
        // The cross-peer merge rule (ScoredList::from_pairs) keeps the
        // maximum, so fusion sees each page exactly once.
        let merged = crate::topk::ScoredList::from_pairs([
            (PageId(7), 3.0), // peer A's score
            (PageId(7), 5.0), // peer B's score for the same doc
            (PageId(9), 4.0),
        ]);
        let r = crate::topk::ta_topk(&[merged], 10);
        let hits = r.hits;
        let pages: Vec<PageId> = hits.iter().map(|h| h.page).collect();
        assert_eq!(
            pages,
            vec![PageId(7), PageId(9)],
            "duplicate survived merge"
        );
        assert!(
            (hits[0].tfidf - 5.0).abs() < 1e-12,
            "max must win the merge"
        );
        let jxp = Ranking::from_scores([(PageId(7), 0.2), (PageId(9), 0.8)]);
        let fused = rank_by_fusion(&hits, &jxp, PAPER_TFIDF_WEIGHT, PAPER_JXP_WEIGHT);
        assert_eq!(fused.len(), 2);
        // Even if a caller skips the merge, fusion stays deterministic:
        // duplicates tie-break adjacent by page id, independent of order.
        let dup = vec![
            SearchHit {
                page: PageId(7),
                tfidf: 5.0,
            },
            SearchHit {
                page: PageId(7),
                tfidf: 5.0,
            },
        ];
        let a = rank_by_fusion(&dup, &jxp, 0.6, 0.4);
        let mut rev = dup.clone();
        rev.reverse();
        let b = rank_by_fusion(&rev, &jxp, 0.6, 0.4);
        assert_eq!(a, b);
    }
}
