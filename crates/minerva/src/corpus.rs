//! Synthetic topical corpus over the pages of a categorized graph.
//!
//! Every page becomes a document whose tokens are drawn from a mixture of
//! its category's **topic vocabulary** and a shared **background
//! vocabulary**, both Zipf-distributed — the standard generative stand-in
//! for topical Web text. Queries are built from a category's most
//! distinctive topic terms, like the paper's 15 popular Web queries each
//! of which targets a theme.
//!
//! **Ground truth** (replacing the paper's manual assessment): a document
//! is relevant to a query iff it belongs to the query's category *and* is
//! among the authoritative pages of that category (top fraction by true
//! PageRank). This encodes the same judgment the paper's assessors made
//! implicitly — among on-topic pages, the authoritative ones are the good
//! answers — which is precisely the signal the JXP-fused ranking is
//! supposed to exploit.

use jxp_webgraph::generators::CategorizedGraph;
use jxp_webgraph::{FxHashMap, FxHashSet, PageId};
use rand::Rng;

/// Identifier of a vocabulary term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Parameters of the corpus generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusParams {
    /// Distinct topic terms per category.
    pub topic_terms_per_category: usize,
    /// Distinct background terms shared by all categories.
    pub background_terms: usize,
    /// Tokens per document.
    pub doc_length: usize,
    /// Probability a token comes from the category's topic vocabulary.
    pub topic_mix: f64,
    /// Zipf skew for both vocabularies (1.0 = classic Zipf).
    pub zipf_exponent: f64,
    /// Fraction of each category (by true PageRank rank) considered
    /// relevant for queries against that category.
    pub relevant_fraction: f64,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            topic_terms_per_category: 40,
            background_terms: 400,
            doc_length: 60,
            topic_mix: 0.45,
            zipf_exponent: 1.0,
            relevant_fraction: 0.15,
        }
    }
}

/// A query: a handful of topic terms targeting one category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Human-readable label (the paper lists queries like "basketball").
    pub name: String,
    /// Query terms.
    pub terms: Vec<TermId>,
    /// The category the query targets (drives the ground truth).
    pub category: usize,
}

/// A document: the bag of words of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The page this document lives at.
    pub page: PageId,
    /// `(term, frequency)` pairs, sorted by term.
    pub terms: Vec<(TermId, u32)>,
}

impl Document {
    /// Term frequency of `t` in this document.
    pub fn tf(&self, t: TermId) -> u32 {
        self.terms
            .binary_search_by_key(&t, |&(term, _)| term)
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// Total token count.
    pub fn len(&self) -> u32 {
        self.terms.iter().map(|&(_, c)| c).sum()
    }

    /// Whether the document is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The generated corpus: one document per page plus query machinery.
#[derive(Debug, Clone)]
pub struct Corpus {
    docs: Vec<Document>,
    params: CorpusParams,
    num_categories: usize,
    category_of: Vec<u16>,
    /// `topic_base[c]` = first term id of category `c`'s topic vocabulary.
    topic_base: Vec<u32>,
    /// Ground-truth relevant pages per category.
    relevant: Vec<FxHashSet<PageId>>,
}

/// Sample a Zipf-distributed rank in `0..n` (rank 0 most likely).
fn zipf_sample(n: usize, exponent: f64, rng: &mut impl Rng) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF on the harmonic weights; n is small (vocabulary sizes),
    // so a linear scan is fine and exact.
    let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).sum();
    let mut u = rng.gen::<f64>() * h;
    for k in 1..=n {
        u -= 1.0 / (k as f64).powf(exponent);
        if u <= 0.0 {
            return k - 1;
        }
    }
    n - 1
}

impl Corpus {
    /// Generate the corpus for `cg`. `true_pagerank` is the centralized
    /// PageRank vector over the global graph (drives the ground truth).
    ///
    /// # Panics
    /// Panics if `true_pagerank.len()` differs from the graph size or the
    /// params are degenerate.
    pub fn generate(
        cg: &CategorizedGraph,
        true_pagerank: &[f64],
        params: CorpusParams,
        rng: &mut impl Rng,
    ) -> Self {
        let n = cg.graph.num_nodes();
        assert_eq!(true_pagerank.len(), n, "PageRank vector size mismatch");
        assert!(params.topic_terms_per_category > 0 && params.background_terms > 0);
        assert!((0.0..=1.0).contains(&params.topic_mix));
        assert!(params.relevant_fraction > 0.0 && params.relevant_fraction <= 1.0);

        // Term-id layout: background terms first, then per-category blocks.
        let topic_base: Vec<u32> = (0..cg.num_categories)
            .map(|c| (params.background_terms + c * params.topic_terms_per_category) as u32)
            .collect();

        let mut docs = Vec::with_capacity(n);
        for p in 0..n as u32 {
            let category = cg.category(PageId(p));
            let mut counts: FxHashMap<TermId, u32> = FxHashMap::default();
            for _ in 0..params.doc_length {
                let term = if rng.gen_bool(params.topic_mix) {
                    let r = zipf_sample(params.topic_terms_per_category, params.zipf_exponent, rng);
                    TermId(topic_base[category] + r as u32)
                } else {
                    let r = zipf_sample(params.background_terms, params.zipf_exponent, rng);
                    TermId(r as u32)
                };
                *counts.entry(term).or_insert(0) += 1;
            }
            let mut terms: Vec<(TermId, u32)> = counts.into_iter().collect();
            terms.sort_unstable_by_key(|&(t, _)| t);
            docs.push(Document {
                page: PageId(p),
                terms,
            });
        }

        // Ground truth: per category, the top `relevant_fraction` of pages
        // by true PageRank.
        let mut relevant = vec![FxHashSet::default(); cg.num_categories];
        for (c, rel) in relevant.iter_mut().enumerate() {
            let mut pages: Vec<PageId> = cg.pages_in_category(c).collect();
            pages.sort_unstable_by(|&a, &b| {
                true_pagerank[b.index()]
                    .partial_cmp(&true_pagerank[a.index()])
                    .unwrap()
                    .then(a.cmp(&b))
            });
            let keep = ((pages.len() as f64 * params.relevant_fraction).ceil() as usize).max(1);
            rel.extend(pages.into_iter().take(keep));
        }

        Corpus {
            docs,
            params,
            num_categories: cg.num_categories,
            category_of: cg.category_of.clone(),
            topic_base,
            relevant,
        }
    }

    /// The document of page `p`.
    pub fn document(&self, p: PageId) -> &Document {
        &self.docs[p.index()]
    }

    /// All documents, indexed by page id.
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Category of a page.
    pub fn category(&self, p: PageId) -> usize {
        self.category_of[p.index()] as usize
    }

    /// The `k` most frequent topic terms of category `c` (by construction,
    /// the lowest-ranked Zipf terms of the category block).
    pub fn top_topic_terms(&self, c: usize, k: usize) -> Vec<TermId> {
        let base = self.topic_base[c];
        (0..k.min(self.params.topic_terms_per_category) as u32)
            .map(|i| TermId(base + i))
            .collect()
    }

    /// Whether `page` is ground-truth relevant for `query`.
    pub fn is_relevant(&self, query: &Query, page: PageId) -> bool {
        self.relevant[query.category].contains(&page)
    }

    /// Number of relevant pages for a category.
    pub fn num_relevant(&self, category: usize) -> usize {
        self.relevant[category].len()
    }

    /// Build the Table 2-style query workload: `count` queries cycling
    /// through the categories, each using 1–3 high-frequency topic terms.
    pub fn make_queries(&self, count: usize, rng: &mut impl Rng) -> Vec<Query> {
        (0..count)
            .map(|i| {
                let category = i % self.num_categories;
                let num_terms = 1 + rng.gen_range(0..3usize);
                let pool = self.top_topic_terms(category, 8);
                let mut terms: Vec<TermId> = Vec::with_capacity(num_terms);
                while terms.len() < num_terms {
                    let t = pool[rng.gen_range(0..pool.len())];
                    if !terms.contains(&t) {
                        terms.push(t);
                    }
                }
                Query {
                    name: format!("q{:02}-cat{}", i, category),
                    terms,
                    category,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_pagerank::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CategorizedGraph, Vec<f64>) {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 3,
                nodes_per_category: 100,
                intra_out_per_node: 4,
                cross_fraction: 0.15,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        (cg, pr)
    }

    #[test]
    fn every_page_gets_a_document() {
        let (cg, pr) = setup();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(2),
        );
        assert_eq!(corpus.documents().len(), 300);
        for d in corpus.documents() {
            assert_eq!(d.len() as usize, CorpusParams::default().doc_length);
            assert!(!d.is_empty());
        }
    }

    #[test]
    fn documents_carry_their_category_topic_terms() {
        let (cg, pr) = setup();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(3),
        );
        // Count how often a category's top topic term appears in docs of
        // that category vs other categories.
        let top = corpus.top_topic_terms(0, 1)[0];
        let in_cat: u32 = cg
            .pages_in_category(0)
            .map(|p| corpus.document(p).tf(top))
            .sum();
        let out_cat: u32 = cg
            .pages_in_category(1)
            .map(|p| corpus.document(p).tf(top))
            .sum();
        assert!(in_cat > 50, "topic term frequency {in_cat}");
        assert_eq!(out_cat, 0, "topic terms must not leak across categories");
    }

    #[test]
    fn ground_truth_is_authority_correlated() {
        let (cg, pr) = setup();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(4),
        );
        let q = Query {
            name: "t".into(),
            terms: corpus.top_topic_terms(1, 2),
            category: 1,
        };
        let relevant: Vec<PageId> = cg
            .pages_in_category(1)
            .filter(|&p| corpus.is_relevant(&q, p))
            .collect();
        let irrelevant: Vec<PageId> = cg
            .pages_in_category(1)
            .filter(|&p| !corpus.is_relevant(&q, p))
            .collect();
        assert_eq!(relevant.len(), corpus.num_relevant(1));
        let mean =
            |v: &[PageId]| -> f64 { v.iter().map(|p| pr[p.index()]).sum::<f64>() / v.len() as f64 };
        assert!(
            mean(&relevant) > mean(&irrelevant),
            "relevant pages must be more authoritative"
        );
        // Off-category pages are never relevant.
        assert!(cg.pages_in_category(0).all(|p| !corpus.is_relevant(&q, p)));
    }

    #[test]
    fn queries_cycle_categories_and_use_topic_terms() {
        let (cg, pr) = setup();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(5),
        );
        let queries = corpus.make_queries(7, &mut StdRng::seed_from_u64(6));
        assert_eq!(queries.len(), 7);
        assert_eq!(queries[0].category, 0);
        assert_eq!(queries[3].category, 0);
        assert_eq!(queries[4].category, 1);
        for q in &queries {
            assert!(!q.terms.is_empty() && q.terms.len() <= 3);
            let pool = corpus.top_topic_terms(q.category, 8);
            assert!(q.terms.iter().all(|t| pool.contains(t)));
        }
    }

    #[test]
    fn zipf_sampler_is_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_sample(10, 1.0, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[4] > counts[9], "{counts:?}");
        assert!(counts[9] > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let (cg, pr) = setup();
        let c1 = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(8),
        );
        let c2 = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(8),
        );
        assert_eq!(c1.documents(), c2.documents());
    }
}
