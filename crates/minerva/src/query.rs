//! Local query execution on one peer.

use crate::corpus::Query;
use crate::index::PeerIndex;
use jxp_webgraph::PageId;

/// A scored search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The result page.
    pub page: PageId,
    /// Its (un-normalized) tf·idf score at the answering peer.
    pub tfidf: f64,
}

/// Execute `query` on a peer's index, returning its local top-`k`.
pub fn execute_local(index: &PeerIndex, query: &Query, k: usize) -> Vec<SearchHit> {
    index
        .score_query(&query.terms)
        .into_iter()
        .take(k)
        .map(|(page, tfidf)| SearchHit { page, tfidf })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusParams};
    use jxp_pagerank::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn local_execution_truncates_to_k() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 50,
                intra_out_per_node: 3,
                cross_fraction: 0.1,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(2),
        );
        let frag = Subgraph::from_pages(&cg.graph, (0..50).map(PageId));
        let idx = PeerIndex::build(&frag, &corpus);
        let queries = corpus.make_queries(2, &mut StdRng::seed_from_u64(3));
        let hits = execute_local(&idx, &queries[0], 7);
        assert!(hits.len() <= 7);
        assert!(!hits.is_empty());
        assert!(hits.windows(2).all(|w| w[0].tfidf >= w[1].tfidf));
    }
}
