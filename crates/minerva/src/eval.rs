//! Relevance evaluation: precision@k and the Table 2 harness.

use crate::corpus::{Corpus, Query};
use crate::fusion::{rank_by_fusion, rank_by_tfidf};
use crate::index::PeerIndex;
use crate::routing::execute_routed;
use jxp_pagerank::Ranking;
use jxp_webgraph::PageId;

/// Precision@k of a ranked result list against the corpus ground truth:
/// the fraction of the first `k` results that are relevant. If fewer than
/// `k` results exist, the denominator stays `k` (missing results are
/// misses, as in the paper's fixed top-10 assessment).
pub fn precision_at_k(corpus: &Corpus, query: &Query, ranked: &[PageId], k: usize) -> f64 {
    assert!(k > 0, "precision@0 is undefined");
    let hits = ranked
        .iter()
        .take(k)
        .filter(|&&p| corpus.is_relevant(query, p))
        .count();
    hits as f64 / k as f64
}

/// One row of Table 2: a query with its precision under both rankings.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The query label.
    pub query: String,
    /// Precision@10 of the plain tf·idf ranking.
    pub tfidf_precision: f64,
    /// Precision@10 of the `0.6·tf·idf + 0.4·JXP` ranking.
    pub fused_precision: f64,
}

/// Run the full Table 2 experiment: for every query, route it across the
/// peer indexes, rank the merged results both ways, and measure
/// precision@`k`. Returns one row per query; the caller appends the
/// average row like the paper does.
#[allow(clippy::too_many_arguments)]
pub fn table2(
    corpus: &Corpus,
    indexes: &[PeerIndex],
    jxp_ranking: &Ranking,
    queries: &[Query],
    fanout: usize,
    per_peer_k: usize,
    k: usize,
    weights: (f64, f64),
) -> Vec<Table2Row> {
    queries
        .iter()
        .map(|q| {
            let hits = execute_routed(indexes, q, fanout, per_peer_k);
            let by_tfidf = rank_by_tfidf(&hits);
            let by_fusion: Vec<PageId> = rank_by_fusion(&hits, jxp_ranking, weights.0, weights.1)
                .into_iter()
                .map(|h| h.page)
                .collect();
            Table2Row {
                query: q.name.clone(),
                tfidf_precision: precision_at_k(corpus, q, &by_tfidf, k),
                fused_precision: precision_at_k(corpus, q, &by_fusion, k),
            }
        })
        .collect()
}

/// Average precision over rows — the paper's "Average" line.
pub fn averages(rows: &[Table2Row]) -> (f64, f64) {
    if rows.is_empty() {
        return (0.0, 0.0);
    }
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.tfidf_precision).sum::<f64>() / n,
        rows.iter().map(|r| r.fused_precision).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusParams;
    use jxp_pagerank::{pagerank, PageRankConfig};
    use jxp_webgraph::generators::{CategorizedGraph, CategorizedParams};
    use jxp_webgraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn precision_counts_relevant_prefix() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 40,
                intra_out_per_node: 3,
                cross_fraction: 0.1,
            },
            &mut StdRng::seed_from_u64(1),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(2),
        );
        let q = Query {
            name: "t".into(),
            terms: corpus.top_topic_terms(0, 1),
            category: 0,
        };
        // Rank = all relevant pages of category 0 followed by junk.
        let mut ranked: Vec<PageId> = cg
            .pages_in_category(0)
            .filter(|&p| corpus.is_relevant(&q, p))
            .collect();
        let n_rel = ranked.len();
        ranked.extend(cg.pages_in_category(1));
        let p = precision_at_k(&corpus, &q, &ranked, 10);
        assert!((p - (n_rel.min(10) as f64 / 10.0)).abs() < 1e-12);
        // Short lists are penalized by the fixed denominator.
        let p_short = precision_at_k(&corpus, &q, &ranked[..2.min(ranked.len())], 10);
        assert!(p_short <= 0.2 + 1e-12);
    }

    #[test]
    fn table2_fusion_beats_tfidf_with_perfect_authority() {
        // End-to-end miniature of the §6.3 experiment with the *true*
        // PageRank as the authority signal (JXP converges to it).
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 2,
                nodes_per_category: 150,
                intra_out_per_node: 4,
                cross_fraction: 0.1,
            },
            &mut StdRng::seed_from_u64(3),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(4),
        );
        let all: Vec<PageId> = cg.graph.nodes().collect();
        let indexes = vec![
            PeerIndex::build(
                &Subgraph::from_pages(&cg.graph, all[..200].to_vec()),
                &corpus,
            ),
            PeerIndex::build(
                &Subgraph::from_pages(&cg.graph, all[100..].to_vec()),
                &corpus,
            ),
        ];
        let authority = jxp_core::evaluate::centralized_ranking(&pr);
        let queries = corpus.make_queries(6, &mut StdRng::seed_from_u64(5));
        let rows = table2(
            &corpus,
            &indexes,
            &authority,
            &queries,
            2,
            50,
            10,
            (0.6, 0.4),
        );
        assert_eq!(rows.len(), 6);
        let (t, f) = averages(&rows);
        assert!(
            f > t,
            "fusion ({f:.3}) should beat plain tf·idf ({t:.3}) on authority-correlated truth"
        );
    }

    #[test]
    fn averages_of_empty_rows() {
        assert_eq!(averages(&[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "precision@0")]
    fn precision_at_zero_panics() {
        let cg = CategorizedGraph::generate(
            &CategorizedParams {
                num_categories: 1,
                nodes_per_category: 20,
                intra_out_per_node: 2,
                cross_fraction: 0.0,
            },
            &mut StdRng::seed_from_u64(6),
        );
        let pr = pagerank(&cg.graph, &PageRankConfig::default()).into_scores();
        let corpus = Corpus::generate(
            &cg,
            &pr,
            CorpusParams::default(),
            &mut StdRng::seed_from_u64(7),
        );
        let q = Query {
            name: "t".into(),
            terms: corpus.top_topic_terms(0, 1),
            category: 0,
        };
        let _ = precision_at_k(&corpus, &q, &[], 0);
    }
}
