//! Peer-selection strategies (§4.3).
//!
//! The basic strategy picks meeting partners uniformly at random. The
//! **pre-meetings** strategy uses min-wise-permutation synopses to find
//! the most promising partners — peers whose out-links are in-links of
//! many of my local pages:
//!
//! * every peer publishes two MIPs vectors, `local(A)` (its page set) and
//!   `successors(A)` (the targets of all its out-links);
//! * at every meeting, each side computes
//!   `Containment(successors(B), local(A))` — the fraction of its local
//!   pages with in-links from the other peer — and **caches** the other
//!   peer's id if it is above a threshold;
//! * when the two peers' local sets **overlap** strongly, they exchange
//!   their cached-peer lists (a peer pointing into A likely points into an
//!   overlapping B too) and hold cheap **pre-meetings** with the received
//!   candidates, fetching only their `successors` MIPs vector to score
//!   them; the best-scored candidate becomes the next real meeting;
//! * every `k`-th selection remains truly random so the fairness premise
//!   of the convergence proof (Theorem 5.4) is preserved, and cached peers
//!   are revisited with small probability to track network changes.

use jxp_synopses::mips::{MipsPermutations, MipsVector};
use jxp_webgraph::Subgraph;
use rand::Rng;

/// The two MIPs vectors every peer publishes (§4.3 "Peer Synopses").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSynopses {
    /// MIPs vector of the set of local page ids, `local(A)`.
    pub local: MipsVector,
    /// MIPs vector of the set of all successors of local pages,
    /// `successors(A)`.
    pub successors: MipsVector,
}

impl PeerSynopses {
    /// Compute both vectors for a fragment under a shared permutation
    /// family.
    pub fn compute(graph: &Subgraph, perms: &MipsPermutations) -> Self {
        let local = MipsVector::from_elements(perms, graph.pages().iter().map(|p| p.0 as u64));
        let successors =
            MipsVector::from_elements(perms, graph.successor_set().into_iter().map(|p| p.0 as u64));
        PeerSynopses { local, successors }
    }

    /// Bytes added to a meeting message when the synopses piggyback on it.
    pub fn wire_size(&self) -> usize {
        self.local.wire_size() + self.successors.wire_size()
    }

    /// The paper's `Containment(successors(self), local(other))`: the
    /// estimated fraction of `other`'s local pages that have in-links from
    /// `self`'s local pages.
    pub fn inlink_containment_into(&self, other: &PeerSynopses) -> f64 {
        self.successors.containment_of(&other.local)
    }

    /// Estimated resemblance of the two peers' local page sets.
    pub fn local_overlap(&self, other: &PeerSynopses) -> f64 {
        self.local.resemblance(&other.local)
    }
}

/// Parameters of the pre-meetings strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct PreMeetingsConfig {
    /// Cache a met peer whose in-link containment into me is above this.
    pub containment_threshold: f64,
    /// Exchange cached-peer lists when the local-set resemblance of the
    /// two meeting peers is above this.
    pub overlap_threshold: f64,
    /// Every `k`-th selection is truly random (fairness, Theorem 5.4).
    pub random_every_k: usize,
    /// Probability of revisiting an already-cached peer instead of using
    /// the candidate list (peers change content / leave the network).
    pub revisit_probability: f64,
    /// Cap on the cached-peer list (the paper notes the threshold bounds
    /// it; we enforce a hard cap as well).
    pub max_cache: usize,
}

impl Default for PreMeetingsConfig {
    fn default() -> Self {
        PreMeetingsConfig {
            containment_threshold: 0.05,
            overlap_threshold: 0.15,
            random_every_k: 5,
            revisit_probability: 0.05,
            max_cache: 32,
        }
    }
}

/// Which peer-selection strategy a peer runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionStrategy {
    /// Uniformly random partner (the basic strategy).
    Random,
    /// The §4.3 pre-meetings strategy.
    PreMeetings(PreMeetingsConfig),
}

/// Per-peer state of the pre-meetings strategy.
#[derive(Debug, Clone, Default)]
pub struct SelectorState {
    /// Ids of peers with high in-link containment into me.
    cached: Vec<usize>,
    /// Peers already met (their knowledge has been drained once); they are
    /// not re-queued as candidates — only the low-probability cache
    /// revisit path returns to them, mirroring the paper's "peers have to
    /// visit again the already cached peers, with a smaller probability".
    met: Vec<usize>,
    /// Candidates scored by pre-meetings, kept sorted best-last
    /// (so `pop` takes the best).
    candidates: Vec<(usize, f64)>,
    /// Selections made so far (drives the every-k fairness rule).
    selections: usize,
    /// Selections served from the scored candidate list.
    candidate_selections: usize,
    /// Selections that revisited a cached peer.
    revisit_selections: usize,
    /// Bytes spent on pre-meeting MIPs fetches.
    pub premeeting_bytes: u64,
}

impl SelectorState {
    /// The cached peer ids.
    pub fn cached(&self) -> &[usize] {
        &self.cached
    }

    /// Pending candidates as `(peer, score)`, best last.
    pub fn candidates(&self) -> &[(usize, f64)] {
        &self.candidates
    }

    /// Total selections made.
    pub fn selections(&self) -> usize {
        self.selections
    }

    /// How many selections were served from the candidate list.
    pub fn candidate_selections(&self) -> usize {
        self.candidate_selections
    }

    /// How many selections revisited a cached peer.
    pub fn revisit_selections(&self) -> usize {
        self.revisit_selections
    }

    fn cache_peer(&mut self, peer: usize, max_cache: usize) {
        // A re-confirmed peer moves to the back: the evict-oldest policy
        // must measure *recency of confirmation*, not first insertion, or
        // a peer that was just re-validated as good gets evicted first.
        if let Some(pos) = self.cached.iter().position(|&p| p == peer) {
            self.cached.remove(pos);
        }
        self.cached.push(peer);
        if self.cached.len() > max_cache {
            self.cached.remove(0); // evict least recently confirmed
        }
    }

    fn add_candidate(&mut self, peer: usize, score: f64) {
        if self.met.contains(&peer) {
            return; // already drained; only cache revisits return to it
        }
        // `total_cmp` keeps a total order even when a degenerate/empty
        // synopsis yields a NaN containment estimate.
        if let Some(pos) = self.candidates.iter().position(|(p, _)| *p == peer) {
            if self.candidates[pos].1.total_cmp(&score).is_ge() {
                return; // existing score is at least as good
            }
            self.candidates.remove(pos);
        }
        let at = self
            .candidates
            .partition_point(|(_, s)| s.total_cmp(&score).is_lt());
        self.candidates.insert(at, (peer, score));
    }

    fn mark_met(&mut self, peer: usize) {
        if !self.met.contains(&peer) {
            self.met.push(peer);
        }
        self.candidates.retain(|&(p, _)| p != peer);
    }

    /// Peers this peer has already met.
    pub fn met(&self) -> &[usize] {
        &self.met
    }
}

fn random_other(me: usize, num_peers: usize, rng: &mut impl Rng) -> usize {
    debug_assert!(num_peers >= 2);
    let mut p = rng.gen_range(0..num_peers - 1);
    if p >= me {
        p += 1;
    }
    p
}

/// Choose the next meeting partner for peer `me`.
///
/// # Panics
/// Panics if fewer than two peers exist.
pub fn select_partner(
    state: &mut SelectorState,
    strategy: &SelectionStrategy,
    me: usize,
    num_peers: usize,
    rng: &mut impl Rng,
) -> usize {
    assert!(
        num_peers >= 2,
        "cannot select a partner among {num_peers} peer(s)"
    );
    state.selections += 1;
    match strategy {
        SelectionStrategy::Random => random_other(me, num_peers, rng),
        SelectionStrategy::PreMeetings(cfg) => {
            // Fairness: every k-th selection is truly random; also never
            // let the random probability drop to zero.
            if cfg.random_every_k > 0 && state.selections.is_multiple_of(cfg.random_every_k) {
                return random_other(me, num_peers, rng);
            }
            if !state.cached.is_empty() && rng.gen_bool(cfg.revisit_probability) {
                // A cached id must pass the same guards as a candidate:
                // under churn (swap-remove renumbering) a cached peer may
                // have departed (`>= num_peers`) or become this peer's own
                // index. On failure the stale id is pruned and selection
                // falls through to the next source.
                let pick = state.cached[rng.gen_range(0..state.cached.len())];
                if pick != me && pick < num_peers {
                    state.revisit_selections += 1;
                    return pick;
                }
                state.cached.retain(|&p| p != me && p < num_peers);
            }
            while let Some((peer, _)) = state.candidates.pop() {
                if peer != me && peer < num_peers {
                    state.candidate_selections += 1;
                    return peer;
                }
            }
            random_other(me, num_peers, rng)
        }
    }
}

/// Process the synopsis-level bookkeeping of a meeting between peers `a`
/// and `b` (both directions): threshold-based caching, cache-list
/// exchange on strong overlap, and pre-meetings with the received
/// candidates. `states` is the per-peer selector state array, `synopses`
/// the per-peer published vectors.
pub fn observe_meeting(
    states: &mut [SelectorState],
    synopses: &[PeerSynopses],
    a: usize,
    b: usize,
    cfg: &PreMeetingsConfig,
) {
    assert_ne!(a, b, "a peer cannot meet itself");
    states[a].mark_met(b);
    states[b].mark_met(a);
    // Containment both ways: cache the partner if it links into me enough.
    let into_a = synopses[b].inlink_containment_into(&synopses[a]);
    let into_b = synopses[a].inlink_containment_into(&synopses[b]);
    if into_a >= cfg.containment_threshold {
        states[a].cache_peer(b, cfg.max_cache);
    }
    if into_b >= cfg.containment_threshold {
        states[b].cache_peer(a, cfg.max_cache);
    }
    // Strong overlap of the local sets ⇒ exchange cached-peer lists and
    // hold pre-meetings with the received candidates.
    if synopses[a].local_overlap(&synopses[b]) >= cfg.overlap_threshold {
        let from_b: Vec<usize> = states[b].cached().to_vec();
        let from_a: Vec<usize> = states[a].cached().to_vec();
        premeet_candidates(&mut states[a], synopses, a, &from_b);
        premeet_candidates(&mut states[b], synopses, b, &from_a);
    }
}

/// Hold a pre-meeting with each candidate: fetch its `successors` MIPs
/// vector (counted into `premeeting_bytes`), score it by in-link
/// containment into me, and queue it.
fn premeet_candidates(
    state: &mut SelectorState,
    synopses: &[PeerSynopses],
    me: usize,
    candidates: &[usize],
) {
    for &c in candidates {
        if c == me {
            continue;
        }
        state.premeeting_bytes += synopses[c].successors.wire_size() as u64;
        let score = synopses[c].inlink_containment_into(&synopses[me]);
        state.add_candidate(c, score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::{GraphBuilder, PageId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three fragments: peers 0 and 1 overlap heavily; peer 2 links into
    /// peer 0's pages.
    fn network() -> Vec<PeerSynopses> {
        let mut b = GraphBuilder::new();
        // Pages 0..10 cluster; pages 20..30 cluster linking into 0..10.
        for i in 0..10u32 {
            b.add_edge(PageId(i), PageId((i + 1) % 10));
        }
        for i in 20..30u32 {
            b.add_edge(PageId(i), PageId(i - 20)); // 20→0, 21→1, …
        }
        let g = b.build();
        let perms = MipsPermutations::generate(128, 11);
        let frag_a = Subgraph::from_pages(&g, (0..10).map(PageId));
        let frag_b = Subgraph::from_pages(&g, (0..8).map(PageId)); // overlaps A
        let frag_c = Subgraph::from_pages(&g, (20..30).map(PageId)); // links into A
        [frag_a, frag_b, frag_c]
            .iter()
            .map(|f| PeerSynopses::compute(f, &perms))
            .collect()
    }

    #[test]
    fn containment_detects_inlink_provider() {
        let syn = network();
        // Peer 2's successors are exactly peer 0's pages.
        let c = syn[2].inlink_containment_into(&syn[0]);
        assert!(c > 0.5, "containment {c}");
        // Peer 0 provides few in-links to peer 2 (none).
        let c_rev = syn[0].inlink_containment_into(&syn[2]);
        assert!(c_rev < 0.2, "reverse containment {c_rev}");
    }

    #[test]
    fn overlap_detects_shared_fragments() {
        let syn = network();
        assert!(syn[0].local_overlap(&syn[1]) > 0.5);
        assert!(syn[0].local_overlap(&syn[2]) < 0.1);
    }

    #[test]
    fn observe_meeting_caches_good_peers() {
        let syn = network();
        let mut states = vec![SelectorState::default(); 3];
        let cfg = PreMeetingsConfig::default();
        observe_meeting(&mut states, &syn, 0, 2, &cfg);
        assert!(
            states[0].cached().contains(&2),
            "peer 0 should cache peer 2"
        );
    }

    #[test]
    fn cache_lists_propagate_through_overlapping_peers() {
        let syn = network();
        let mut states = vec![SelectorState::default(); 3];
        let cfg = PreMeetingsConfig::default();
        // 0 meets 2 → 0 caches 2. Then 0 meets 1 (high overlap) → 1 should
        // receive candidate 2 via the cache exchange + pre-meeting.
        observe_meeting(&mut states, &syn, 0, 2, &cfg);
        observe_meeting(&mut states, &syn, 0, 1, &cfg);
        assert!(
            states[1].candidates().iter().any(|&(p, _)| p == 2),
            "peer 1 should have candidate 2: {:?}",
            states[1].candidates()
        );
        assert!(states[1].premeeting_bytes > 0);
    }

    #[test]
    fn select_pops_best_candidate_first() {
        let mut state = SelectorState::default();
        state.add_candidate(3, 0.2);
        state.add_candidate(4, 0.9);
        state.add_candidate(5, 0.5);
        let cfg = PreMeetingsConfig {
            random_every_k: 1000,
            revisit_probability: 0.0,
            ..Default::default()
        };
        let strategy = SelectionStrategy::PreMeetings(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(select_partner(&mut state, &strategy, 0, 10, &mut rng), 4);
        assert_eq!(select_partner(&mut state, &strategy, 0, 10, &mut rng), 5);
        assert_eq!(select_partner(&mut state, &strategy, 0, 10, &mut rng), 3);
    }

    #[test]
    fn every_kth_selection_is_random_even_with_candidates() {
        let mut state = SelectorState::default();
        state.add_candidate(4, 0.9);
        let cfg = PreMeetingsConfig {
            random_every_k: 1,
            revisit_probability: 0.0,
            ..Default::default()
        };
        let strategy = SelectionStrategy::PreMeetings(cfg);
        let mut rng = StdRng::seed_from_u64(2);
        // k = 1 ⇒ every selection random; candidate 4 must survive.
        for _ in 0..5 {
            let _ = select_partner(&mut state, &strategy, 0, 100, &mut rng);
        }
        assert_eq!(state.candidates().len(), 1);
    }

    #[test]
    fn random_selection_never_returns_self() {
        let mut state = SelectorState::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let p = select_partner(&mut state, &SelectionStrategy::Random, 2, 5, &mut rng);
            assert_ne!(p, 2);
            assert!(p < 5);
        }
    }

    #[test]
    fn random_selection_covers_all_partners() {
        let mut state = SelectorState::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..300 {
            seen[select_partner(&mut state, &SelectionStrategy::Random, 0, 5, &mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
        assert!(!seen[0]);
    }

    #[test]
    fn cache_is_bounded() {
        let mut state = SelectorState::default();
        for p in 0..100 {
            state.cache_peer(p, 10);
        }
        assert_eq!(state.cached().len(), 10);
        // Oldest evicted, newest kept.
        assert!(state.cached().contains(&99));
        assert!(!state.cached().contains(&0));
    }

    #[test]
    fn cache_revisit_guards_stale_ids_after_shrink() {
        // Regression: the cache-revisit path used to return cached ids
        // unguarded — under churn a departed peer's id indexed out of
        // bounds in the simulator, and a renumbered id could equal `me`.
        let cfg = PreMeetingsConfig {
            random_every_k: 0,
            revisit_probability: 1.0, // always try the cache first
            ..Default::default()
        };
        let strategy = SelectionStrategy::PreMeetings(cfg);
        let mut state = SelectorState::default();
        state.cache_peer(7, 32); // valid only while num_peers > 7
        state.cache_peer(9, 32);
        let mut rng = StdRng::seed_from_u64(11);
        // The network shrank to 4 peers: both cached ids are stale. The
        // selection must fall through to a random partner, never panic,
        // never return an out-of-range id or `me`.
        for _ in 0..50 {
            let p = select_partner(&mut state, &strategy, 2, 4, &mut rng);
            assert!(p < 4, "returned departed peer {p}");
            assert_ne!(p, 2, "peer scheduled to meet itself");
        }
        // Stale ids were pruned once detected.
        assert!(state.cached().is_empty());
    }

    #[test]
    fn cache_revisit_prunes_own_index_after_renumbering() {
        let cfg = PreMeetingsConfig {
            random_every_k: 0,
            revisit_probability: 1.0,
            ..Default::default()
        };
        let strategy = SelectionStrategy::PreMeetings(cfg);
        let mut state = SelectorState::default();
        // Swap-remove renumbering can make a cached id equal `me`.
        state.cache_peer(3, 32);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let p = select_partner(&mut state, &strategy, 3, 8, &mut rng);
            assert_ne!(p, 3);
        }
        assert!(state.cached().is_empty());
    }

    #[test]
    fn nan_candidate_score_does_not_panic() {
        // Regression: `partial_cmp().unwrap()` in add_candidate panicked
        // when a degenerate synopsis produced a NaN containment estimate.
        let mut state = SelectorState::default();
        state.add_candidate(1, 0.4);
        state.add_candidate(2, f64::NAN);
        state.add_candidate(3, 0.7);
        state.add_candidate(4, 0.1);
        assert_eq!(state.candidates().len(), 4);
        // Non-NaN candidates keep their relative order (ascending, best
        // last); the queue stays fully usable.
        let non_nan: Vec<usize> = state
            .candidates()
            .iter()
            .filter(|(_, s)| !s.is_nan())
            .map(|&(p, _)| p)
            .collect();
        assert_eq!(non_nan, vec![4, 1, 3]);
    }

    #[test]
    fn add_candidate_keeps_best_score_and_position() {
        let mut state = SelectorState::default();
        state.add_candidate(1, 0.2);
        state.add_candidate(2, 0.5);
        // Re-adding with a worse score changes nothing.
        state.add_candidate(2, 0.1);
        assert_eq!(state.candidates(), &[(1, 0.2), (2, 0.5)]);
        // Re-adding with a better score repositions the entry.
        state.add_candidate(1, 0.9);
        assert_eq!(state.candidates(), &[(2, 0.5), (1, 0.9)]);
    }

    #[test]
    fn recached_peer_refreshes_recency_before_eviction() {
        // Regression: `cache_peer` ignored an already-cached peer, so the
        // evict-oldest policy would evict a peer that was just
        // re-confirmed as good.
        let mut state = SelectorState::default();
        state.cache_peer(1, 3);
        state.cache_peer(2, 3);
        state.cache_peer(3, 3);
        // Peer 1 is re-confirmed: it must move to the back …
        state.cache_peer(1, 3);
        assert_eq!(state.cached(), &[2, 3, 1]);
        // … so the next eviction removes 2 (least recently confirmed),
        // not the just-revalidated 1.
        state.cache_peer(4, 3);
        assert_eq!(state.cached(), &[3, 1, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot select a partner")]
    fn single_peer_network_panics() {
        let mut state = SelectorState::default();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = select_partner(&mut state, &SelectionStrategy::Random, 0, 1, &mut rng);
    }
}
