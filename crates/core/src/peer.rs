//! A JXP peer: local graph fragment, world node, score list.

use crate::config::{CombineMode, JxpConfig, MergeMode};
use crate::local_pr::{extended_pagerank, LocalTopology, PrOutcome};
use crate::payload::MeetingPayload;
use crate::world::WorldNode;
use jxp_webgraph::{FxHashMap, GraphSource, PageId, Subgraph};

/// Running statistics of one peer, used by the experiments.
#[derive(Debug, Clone, Default)]
pub struct PeerStats {
    /// Meetings this peer has taken part in.
    pub meetings: u64,
    /// Power iterations of the most recent local PageRank run.
    pub last_pr_iterations: usize,
    /// Total power iterations over the peer's lifetime.
    pub total_pr_iterations: u64,
}

/// One autonomous peer running the JXP algorithm.
///
/// Holds the local fragment (global page ids), the world node, and the
/// current JXP score list. Created with Algorithm 1 (local PageRank on the
/// extended graph starting from the uniform vector); updated by
/// [`meeting::meet`](crate::meeting::meet).
#[derive(Debug, Clone)]
pub struct JxpPeer {
    graph: Subgraph,
    topo: LocalTopology,
    world: WorldNode,
    scores: Vec<f64>,
    world_score: f64,
    n_total: f64,
    config: JxpConfig,
    stats: PeerStats,
}

impl JxpPeer {
    /// Create a peer and run the JXP initialization (Algorithm 1):
    /// local scores start at `1/N`, the world node at `(N−n)/N`, then one
    /// local PageRank run on the extended graph.
    ///
    /// # Panics
    /// Panics if the fragment is empty, `n_total < n`, or the config is
    /// invalid.
    pub fn new(graph: Subgraph, n_total: u64, config: JxpConfig) -> Self {
        config.validate();
        let n = graph.num_pages();
        assert!(n > 0, "a peer needs at least one local page");
        assert!(
            n_total as usize >= n,
            "global page count {n_total} smaller than fragment size {n}"
        );
        let n_total = n_total as f64;
        let topo = LocalTopology::build(&graph);
        let scores = vec![1.0 / n_total; n];
        let world_score = (n_total - n as f64) / n_total;
        let mut peer = JxpPeer {
            graph,
            topo,
            world: WorldNode::new(),
            scores,
            world_score,
            n_total,
            config,
            stats: PeerStats::default(),
        };
        peer.recompute();
        peer
    }

    /// Create a peer whose fragment is cut directly out of any
    /// [`GraphSource`] — in particular `jxp-segstore`'s disk-backed
    /// `SegmentedGraph`, so peers can be stood up against a global
    /// graph that never fits in memory. Equivalent to
    /// `JxpPeer::new(Subgraph::from_source(global, pages), ..)`; the
    /// extended-graph PageRank it runs is bit-identical to the
    /// in-memory path because fragment extraction yields the same
    /// successor lists in the same order.
    ///
    /// # Panics
    /// As [`JxpPeer::new`].
    pub fn from_source<G: GraphSource + ?Sized>(
        global: &G,
        pages: impl IntoIterator<Item = PageId>,
        n_total: u64,
        config: JxpConfig,
    ) -> Self {
        JxpPeer::new(Subgraph::from_source(global, pages), n_total, config)
    }

    /// The local fragment.
    pub fn graph(&self) -> &Subgraph {
        &self.graph
    }

    /// The world node.
    pub fn world(&self) -> &WorldNode {
        &self.world
    }

    /// The algorithm configuration.
    pub fn config(&self) -> &JxpConfig {
        &self.config
    }

    /// Number of local pages.
    pub fn num_pages(&self) -> usize {
        self.graph.num_pages()
    }

    /// The (estimated) global page count `N` this peer assumes.
    pub fn n_total(&self) -> f64 {
        self.n_total
    }

    /// Update the peer's estimate of `N` (used by the gossip-based
    /// estimation extension; takes effect at the next recomputation).
    ///
    /// # Panics
    /// Panics if the new estimate is smaller than the fragment.
    pub fn set_n_total(&mut self, n_total: f64) {
        assert!(
            n_total >= self.num_pages() as f64,
            "N estimate {n_total} below fragment size"
        );
        self.n_total = n_total;
    }

    /// Current JXP score of a local page, `None` if the page is not local.
    pub fn score(&self, p: PageId) -> Option<f64> {
        self.graph.local_index(p).map(|i| self.scores[i])
    }

    /// The local score list (dense index order, parallel to
    /// `graph().pages()`).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Current world-node score `α_w`.
    pub fn world_score(&self) -> f64 {
        self.world_score
    }

    /// Sum of all local page scores (Theorem 5.2 says this is
    /// monotonically non-decreasing under the optimized algorithm).
    pub fn local_mass(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// Running statistics.
    pub fn stats(&self) -> &PeerStats {
        &self.stats
    }

    /// Assemble the message this peer sends in a meeting.
    pub fn payload(&self) -> MeetingPayload {
        MeetingPayload::assemble(&self.graph, &self.world, &self.scores, self.world_score)
    }

    /// [`absorb`](JxpPeer::absorb) with payload validation first: the
    /// payload is rejected (and the peer's state left untouched) if it is
    /// malformed — the §7 hardening against broken or cheating peers.
    pub fn try_absorb(&mut self, payload: &MeetingPayload) -> Result<(), String> {
        payload.validate()?;
        self.absorb(payload);
        Ok(())
    }

    /// Fold a met peer's payload into this peer's state and recompute the
    /// local scores, dispatching on the configured [`MergeMode`].
    /// Increments the meeting counter.
    pub fn absorb(&mut self, payload: &MeetingPayload) {
        self.stats.meetings += 1;
        match self.config.merge {
            MergeMode::LightWeight => self.absorb_light(payload),
            MergeMode::Full => self.absorb_full(payload),
        }
    }

    fn combine_scores(&self, mine: f64, theirs: f64) -> f64 {
        match self.config.combine {
            CombineMode::TakeMax => mine.max(theirs),
            CombineMode::Average => (mine + theirs) / 2.0,
        }
    }

    /// §4.1 light-weight merging: add the relevant in-link knowledge to
    /// the local world node, combine overlapping scores, recompute on the
    /// *unchanged* extended local graph.
    fn absorb_light(&mut self, payload: &MeetingPayload) {
        let combine = self.config.combine;
        for pp in &payload.pages {
            match self.graph.local_index(pp.page) {
                Some(i) => {
                    // Overlapping page: combine the two score opinions.
                    self.scores[i] = self.combine_scores(self.scores[i], pp.score);
                }
                None => {
                    // External page held locally by the sender: the sender
                    // knows its complete, current out-link list, so the
                    // structural update is authoritative (stale links from
                    // older crawls are replaced — §5.3 dynamics).
                    let targets: Vec<PageId> = pp
                        .succs
                        .iter()
                        .copied()
                        .filter(|&t| self.graph.contains(t))
                        .collect();
                    self.world.set_authoritative(
                        pp.page,
                        pp.succs.len() as u32,
                        pp.score,
                        targets,
                        combine,
                    );
                }
            }
        }
        for &(page, score) in &payload.world_dangling {
            if !self.graph.contains(page) {
                self.world.upsert_dangling(page, score, combine);
            }
        }
        for wp in &payload.world {
            if self.graph.contains(wp.src) {
                continue; // I hold the page itself; its links are local.
            }
            let targets: Vec<PageId> = wp
                .targets
                .iter()
                .copied()
                .filter(|&t| self.graph.contains(t))
                .collect();
            if !targets.is_empty() {
                self.world
                    .upsert(wp.src, wp.out_degree, wp.score, targets, combine);
            }
        }
        // Paper eq. (1): the world node takes whatever mass the local
        // pages do not claim.
        self.world_score = (1.0 - self.local_mass()).clamp(0.0, 1.0);
        self.recompute();
    }

    /// Algorithm 2 (baseline) full merging: build `G_M = G_A ∪ G_B` with a
    /// merged world node and score list, run PageRank on the merged
    /// extended graph, then project back onto this peer and discard the
    /// merged structures.
    fn absorb_full(&mut self, payload: &MeetingPayload) {
        let combine = self.config.combine;
        // ---- Build the merged graph V_M = V_A ∪ V_B, E_M = E_A ∪ E_B.
        let other =
            Subgraph::from_adjacency(payload.pages.iter().map(|pp| (pp.page, pp.succs.clone())));
        let merged = self.graph.union(&other);

        // ---- Merged score list (average / max for pages in both).
        let their_score: FxHashMap<PageId, f64> =
            payload.pages.iter().map(|pp| (pp.page, pp.score)).collect();
        let mut merged_scores = vec![0.0f64; merged.num_pages()];
        for (i, s) in merged_scores.iter_mut().enumerate() {
            let p = merged.page_at(i);
            let mine = self.score(p);
            let theirs = their_score.get(&p).copied();
            *s = match (mine, theirs) {
                (Some(a), Some(b)) => self.combine_scores(a, b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!("merged page from neither peer"),
            };
        }

        // ---- Merged world node: T_M = (T_A ∪ T_B) − E_M.
        let mut merged_world = WorldNode::new();
        for (src, e) in self.world.iter() {
            merged_world.upsert(
                src,
                e.out_degree,
                e.score,
                e.targets.iter().copied(),
                combine,
            );
        }
        for (page, score) in self.world.dangling_iter() {
            merged_world.upsert_dangling(page, score, combine);
        }
        for wp in &payload.world {
            merged_world.upsert(
                wp.src,
                wp.out_degree,
                wp.score,
                wp.targets.iter().copied(),
                combine,
            );
        }
        for &(page, score) in &payload.world_dangling {
            merged_world.upsert_dangling(page, score, combine);
        }
        merged_world.retain_relevant(&merged);

        // ---- Merged world score, eq. (1), and the PageRank run.
        let merged_world_score = (1.0 - merged_scores.iter().sum::<f64>()).clamp(0.0, 1.0);
        let merged_topo = LocalTopology::build(&merged);
        let inflow = merged_world.inflow(&merged, self.n_total);
        let outcome = extended_pagerank(
            &merged_topo,
            self.n_total,
            &inflow,
            &merged_scores,
            merged_world_score,
            &self.config,
        );
        self.stats.last_pr_iterations = outcome.iterations;
        self.stats.total_pr_iterations += outcome.iterations as u64;

        // Eq. (2) re-weighting factor for external bookkeeping scores
        // (only in Average mode; eq. (3) keeps them unchanged).
        let reweight = match combine {
            CombineMode::Average if merged_world_score > 1e-15 => {
                outcome.world_score / merged_world_score
            }
            _ => 1.0,
        };

        // ---- Project back onto A: keep scores of pages in V_A …
        for i in 0..self.graph.num_pages() {
            let p = self.graph.page_at(i);
            let mi = merged.local_index(p).expect("V_A ⊆ V_M");
            self.scores[i] = outcome.scores[mi];
        }
        self.world_score = (1.0 - self.local_mass()).clamp(0.0, 1.0);

        // ---- … and rebuild W_A: links from W_M into V_A, plus links from
        // E_B into V_A (their sources got fresh scores from the merged PR).
        let mut new_world = WorldNode::new();
        for (src, e) in merged_world.iter() {
            let targets: Vec<PageId> = e
                .targets
                .iter()
                .copied()
                .filter(|&t| self.graph.contains(t))
                .collect();
            if !targets.is_empty() {
                new_world.upsert(src, e.out_degree, e.score * reweight, targets, combine);
            }
        }
        for (page, score) in merged_world.dangling_iter() {
            // Dangling knowledge "points everywhere": always kept.
            new_world.upsert_dangling(page, score * reweight, combine);
        }
        for pp in &payload.pages {
            if self.graph.contains(pp.page) {
                continue;
            }
            let mi = merged.local_index(pp.page).expect("V_B ⊆ V_M");
            if pp.succs.is_empty() {
                // B's local dangling page, external to me: its fresh score
                // comes from the merged PageRank run.
                new_world.upsert_dangling(pp.page, outcome.scores[mi], combine);
                continue;
            }
            let targets: Vec<PageId> = pp
                .succs
                .iter()
                .copied()
                .filter(|&t| self.graph.contains(t))
                .collect();
            if targets.is_empty() {
                continue;
            }
            new_world.upsert(
                pp.page,
                pp.succs.len() as u32,
                outcome.scores[mi],
                targets,
                combine,
            );
        }
        self.world = new_world;
    }

    /// Reassemble a peer from snapshot parts (see [`crate::snapshot`]).
    /// The caller guarantees internal consistency; the topology caches are
    /// rebuilt here.
    pub(crate) fn from_snapshot_parts(
        graph: Subgraph,
        world: WorldNode,
        scores: Vec<f64>,
        world_score: f64,
        n_total: f64,
        config: JxpConfig,
        stats: PeerStats,
    ) -> Self {
        debug_assert_eq!(graph.num_pages(), scores.len());
        let topo = LocalTopology::build(&graph);
        JxpPeer {
            graph,
            topo,
            world,
            scores,
            world_score,
            n_total,
            config,
            stats,
        }
    }

    /// Replace the peer's local fragment — a **re-crawl** (§5.3: "peers
    /// want to periodically re-crawl parts of the Web according to their
    /// interest profiles and refreshing policies").
    ///
    /// Scores of pages present in both the old and new fragment carry
    /// over; newly crawled pages start at `1/N`; world-node knowledge
    /// about pages that became local (or whose targets vanished) is
    /// pruned; then the local PageRank runs on the new extended graph.
    ///
    /// # Panics
    /// Panics if the new fragment is empty or larger than `N`.
    pub fn update_fragment(&mut self, graph: Subgraph) {
        let n = graph.num_pages();
        assert!(n > 0, "a peer needs at least one local page");
        assert!(
            self.n_total >= n as f64,
            "fragment larger than the assumed global graph"
        );
        let mut scores = vec![1.0 / self.n_total; n];
        for (i, s) in scores.iter_mut().enumerate() {
            if let Some(old) = self.score(graph.page_at(i)) {
                *s = old;
            }
        }
        self.topo = LocalTopology::build(&graph);
        self.graph = graph;
        self.scores = scores;
        self.world.retain_relevant(&self.graph);
        self.world_score = (1.0 - self.local_mass()).clamp(0.0, 1.0);
        self.recompute();
    }

    /// Run the local PageRank on the extended graph with the current world
    /// knowledge, updating the score list and world score in place.
    /// Returns the iteration details of the run.
    pub fn recompute(&mut self) -> PrOutcome {
        let inflow = self.world.inflow(&self.graph, self.n_total);
        let outcome = extended_pagerank(
            &self.topo,
            self.n_total,
            &inflow,
            &self.scores,
            self.world_score,
            &self.config,
        );
        self.stats.last_pr_iterations = outcome.iterations;
        self.stats.total_pr_iterations += outcome.iterations as u64;
        // Eq. (2) for the Average baseline: re-weight external bookkeeping
        // scores by PR(W)/L(W); eq. (3) (TakeMax) leaves them unchanged.
        if self.config.combine == CombineMode::Average && self.world_score > 1e-15 {
            self.world
                .scale_scores(outcome.world_score / self.world_score);
        }
        self.scores = outcome.scores.clone();
        self.world_score = outcome.world_score;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::GraphBuilder;

    fn cycle_graph() -> jxp_webgraph::CsrGraph {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(PageId(s), PageId(d));
        }
        b.build()
    }

    #[test]
    fn initialization_runs_algorithm_one() {
        let g = cycle_graph();
        let f = Subgraph::from_pages(&g, [PageId(0), PageId(1)]);
        let peer = JxpPeer::new(f, 4, JxpConfig::default());
        // No in-link knowledge yet: the world keeps most of the mass.
        assert!(peer.world_score() > 0.5);
        let total = peer.local_mass() + peer.world_score();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        assert!(peer.scores().iter().all(|&s| s > 0.0));
        assert_eq!(peer.stats().meetings, 0);
    }

    #[test]
    fn payload_round_trip_updates_world_knowledge() {
        let g = cycle_graph();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        let b = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
            4,
            JxpConfig::default(),
        );
        assert!(a.world().is_empty());
        a.absorb(&b.payload());
        // B's page 3 links to A's page 0: must now be a world entry.
        let e = a.world().entry(PageId(3)).expect("entry for page 3");
        assert_eq!(e.targets, vec![PageId(0)]);
        assert_eq!(e.out_degree, 1);
        assert_eq!(a.stats().meetings, 1);
    }

    #[test]
    fn world_score_decreases_as_knowledge_grows() {
        let g = cycle_graph();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        let before = a.world_score();
        let b = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
            4,
            JxpConfig::default(),
        );
        a.absorb(&b.payload());
        assert!(
            a.world_score() <= before + 1e-12,
            "world score rose: {} → {}",
            before,
            a.world_score()
        );
    }

    #[test]
    fn full_merge_mode_also_learns() {
        let g = cycle_graph();
        let cfg = JxpConfig::baseline();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            cfg.clone(),
        );
        let b = JxpPeer::new(Subgraph::from_pages(&g, [PageId(2), PageId(3)]), 4, cfg);
        a.absorb(&b.payload());
        // The projected-back world node carries B's link 3 → 0.
        let e = a.world().entry(PageId(3)).expect("entry for page 3");
        assert_eq!(e.targets, vec![PageId(0)]);
        let total = a.local_mass() + a.world_score();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_pages_combine_with_max() {
        let g = cycle_graph();
        let cfg = JxpConfig::default(); // TakeMax
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            cfg.clone(),
        );
        let b = JxpPeer::new(Subgraph::from_pages(&g, [PageId(1), PageId(2)]), 4, cfg);
        let b_score_1 = b.score(PageId(1)).unwrap();
        let a_score_1 = a.score(PageId(1)).unwrap();
        a.absorb(&b.payload());
        // After combining, a's knowledge about page 1 is at least the max
        // of the two prior opinions (the subsequent PR run may move it up).
        assert!(a.score(PageId(1)).unwrap() >= a_score_1.max(b_score_1) - 1e-9);
    }

    #[test]
    fn set_n_total_validates() {
        let g = cycle_graph();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        a.set_n_total(10.0);
        assert_eq!(a.n_total(), 10.0);
    }

    #[test]
    #[should_panic(expected = "below fragment size")]
    fn set_n_total_too_small_panics() {
        let g = cycle_graph();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        a.set_n_total(1.0);
    }

    #[test]
    #[should_panic(expected = "at least one local page")]
    fn empty_fragment_panics() {
        let _ = JxpPeer::new(Subgraph::default(), 4, JxpConfig::default());
    }

    #[test]
    fn update_fragment_carries_scores_and_prunes_world() {
        let g = cycle_graph();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        let b = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
            4,
            JxpConfig::default(),
        );
        a.absorb(&b.payload());
        let old_score_0 = a.score(PageId(0)).unwrap();
        assert!(a.world().entry(PageId(3)).is_some());
        // Re-crawl: a now also holds page 3 (the former world entry).
        a.update_fragment(Subgraph::from_pages(&g, [PageId(0), PageId(1), PageId(3)]));
        assert_eq!(a.num_pages(), 3);
        // Page 3 became local → its world entry is gone.
        assert!(a.world().entry(PageId(3)).is_none());
        // Page 0's knowledge carried over (scores keep evolving, but the
        // state is valid and at least as informed as before).
        assert!(a.score(PageId(0)).unwrap() > 0.0);
        assert!(a.score(PageId(3)).unwrap() > 0.0);
        let total = a.local_mass() + a.world_score();
        assert!((total - 1.0).abs() < 1e-9);
        let _ = old_score_0;
    }

    #[test]
    fn update_fragment_handles_shrinking() {
        let g = cycle_graph();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1), PageId(2)]),
            4,
            JxpConfig::default(),
        );
        a.update_fragment(Subgraph::from_pages(&g, [PageId(1)]));
        assert_eq!(a.num_pages(), 1);
        assert!(a.score(PageId(0)).is_none());
        let total = a.local_mass() + a.world_score();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one local page")]
    fn update_fragment_rejects_empty() {
        let g = cycle_graph();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0)]),
            4,
            JxpConfig::default(),
        );
        a.update_fragment(Subgraph::default());
    }

    #[test]
    fn stale_links_are_dropped_via_authoritative_updates() {
        // A learns 3 → 0 from B; later B re-crawls and 3 now points to 1
        // only. After meeting B again, A's world entry must reflect the
        // new structure (no stale 3 → 0 link).
        let mut builder = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            builder.add_edge(PageId(s), PageId(d));
        }
        let g_old = builder.build();
        let mut builder = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 1)] {
            builder.add_edge(PageId(s), PageId(d));
        }
        let g_new = builder.build();

        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g_old, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        let mut b = JxpPeer::new(
            Subgraph::from_pages(&g_old, [PageId(2), PageId(3)]),
            4,
            JxpConfig::default(),
        );
        crate::meeting::meet(&mut a, &mut b);
        assert_eq!(a.world().entry(PageId(3)).unwrap().targets, vec![PageId(0)]);
        // B re-crawls against the changed Web.
        b.update_fragment(Subgraph::from_pages(&g_new, [PageId(2), PageId(3)]));
        crate::meeting::meet(&mut a, &mut b);
        assert_eq!(
            a.world().entry(PageId(3)).unwrap().targets,
            vec![PageId(1)],
            "stale link 3→0 survived the authoritative update"
        );
    }
}
