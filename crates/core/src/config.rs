//! JXP algorithm configuration.

/// How a peer folds a met peer's graph knowledge into its own state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeMode {
    /// Algorithm 2 (baseline): build the full union of both local graphs
    /// plus a merged world node, run PageRank on the union, then project
    /// back and discard. Accurate but expensive (the paper's Table 1).
    Full,
    /// §4.1 (optimized, default): only add the relevant in-link knowledge
    /// to the local world node and run PageRank on the *unchanged-size*
    /// extended local graph. The convergence proof (§5) covers this mode.
    LightWeight,
}

/// How two score lists are combined when peers meet (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineMode {
    /// Baseline: average the scores of pages known to both peers, and
    /// after the PageRank computation re-weight external bookkeeping
    /// scores by `PR(W) / L(W)` (paper eq. 2).
    Average,
    /// Optimized (default): take the **bigger** of the two scores —
    /// justified because JXP scores never overestimate true PageRank
    /// (Theorem 5.3) and the world-node score is monotonically
    /// non-increasing (Theorem 5.1) — and leave external bookkeeping
    /// scores untouched after the computation (eq. 3).
    TakeMax,
}

/// Tunable parameters of the JXP algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct JxpConfig {
    /// Probability of following a link in the underlying random walk
    /// (the paper's ε; random-jump probability is `1 − ε`). Default 0.85.
    pub epsilon: f64,
    /// L1 convergence threshold of each local PageRank computation.
    pub pr_tolerance: f64,
    /// Iteration cap of each local PageRank computation.
    pub pr_max_iterations: usize,
    /// Graph-merging procedure at meetings.
    pub merge: MergeMode,
    /// Score-list combination rule at meetings.
    pub combine: CombineMode,
    /// Worker threads for each local PageRank computation (`0` = the
    /// machine's available parallelism, `1` = serial). Results are
    /// bit-identical for every value (see `jxp_pagerank::par`), so this
    /// is purely a wall-clock knob; it is machine-local and not
    /// persisted in snapshots.
    pub threads: usize,
}

impl Default for JxpConfig {
    fn default() -> Self {
        JxpConfig {
            epsilon: 0.85,
            pr_tolerance: 1e-10,
            pr_max_iterations: 100,
            merge: MergeMode::LightWeight,
            combine: CombineMode::TakeMax,
            threads: 1,
        }
    }
}

impl JxpConfig {
    /// The paper's baseline configuration: full merging with score
    /// averaging (Algorithm 2 as first presented in §3).
    pub fn baseline() -> Self {
        JxpConfig {
            merge: MergeMode::Full,
            combine: CombineMode::Average,
            ..Default::default()
        }
    }

    /// The optimized configuration of §4 (light-weight merging +
    /// take-the-max combination) — same as `Default`.
    pub fn optimized() -> Self {
        Self::default()
    }

    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics if `epsilon ∉ (0, 1)`, `pr_tolerance ≤ 0`, or
    /// `pr_max_iterations == 0`.
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must be in (0, 1), got {}",
            self.epsilon
        );
        assert!(self.pr_tolerance > 0.0, "pr_tolerance must be positive");
        assert!(
            self.pr_max_iterations > 0,
            "pr_max_iterations must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_optimized_variant() {
        let c = JxpConfig::default();
        assert_eq!(c.merge, MergeMode::LightWeight);
        assert_eq!(c.combine, CombineMode::TakeMax);
        assert_eq!(c, JxpConfig::optimized());
    }

    #[test]
    fn baseline_is_full_merge_with_averaging() {
        let c = JxpConfig::baseline();
        assert_eq!(c.merge, MergeMode::Full);
        assert_eq!(c.combine, CombineMode::Average);
    }

    #[test]
    fn default_validates() {
        JxpConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_one_rejected() {
        JxpConfig {
            epsilon: 1.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "pr_tolerance")]
    fn zero_tolerance_rejected() {
        JxpConfig {
            pr_tolerance: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
