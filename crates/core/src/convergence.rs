//! Peer-local convergence detection.
//!
//! §3: the meeting process "in principle, runs forever". A deployed peer
//! still wants a local answer to *"can I trust my scores yet?"* — without
//! any access to the centralized ground truth the experiments use. The
//! [`StabilityDetector`] gives that signal from information the peer
//! already has: the L1 movement of its own score list across its recent
//! meetings. Once the movement stays below a threshold for a full window
//! of meetings, the peer's view has (locally) stabilized.
//!
//! This is a *heuristic*, not a proof: a peer that has simply not yet met
//! anyone holding its in-links also looks stable. The fairness of the
//! meeting schedule (Theorem 5.4) is what makes sustained stability
//! meaningful — new knowledge keeps arriving while any is missing; the
//! integration tests show the detector tracks true convergence and resets
//! when churn or re-crawls inject fresh change.

use crate::peer::JxpPeer;
use std::collections::VecDeque;

/// Tracks the recent score movement of one peer.
#[derive(Debug, Clone)]
pub struct StabilityDetector {
    /// L1 deltas of the last `window` observations.
    deltas: VecDeque<f64>,
    window: usize,
    threshold: f64,
    last_scores: Vec<f64>,
    last_world: f64,
}

impl StabilityDetector {
    /// Create a detector: the peer counts as stable once `window`
    /// consecutive observations each moved the score list by less than
    /// `threshold` (L1, including the world score).
    ///
    /// # Panics
    /// Panics if `window == 0` or `threshold <= 0`.
    pub fn new(peer: &JxpPeer, window: usize, threshold: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        StabilityDetector {
            deltas: VecDeque::with_capacity(window),
            window,
            threshold,
            last_scores: peer.scores().to_vec(),
            last_world: peer.world_score(),
        }
    }

    /// Observe the peer after a meeting; returns the L1 movement since
    /// the previous observation. A fragment change (re-crawl) resets the
    /// detector — the new pages make deltas incomparable.
    pub fn observe(&mut self, peer: &JxpPeer) -> f64 {
        if peer.scores().len() != self.last_scores.len() {
            self.deltas.clear();
            self.last_scores = peer.scores().to_vec();
            self.last_world = peer.world_score();
            return f64::INFINITY;
        }
        let mut delta = (peer.world_score() - self.last_world).abs();
        for (a, b) in peer.scores().iter().zip(self.last_scores.iter()) {
            delta += (a - b).abs();
        }
        self.last_scores.copy_from_slice(peer.scores());
        self.last_world = peer.world_score();
        if self.deltas.len() == self.window {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
        delta
    }

    /// Whether the last full window of observations all moved less than
    /// the threshold.
    pub fn is_stable(&self) -> bool {
        self.deltas.len() == self.window && self.deltas.iter().all(|&d| d < self.threshold)
    }

    /// The most recent movement (`None` before the first observation).
    pub fn last_delta(&self) -> Option<f64> {
        self.deltas.back().copied()
    }
}

/// Fraction of peers whose detectors report stability — a network-level
/// progress gauge built purely from local signals.
pub fn stable_fraction(detectors: &[StabilityDetector]) -> f64 {
    if detectors.is_empty() {
        return 0.0;
    }
    detectors.iter().filter(|d| d.is_stable()).count() as f64 / detectors.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JxpConfig;
    use crate::meeting::meet;
    use jxp_webgraph::{GraphBuilder, PageId, Subgraph};

    fn pair() -> (JxpPeer, JxpPeer) {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        (
            JxpPeer::new(
                Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
                4,
                JxpConfig::default(),
            ),
            JxpPeer::new(
                Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
                4,
                JxpConfig::default(),
            ),
        )
    }

    #[test]
    fn becomes_stable_as_scores_converge() {
        let (mut a, mut b) = pair();
        let mut det = StabilityDetector::new(&a, 3, 1e-6);
        assert!(!det.is_stable());
        let mut stable_at = None;
        for i in 0..200 {
            meet(&mut a, &mut b);
            det.observe(&a);
            if det.is_stable() {
                stable_at = Some(i);
                break;
            }
        }
        let when = stable_at.expect("never stabilized");
        assert!(when > 3, "cannot be stable before a full window");
    }

    #[test]
    fn early_meetings_are_not_stable() {
        let (mut a, mut b) = pair();
        let mut det = StabilityDetector::new(&a, 3, 1e-6);
        for _ in 0..3 {
            meet(&mut a, &mut b);
            det.observe(&a);
        }
        // The first meetings move scores by far more than 1e-6.
        assert!(!det.is_stable());
        assert!(det.last_delta().unwrap() > 1e-6);
    }

    #[test]
    fn fragment_change_resets_the_detector() {
        let (mut a, mut b) = pair();
        let mut det = StabilityDetector::new(&a, 2, 1.0); // huge threshold
        for _ in 0..4 {
            meet(&mut a, &mut b);
            det.observe(&a);
        }
        assert!(det.is_stable(), "everything is stable at threshold 1.0");
        // Re-crawl: the fragment grows, stability must reset.
        let mut builder = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
            builder.add_edge(PageId(s), PageId(d));
        }
        let g = builder.build();
        a.update_fragment(Subgraph::from_pages(&g, [PageId(0), PageId(1), PageId(2)]));
        assert!(det.observe(&a).is_infinite());
        assert!(!det.is_stable());
    }

    #[test]
    fn stable_fraction_aggregates() {
        let (a, b) = pair();
        let d1 = StabilityDetector::new(&a, 1, 1.0);
        let mut d2 = StabilityDetector::new(&b, 1, 1.0);
        d2.observe(&b); // no movement → stable at the huge threshold
        assert_eq!(stable_fraction(&[]), 0.0);
        assert_eq!(stable_fraction(&[d1.clone(), d2.clone()]), 0.5);
        assert_eq!(stable_fraction(&[d2.clone(), d2]), 1.0);
        let _ = d1;
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let (a, _) = pair();
        let _ = StabilityDetector::new(&a, 0, 1e-6);
    }
}
