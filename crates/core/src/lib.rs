#![deny(missing_docs)]
//! # jxp-core — the JXP algorithm
//!
//! The primary contribution of *"Efficient and Decentralized PageRank
//! Approximation in a Peer-to-Peer Web Search Network"* (VLDB 2006):
//! **JXP (Juxtaposed Approximate PageRank)**, an algorithm that computes
//! global PageRank authority scores for pages arbitrarily (and possibly
//! overlappingly) distributed over autonomous peers, using only local
//! PageRank computations plus pairwise peer meetings.
//!
//! ## How it works
//!
//! Each [`JxpPeer`] holds a fragment of the global graph and extends it
//! with a **world node** `W` representing every page it does not hold
//! ([`world::WorldNode`]). Out-links to non-local pages point to `W`;
//! in-links from known external pages are attached to `W` and weighted by
//! the external page's learned authority score over its out-degree
//! (paper eq. 8); `W` keeps a self-loop for external→external links and
//! receives random-jump mass proportional to the `N − n` pages it stands
//! for (eq. 10). Running ordinary PageRank on this `(n+1)`-state chain
//! yields the peer's current **JXP scores** ([`local_pr`]).
//!
//! Peers repeatedly **meet** ([`meeting`]): they exchange their extended
//! local graphs and score lists, fold the other peer's knowledge into
//! their own world node (light-weight merging, §4.1) or into a full merged
//! graph (the Algorithm 2 baseline), combine score lists (§4.2), and
//! recompute. [`selection`] implements the paper's random and
//! pre-meetings peer-selection strategies; [`evaluate`] builds the global
//! ranking that the experiments compare against centralized PageRank;
//! [`invariants`] exposes the paper's Theorems 5.1–5.3 as runtime checks.
//!
//! ```
//! use jxp_core::{JxpConfig, JxpPeer, meeting};
//! use jxp_webgraph::{GraphBuilder, PageId, Subgraph};
//!
//! // Global graph: 0 → 1 → 2 → 0.
//! let mut b = GraphBuilder::new();
//! b.add_edge(PageId(0), PageId(1));
//! b.add_edge(PageId(1), PageId(2));
//! b.add_edge(PageId(2), PageId(0));
//! let g = b.build();
//!
//! let cfg = JxpConfig::default();
//! let mut a = JxpPeer::new(Subgraph::from_pages(&g, [PageId(0), PageId(1)]), 3, cfg.clone());
//! let mut c = JxpPeer::new(Subgraph::from_pages(&g, [PageId(1), PageId(2)]), 3, cfg);
//! for _ in 0..40 {
//!     meeting::meet(&mut a, &mut c);
//! }
//! // In a 3-cycle every page's true PageRank is 1/3; JXP approaches it
//! // from below (Theorem 5.3) at a geometric rate per meeting.
//! assert!((a.score(PageId(0)).unwrap() - 1.0 / 3.0).abs() < 0.01);
//! ```

pub mod config;
pub mod convergence;
pub mod evaluate;
pub mod invariants;
pub mod local_pr;
pub mod meeting;
pub mod payload;
pub mod peer;
pub mod selection;
pub mod snapshot;
pub mod world;

pub use config::{CombineMode, JxpConfig, MergeMode};
pub use payload::MeetingPayload;
pub use peer::JxpPeer;
pub use world::WorldNode;
