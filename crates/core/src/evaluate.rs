//! Building the network-wide total ranking for evaluation (§6.2).
//!
//! "In order to compare the two approaches we construct a total ranking
//! from the distributed scores by essentially merging the score lists from
//! all peers. […] it can be the case that a page has different scores at
//! different peers. In this case, the score of the page on the total
//! ranking is considered to be the average over its different scores."
//! This merging exists *only* for the experimental evaluation — the real
//! P2P network never needs it.

use crate::peer::JxpPeer;
use jxp_pagerank::Ranking;
use jxp_webgraph::PageId;
use std::collections::BTreeMap;

/// Merge the score lists of all peers into the total ranking: a page held
/// by several peers gets the average of its scores.
///
/// The accumulator is a `BTreeMap` (analyzer rule D1): the merged
/// pairs are consumed in iteration order, and a stable ascending
/// `PageId` order keeps every downstream consumer — including ones
/// that don't re-sort like [`Ranking::from_scores`] does — bit-stable
/// across runs.
pub fn total_ranking<'a>(peers: impl IntoIterator<Item = &'a JxpPeer>) -> Ranking {
    let mut acc: BTreeMap<PageId, (f64, u32)> = BTreeMap::new();
    for peer in peers {
        for (i, &score) in peer.scores().iter().enumerate() {
            let page = peer.graph().page_at(i);
            let e = acc.entry(page).or_insert((0.0, 0));
            e.0 += score;
            e.1 += 1;
        }
    }
    Ranking::from_scores(
        acc.into_iter()
            .map(|(p, (sum, count))| (p, sum / count as f64)),
    )
}

/// Convenience: the centralized-PageRank ranking of a full graph, in the
/// same [`Ranking`] form, for comparison against [`total_ranking`].
pub fn centralized_ranking(scores: &[f64]) -> Ranking {
    Ranking::from_scores(
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (PageId(i as u32), s)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JxpConfig;
    use jxp_webgraph::{GraphBuilder, Subgraph};

    #[test]
    fn total_ranking_averages_overlapping_pages() {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 0)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let pa = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            3,
            JxpConfig::default(),
        );
        let pb = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(1), PageId(2)]),
            3,
            JxpConfig::default(),
        );
        let r = total_ranking([&pa, &pb]);
        assert_eq!(r.len(), 3);
        let expected = (pa.score(PageId(1)).unwrap() + pb.score(PageId(1)).unwrap()) / 2.0;
        assert!((r.score(PageId(1)).unwrap() - expected).abs() < 1e-12);
        // Non-overlapping pages keep their single peer's score.
        assert!((r.score(PageId(0)).unwrap() - pa.score(PageId(0)).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn centralized_ranking_wraps_dense_scores() {
        let r = centralized_ranking(&[0.1, 0.6, 0.3]);
        assert_eq!(r.top_k(3), &[PageId(1), PageId(2), PageId(0)]);
        assert_eq!(r.score(PageId(0)), Some(0.1));
    }

    #[test]
    fn empty_peer_set_gives_empty_ranking() {
        let r = total_ranking(std::iter::empty());
        assert!(r.is_empty());
    }

    #[test]
    fn total_ranking_is_stable_across_peer_order() {
        // Regression test: merging the same peers in any order must
        // produce the identical ranking (same order, same score bits).
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let pa = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        let pb = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(1), PageId(2)]),
            4,
            JxpConfig::default(),
        );
        let pc = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
            4,
            JxpConfig::default(),
        );
        let r1 = total_ranking([&pa, &pb, &pc]);
        let r2 = total_ranking([&pc, &pa, &pb]);
        assert_eq!(r1.len(), r2.len());
        for i in 0..r1.len() {
            let p = r1.top_k(r1.len())[i];
            assert_eq!(p, r2.top_k(r2.len())[i], "rank order differs at {i}");
            assert_eq!(
                r1.score(p).unwrap().to_bits(),
                r2.score(p).unwrap().to_bits(),
                "score bits differ for {p:?}"
            );
        }
    }
}
