//! PageRank on the extended local graph `G' = G + W` (paper §5, eq. 5–10).
//!
//! The `(n+1)`-state transition matrix is never materialized. Its rows are:
//!
//! * **local page `i`**: `1/out(i)` to each known successor — local
//!   successors are explicit states, all external successors collapse onto
//!   the world node (`p_iw = #external successors / out(i)`, eq. 7);
//! * **dangling local page**: uniform over all `N` global pages — `1/N`
//!   to each local page, `(N−n)/N` to the world node (the standard
//!   dangling treatment, applied identically in `jxp-pagerank` so the
//!   centralized ground truth matches — see DESIGN.md §5);
//! * **world node**: `p_wi = inflow_i / α_w` where
//!   `inflow_i = Σ_{r→i} α(r)/out(r)` comes from
//!   [`WorldNode::inflow`](crate::world::WorldNode::inflow) (eq. 8), and
//!   the self-loop `p_ww = 1 − Σ_i p_wi` absorbs the rest (eq. 9);
//! * **random jumps** (probability `1−ε`): `1/N` to each local page and
//!   `(N−n)/N` to the world node (eq. 10 — the jump to `W` is
//!   "proportional to the number of external pages").

use crate::config::JxpConfig;
use jxp_webgraph::Subgraph;

/// Precomputed, meeting-invariant topology of one peer's extended graph.
///
/// In light-weight merging the local graph never changes after peer
/// creation — only the world node's in-link knowledge does — so the
/// reverse adjacency, out-degrees and external-link ratios are computed
/// once and reused across all meetings.
#[derive(Debug, Clone)]
pub struct LocalTopology {
    n: usize,
    /// Dense-index CSR of *local → local* links, reversed:
    /// `rev_adj[rev_off[i]..rev_off[i+1]]` are the dense indices of local
    /// predecessors of local page `i`.
    rev_off: Vec<u32>,
    rev_adj: Vec<u32>,
    /// `1 / out(i)` (true global out-degree); `0.0` for dangling pages.
    inv_out: Vec<f64>,
    /// `#external successors of i / out(i)` — the row mass going to `W`.
    ext_ratio: Vec<f64>,
    /// Dense indices of dangling local pages (true out-degree zero).
    dangling: Vec<u32>,
}

impl LocalTopology {
    /// Build the topology caches from a fragment.
    pub fn build(graph: &Subgraph) -> Self {
        let n = graph.num_pages();
        let mut rev_counts = vec![0u32; n];
        let mut inv_out = vec![0.0f64; n];
        let mut ext_ratio = vec![0.0f64; n];
        let mut dangling = Vec::new();
        // First pass: degrees and local/external split.
        for i in 0..n {
            let out = graph.out_degree_at(i);
            if out == 0 {
                dangling.push(i as u32);
                continue;
            }
            inv_out[i] = 1.0 / out as f64;
            let mut ext = 0usize;
            for &t in graph.successors_at(i) {
                match graph.local_index(t) {
                    Some(j) => rev_counts[j] += 1,
                    None => ext += 1,
                }
            }
            ext_ratio[i] = ext as f64 / out as f64;
        }
        let mut rev_off = vec![0u32; n + 1];
        for i in 0..n {
            rev_off[i + 1] = rev_off[i] + rev_counts[i];
        }
        let mut rev_adj = vec![0u32; rev_off[n] as usize];
        let mut cursor = rev_off.clone();
        for i in 0..n {
            for &t in graph.successors_at(i) {
                if let Some(j) = graph.local_index(t) {
                    let c = &mut cursor[j];
                    rev_adj[*c as usize] = i as u32;
                    *c += 1;
                }
            }
        }
        LocalTopology {
            n,
            rev_off,
            rev_adj,
            inv_out,
            ext_ratio,
            dangling,
        }
    }

    /// Number of local pages.
    pub fn num_pages(&self) -> usize {
        self.n
    }

    /// Dense indices of dangling pages.
    pub fn dangling(&self) -> &[u32] {
        &self.dangling
    }
}

/// Result of one extended-graph PageRank run.
#[derive(Debug, Clone)]
pub struct PrOutcome {
    /// Stationary scores of the local pages (dense index order).
    pub scores: Vec<f64>,
    /// Stationary score of the world node.
    pub world_score: f64,
    /// Power iterations performed.
    pub iterations: usize,
    /// Whether the L1 tolerance was met.
    pub converged: bool,
}

/// Run the power iteration on the extended graph.
///
/// * `n_total` — the (estimated) global page count `N`.
/// * `world_inflow` — eq. (8) numerators per local page, from
///   [`WorldNode::inflow`](crate::world::WorldNode::inflow).
/// * `init_scores` / `init_world` — the starting vector (the peer's
///   current score list; the paper uses it as the initial distribution so
///   convergence is fast after small knowledge updates).
///
/// The starting vector is normalized to total mass 1; the iteration then
/// preserves that mass exactly (the chain is stochastic by construction).
///
/// # Panics
/// Panics if dimensions disagree, `n_total < n`, or the config is invalid.
pub fn extended_pagerank(
    topo: &LocalTopology,
    n_total: f64,
    world_inflow: &[f64],
    init_scores: &[f64],
    init_world: f64,
    cfg: &JxpConfig,
) -> PrOutcome {
    cfg.validate();
    let n = topo.n;
    assert_eq!(world_inflow.len(), n, "inflow length mismatch");
    assert_eq!(init_scores.len(), n, "score length mismatch");
    assert!(
        n_total >= n as f64,
        "global page count {n_total} smaller than local fragment {n}"
    );
    assert!(n_total > 0.0, "empty global graph");
    let eps = cfg.epsilon;
    let inv_n_total = 1.0 / n_total;
    let world_jump = (n_total - n as f64) * inv_n_total;

    // Transition probabilities out of the world node, fixed for this run
    // (eq. 8 uses the α values *from the previous meeting*). If the known
    // inflow exceeds the world's current mass — possible transiently from
    // stale bookkeeping — scale it down so the row stays stochastic.
    let mut p_wi: Vec<f64> = vec![0.0; n];
    let mut p_ww = 1.0;
    if init_world > 1e-15 {
        let total_inflow: f64 = world_inflow.iter().sum();
        let scale = if total_inflow > init_world {
            init_world / total_inflow
        } else {
            1.0
        };
        for i in 0..n {
            p_wi[i] = world_inflow[i] / init_world * scale;
        }
        p_ww = (1.0 - p_wi.iter().sum::<f64>()).max(0.0);
    }

    // Normalize the starting vector to total mass 1.
    let mass: f64 = init_scores.iter().sum::<f64>() + init_world;
    assert!(mass > 0.0, "starting vector has no mass");
    let mut curr: Vec<f64> = init_scores.iter().map(|s| s / mass).collect();
    let mut curr_w = init_world / mass;
    let mut next = vec![0.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.pr_max_iterations {
        iterations += 1;
        let dangling_mass: f64 = topo.dangling.iter().map(|&i| curr[i as usize]).sum();
        let base = (1.0 - eps) * inv_n_total + eps * dangling_mass * inv_n_total;
        // Pull-based chunked update: each chunk writes its disjoint slice
        // of `next` and returns `[to_world, l1_delta]` partials, folded
        // in chunk order — bit-identical for any thread count (see
        // `jxp_pagerank::par`).
        let curr_ref = &curr;
        let p_wi_ref = &p_wi;
        let partials: Vec<[f64; 2]> =
            jxp_pagerank::par::chunked_fill(&mut next, cfg.threads, |start, chunk| {
                let mut to_world = 0.0;
                let mut delta = 0.0;
                for (k, out) in chunk.iter_mut().enumerate() {
                    let i = start + k;
                    let mut sum = 0.0;
                    for &j in &topo.rev_adj[topo.rev_off[i] as usize..topo.rev_off[i + 1] as usize]
                    {
                        sum += curr_ref[j as usize] * topo.inv_out[j as usize];
                    }
                    *out = base + eps * (sum + curr_w * p_wi_ref[i]);
                    to_world += curr_ref[i] * topo.ext_ratio[i];
                    delta += (curr_ref[i] - *out).abs();
                }
                [to_world, delta]
            });
        let to_world: f64 = partials.iter().map(|p| p[0]).sum();
        let next_w = (1.0 - eps) * world_jump
            + eps * (to_world + curr_w * p_ww + dangling_mass * world_jump);
        let delta = (curr_w - next_w).abs() + partials.iter().map(|p| p[1]).sum::<f64>();
        std::mem::swap(&mut curr, &mut next);
        curr_w = next_w;
        if delta < cfg.pr_tolerance {
            converged = true;
            break;
        }
    }
    PrOutcome {
        scores: curr,
        world_score: curr_w,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jxp_webgraph::{GraphBuilder, PageId};

    fn fragment(edges: &[(u32, u32)], pages: &[u32]) -> Subgraph {
        let mut b = GraphBuilder::new();
        for &(s, d) in edges {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        Subgraph::from_pages(&g, pages.iter().map(|&p| PageId(p)))
    }

    #[test]
    fn topology_splits_local_and_external_links() {
        // 0→1 (local), 0→5 (external), 1→0 (local).
        let f = fragment(&[(0, 1), (0, 5), (1, 0)], &[0, 1]);
        let t = LocalTopology::build(&f);
        assert_eq!(t.num_pages(), 2);
        assert!((t.inv_out[0] - 0.5).abs() < 1e-12);
        assert!((t.ext_ratio[0] - 0.5).abs() < 1e-12);
        assert_eq!(t.ext_ratio[1], 0.0);
        assert!(t.dangling().is_empty());
        // Local predecessors of page 0 (dense 0): {1}; of page 1: {0}.
        assert_eq!(
            &t.rev_adj[t.rev_off[0] as usize..t.rev_off[1] as usize],
            &[1]
        );
        assert_eq!(
            &t.rev_adj[t.rev_off[1] as usize..t.rev_off[2] as usize],
            &[0]
        );
    }

    #[test]
    fn dangling_pages_are_detected() {
        let f = fragment(&[(0, 1)], &[0, 1]);
        let t = LocalTopology::build(&f);
        assert_eq!(t.dangling(), &[1]);
    }

    #[test]
    fn whole_graph_fragment_matches_centralized_pagerank() {
        // When a peer holds the entire graph and the world node represents
        // nothing, the extended computation must equal plain PageRank.
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)];
        let f = fragment(&edges, &[0, 1, 2, 3]);
        let t = LocalTopology::build(&f);
        let cfg = JxpConfig::default();
        let n = 4.0;
        let init = vec![0.25; 4];
        let out = extended_pagerank(&t, n, &[0.0; 4], &init, 0.0, &cfg);
        assert!(out.converged);
        assert!(out.world_score.abs() < 1e-9);

        let mut b = GraphBuilder::new();
        for &(s, d) in &edges {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let truth = jxp_pagerank::pagerank(&g, &jxp_pagerank::PageRankConfig::default());
        for i in 0..4 {
            assert!(
                (out.scores[i] - truth.scores()[i]).abs() < 1e-8,
                "page {i}: {} vs {}",
                out.scores[i],
                truth.scores()[i]
            );
        }
    }

    #[test]
    fn mass_is_conserved() {
        let f = fragment(&[(0, 1), (1, 5), (5, 0)], &[0, 1]);
        let t = LocalTopology::build(&f);
        let cfg = JxpConfig::default();
        let inflow = vec![0.05, 0.0]; // something flows back from outside
        let init = vec![1.0 / 3.0, 1.0 / 3.0];
        let out = extended_pagerank(&t, 3.0, &inflow, &init, 1.0 / 3.0, &cfg);
        let total: f64 = out.scores.iter().sum::<f64>() + out.world_score;
        assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
    }

    #[test]
    fn zero_knowledge_init_leaves_world_dominant() {
        // Algorithm 1: fragment {0,1} of a 100-page graph, no in-link
        // knowledge. Nearly all mass must stay in the world node.
        let f = fragment(&[(0, 1), (1, 50)], &[0, 1]);
        let t = LocalTopology::build(&f);
        let cfg = JxpConfig::default();
        let init = vec![0.01, 0.01];
        let out = extended_pagerank(&t, 100.0, &[0.0, 0.0], &init, 0.98, &cfg);
        assert!(out.world_score > 0.9, "world score {}", out.world_score);
        assert!(out.scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn more_inflow_raises_local_scores_and_lowers_world() {
        let f = fragment(&[(0, 1), (1, 50)], &[0, 1]);
        let t = LocalTopology::build(&f);
        let cfg = JxpConfig::default();
        let init = vec![0.01, 0.01];
        let poor = extended_pagerank(&t, 100.0, &[0.0, 0.0], &init, 0.98, &cfg);
        let rich = extended_pagerank(&t, 100.0, &[0.3, 0.0], &init, 0.98, &cfg);
        assert!(rich.scores[0] > poor.scores[0]);
        assert!(rich.world_score < poor.world_score);
    }

    #[test]
    fn oversized_inflow_is_scaled_not_exploding() {
        let f = fragment(&[(0, 1)], &[0, 1]);
        let t = LocalTopology::build(&f);
        let cfg = JxpConfig::default();
        // Stale bookkeeping claims more inflow than the world holds.
        let out = extended_pagerank(&t, 10.0, &[5.0, 5.0], &[0.1, 0.1], 0.8, &cfg);
        let total: f64 = out.scores.iter().sum::<f64>() + out.world_score;
        assert!((total - 1.0).abs() < 1e-9);
        assert!(out.scores.iter().all(|&s| s.is_finite() && s >= 0.0));
    }

    #[test]
    fn world_gets_no_jump_mass_when_fragment_covers_everything() {
        // n == N: the world node represents zero pages; with no inflow and
        // no external links its stationary score must vanish.
        let f = fragment(&[(0, 1), (1, 0)], &[0, 1]);
        let t = LocalTopology::build(&f);
        let out = extended_pagerank(
            &t,
            2.0,
            &[0.0, 0.0],
            &[0.5, 0.5],
            0.0,
            &JxpConfig::default(),
        );
        assert!(out.world_score.abs() < 1e-12, "world {}", out.world_score);
        assert!((out.scores[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn warm_start_converges_faster_than_cold_start() {
        let f = fragment(&[(0, 1), (1, 2), (2, 0), (0, 5)], &[0, 1, 2]);
        let t = LocalTopology::build(&f);
        let cfg = JxpConfig::default();
        let inflow = vec![0.02, 0.0, 0.01];
        let cold = extended_pagerank(&t, 6.0, &inflow, &[1.0 / 6.0; 3], 0.5, &cfg);
        // Re-run from the converged vector: should finish almost instantly.
        let warm = extended_pagerank(&t, 6.0, &inflow, &cold.scores, cold.world_score, &cfg);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn parallel_extended_pagerank_is_bit_identical_to_serial() {
        // A fragment spanning several par chunks (n > 2·CHUNK) with
        // external links, dangling pages and world inflow.
        let n = jxp_pagerank::par::CHUNK * 2 + 57;
        let mut b = GraphBuilder::new();
        for i in 0..n as u32 {
            if i % 89 == 0 {
                continue; // dangling
            }
            b.add_edge(PageId(i), PageId((i + 1) % n as u32));
            if i % 3 == 0 {
                b.add_edge(PageId(i), PageId(n as u32 + i)); // external
            }
        }
        let g = b.build();
        let f = Subgraph::from_pages(&g, (0..n as u32).map(PageId));
        let t = LocalTopology::build(&f);
        let n_total = 2.0 * n as f64;
        let inflow: Vec<f64> = (0..n)
            .map(|i| if i % 11 == 0 { 1e-4 } else { 0.0 })
            .collect();
        let init = vec![0.5 / n as f64; n];
        let serial = extended_pagerank(&t, n_total, &inflow, &init, 0.5, &JxpConfig::default());
        for threads in [2, 8] {
            let cfg = JxpConfig {
                threads,
                ..Default::default()
            };
            let par = extended_pagerank(&t, n_total, &inflow, &init, 0.5, &cfg);
            assert_eq!(
                serial.scores, par.scores,
                "scores diverge at {threads} threads"
            );
            assert_eq!(serial.world_score.to_bits(), par.world_score.to_bits());
            assert_eq!(serial.iterations, par.iterations);
        }
    }

    #[test]
    #[should_panic(expected = "smaller than local fragment")]
    fn n_total_smaller_than_fragment_panics() {
        let f = fragment(&[(0, 1)], &[0, 1]);
        let t = LocalTopology::build(&f);
        let _ = extended_pagerank(
            &t,
            1.0,
            &[0.0, 0.0],
            &[0.5, 0.5],
            0.0,
            &JxpConfig::default(),
        );
    }
}
