//! The paper's Theorems 5.1–5.3 as runtime-checkable invariants.
//!
//! These functions are used by the test suite (including property tests
//! over random graphs and partitions) and can be enabled in long-running
//! simulations as sanity checks:
//!
//! * **Theorem 5.1** — the world-node score is monotonically
//!   non-increasing over meetings ([`WorldScoreMonitor`]);
//! * **Theorem 5.2** — the sum of local scores is monotonically
//!   non-decreasing (same monitor, complementary quantity);
//! * **Theorem 5.3** — JXP scores never overestimate the true global
//!   PageRank: `0 < αᵢ ≤ πᵢ` and `π_w ≤ α_w < 1`
//!   ([`check_safety_bound`]).

use crate::peer::JxpPeer;

/// Small slack for floating-point comparisons of probability masses.
pub const MASS_EPSILON: f64 = 1e-9;

/// Check structural validity of a peer's score state: all scores finite
/// and non-negative, and total mass (local + world) equal to 1.
/// Returns a description of the first violation, if any.
pub fn check_mass_conservation(peer: &JxpPeer) -> Result<(), String> {
    for (i, &s) in peer.scores().iter().enumerate() {
        if !s.is_finite() || s < 0.0 {
            return Err(format!(
                "page {:?} has invalid score {s}",
                peer.graph().page_at(i)
            ));
        }
    }
    let w = peer.world_score();
    if !w.is_finite() || !(-MASS_EPSILON..=1.0 + MASS_EPSILON).contains(&w) {
        return Err(format!("world score {w} out of [0, 1]"));
    }
    let total = peer.local_mass() + w;
    if (total - 1.0).abs() > MASS_EPSILON {
        return Err(format!("total mass {total} ≠ 1"));
    }
    Ok(())
}

/// Theorem 5.3 (safety): no local JXP score may exceed the true PageRank
/// score of that page (up to `tol`), and the world score must be at least
/// the total true score of all external pages. `truth` is the dense
/// centralized PageRank vector over the global graph.
pub fn check_safety_bound(peer: &JxpPeer, truth: &[f64], tol: f64) -> Result<(), String> {
    let mut external_truth: f64 = truth.iter().sum();
    for (i, &alpha) in peer.scores().iter().enumerate() {
        let page = peer.graph().page_at(i);
        let pi = truth[page.index()];
        external_truth -= pi;
        if alpha > pi + tol {
            return Err(format!(
                "page {page:?}: JXP score {alpha} overestimates true PR {pi}"
            ));
        }
        if alpha <= 0.0 {
            return Err(format!("page {page:?}: non-positive score {alpha}"));
        }
    }
    if peer.world_score() < external_truth - tol {
        return Err(format!(
            "world score {} below true external mass {external_truth}",
            peer.world_score()
        ));
    }
    Ok(())
}

/// Monitor for Theorems 5.1/5.2: feed it the peer after every meeting and
/// it verifies the world score never increases (equivalently, the local
/// mass never decreases) beyond the configured slack.
///
/// **On the slack**: the theorem is proved for an idealized step — one
/// `p_wi` entry increases by δ with everything else fixed. The running
/// algorithm recomputes `p_wi = inflow / α_w` with the *previous* world
/// score as normalizer (paper eq. 8); while scores are still far from the
/// fixed point that normalizer lags the true stationary value, and the
/// stationary world score can transiently rise by a tiny amount (observed
/// ≤ ~2·10⁻⁴ on overlapping fragments, vanishing as the network
/// converges). Strict monitoring ([`WorldScoreMonitor::new`]) is right
/// for disjoint fragments; use
/// [`with_tolerance`](WorldScoreMonitor::with_tolerance) for overlapping
/// ones.
#[derive(Debug, Clone)]
pub struct WorldScoreMonitor {
    last_world: f64,
    violations: usize,
    max_increase: f64,
    tolerance: f64,
}

impl WorldScoreMonitor {
    /// Start monitoring from the peer's current state with strict
    /// (numerical-noise-only) tolerance.
    pub fn new(peer: &JxpPeer) -> Self {
        Self::with_tolerance(peer, MASS_EPSILON)
    }

    /// Start monitoring with an explicit per-step increase tolerance.
    pub fn with_tolerance(peer: &JxpPeer, tolerance: f64) -> Self {
        WorldScoreMonitor {
            last_world: peer.world_score(),
            violations: 0,
            max_increase: 0.0,
            tolerance,
        }
    }

    /// Record the state after a meeting; returns `true` if the
    /// monotonicity of Theorem 5.1 held for this step.
    pub fn observe(&mut self, peer: &JxpPeer) -> bool {
        let w = peer.world_score();
        let increase = w - self.last_world;
        self.last_world = w;
        if increase > self.tolerance {
            self.violations += 1;
            self.max_increase = self.max_increase.max(increase);
            false
        } else {
            true
        }
    }

    /// Number of observed monotonicity violations.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// The largest observed world-score increase (0 if none).
    pub fn max_increase(&self) -> f64 {
        self.max_increase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JxpConfig;
    use crate::meeting::meet;
    use jxp_pagerank::{pagerank, PageRankConfig};
    use jxp_webgraph::{GraphBuilder, PageId, Subgraph};

    fn setup() -> (jxp_webgraph::CsrGraph, Vec<JxpPeer>) {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (2, 0)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let peers = vec![
            JxpPeer::new(
                Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
                5,
                JxpConfig::default(),
            ),
            JxpPeer::new(
                Subgraph::from_pages(&g, [PageId(1), PageId(2), PageId(3)]),
                5,
                JxpConfig::default(),
            ),
            JxpPeer::new(
                Subgraph::from_pages(&g, [PageId(3), PageId(4)]),
                5,
                JxpConfig::default(),
            ),
        ];
        (g, peers)
    }

    #[test]
    fn mass_conservation_holds_initially_and_after_meetings() {
        let (_, mut peers) = setup();
        for p in &peers {
            check_mass_conservation(p).unwrap();
        }
        let (a, rest) = peers.split_at_mut(1);
        meet(&mut a[0], &mut rest[0]);
        for p in &peers {
            check_mass_conservation(p).unwrap();
        }
    }

    #[test]
    fn safety_bound_holds_through_meetings() {
        let (g, mut peers) = setup();
        let truth = pagerank(&g, &PageRankConfig::default()).into_scores();
        // Pairwise meetings in a fixed round-robin.
        for round in 0..10 {
            let (i, j) = match round % 3 {
                0 => (0, 1),
                1 => (1, 2),
                _ => (0, 2),
            };
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let (left, right) = peers.split_at_mut(hi);
            meet(&mut left[lo], &mut right[0]);
            for p in &peers {
                check_safety_bound(p, &truth, 1e-6).unwrap();
            }
        }
    }

    #[test]
    fn world_score_monitor_tracks_monotonicity() {
        let (_, mut peers) = setup();
        let mut monitor = WorldScoreMonitor::new(&peers[0]);
        for _ in 0..8 {
            let (a, rest) = peers.split_at_mut(1);
            meet(&mut a[0], &mut rest[0]);
            assert!(monitor.observe(&peers[0]), "world score increased");
        }
        assert_eq!(monitor.violations(), 0);
        assert_eq!(monitor.max_increase(), 0.0);
    }

    #[test]
    fn safety_check_detects_fabricated_violation() {
        let (g, peers) = setup();
        let mut truth = pagerank(&g, &PageRankConfig::default()).into_scores();
        // Corrupt the truth so the peer appears to overestimate.
        for t in truth.iter_mut() {
            *t = 1e-12;
        }
        assert!(check_safety_bound(&peers[0], &truth, 1e-9).is_err());
    }
}
