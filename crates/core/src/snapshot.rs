//! Peer-state persistence.
//!
//! In a real deployment peers leave and re-join the network constantly
//! (§5.3 churn). A peer that throws away its accumulated world-node
//! knowledge on every restart pays the full warm-up cost again; this
//! module serializes the complete [`JxpPeer`] state — fragment, score
//! list, world node, configuration, statistics — into a compact binary
//! snapshot so a re-joining peer resumes where it left off. The churn
//! integration tests demonstrate the payoff.
//!
//! Format (little-endian): magic `JXPP`, version, config block, `N`,
//! the fragment's adjacency with per-page scores, the world node's link
//! entries and dangling entries, and the peer statistics.

use crate::config::{CombineMode, JxpConfig, MergeMode};
use crate::peer::{JxpPeer, PeerStats};
use crate::world::WorldNode;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use jxp_webgraph::{PageId, Subgraph};

const MAGIC: [u8; 4] = *b"JXPP";
const VERSION: u32 = 1;

/// Serialize a peer's full state.
pub fn save(peer: &JxpPeer) -> Bytes {
    let graph = peer.graph();
    let world = peer.world();
    let mut buf = BytesMut::with_capacity(64 + graph.num_links() * 4 + world.wire_size());
    buf.put_slice(&MAGIC);
    buf.put_u32_le(VERSION);
    // Config.
    let cfg = peer.config();
    buf.put_f64_le(cfg.epsilon);
    buf.put_f64_le(cfg.pr_tolerance);
    buf.put_u32_le(cfg.pr_max_iterations as u32);
    buf.put_u8(match cfg.merge {
        MergeMode::Full => 0,
        MergeMode::LightWeight => 1,
    });
    buf.put_u8(match cfg.combine {
        CombineMode::Average => 0,
        CombineMode::TakeMax => 1,
    });
    // Global page count and world score.
    buf.put_f64_le(peer.n_total());
    buf.put_f64_le(peer.world_score());
    // Fragment with scores.
    buf.put_u32_le(graph.num_pages() as u32);
    for i in 0..graph.num_pages() {
        buf.put_u32_le(graph.page_at(i).0);
        buf.put_f64_le(peer.scores()[i]);
        let succs = graph.successors_at(i);
        buf.put_u32_le(succs.len() as u32);
        for s in succs {
            buf.put_u32_le(s.0);
        }
    }
    // World node: link entries (WorldNode::iter is sorted by PageId),
    // then dangling.
    buf.put_u32_le(world.len() as u32);
    for (src, e) in world.iter() {
        buf.put_u32_le(src.0);
        buf.put_u32_le(e.out_degree);
        buf.put_f64_le(e.score);
        buf.put_u32_le(e.targets.len() as u32);
        for t in &e.targets {
            buf.put_u32_le(t.0);
        }
    }
    buf.put_u32_le(world.num_dangling() as u32);
    for (p, s) in world.dangling_iter() {
        buf.put_u32_le(p.0);
        buf.put_f64_le(s);
    }
    // Statistics.
    buf.put_u64_le(peer.stats().meetings);
    buf.put_u64_le(peer.stats().total_pr_iterations);
    buf.freeze()
}

fn err(msg: &str) -> String {
    format!("corrupt peer snapshot: {msg}")
}

macro_rules! need {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(err("truncated"));
        }
    };
}

/// Deserialize a peer snapshot.
///
/// # Errors
/// Returns a description of the first structural problem (bad magic,
/// truncation, invalid enum tags, inconsistent counts, invalid scores).
pub fn load(mut buf: impl Buf) -> Result<JxpPeer, String> {
    need!(buf, 8);
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(err("unsupported version"));
    }
    need!(buf, 8 + 8 + 4 + 2);
    let config = JxpConfig {
        epsilon: buf.get_f64_le(),
        pr_tolerance: buf.get_f64_le(),
        pr_max_iterations: buf.get_u32_le() as usize,
        merge: match buf.get_u8() {
            0 => MergeMode::Full,
            1 => MergeMode::LightWeight,
            _ => return Err(err("invalid merge mode")),
        },
        combine: match buf.get_u8() {
            0 => CombineMode::Average,
            1 => CombineMode::TakeMax,
            _ => return Err(err("invalid combine mode")),
        },
        // Machine-local wall-clock knob, deliberately not persisted:
        // scores are thread-count-invariant, and a snapshot may be
        // restored on hardware with different parallelism.
        threads: 1,
    };
    if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
        return Err(err("epsilon out of range"));
    }
    need!(buf, 16 + 4);
    let n_total = buf.get_f64_le();
    let world_score = buf.get_f64_le();
    if !world_score.is_finite() || !(0.0..=1.0).contains(&world_score) {
        return Err(err("world score out of range"));
    }
    let n = buf.get_u32_le() as usize;
    if n == 0 {
        return Err(err("empty fragment"));
    }
    // Every page entry needs at least 16 bytes, so a corrupt count is
    // rejected before it can drive a multi-gigabyte allocation.
    need!(buf, n * 16);
    let mut adjacency = Vec::with_capacity(n);
    let mut page_scores = Vec::with_capacity(n);
    for _ in 0..n {
        need!(buf, 16);
        let page = PageId(buf.get_u32_le());
        let score = buf.get_f64_le();
        if !score.is_finite() || score < 0.0 {
            return Err(err("invalid page score"));
        }
        let deg = buf.get_u32_le() as usize;
        need!(buf, deg * 4);
        let succs: Vec<PageId> = (0..deg).map(|_| PageId(buf.get_u32_le())).collect();
        page_scores.push((page, score));
        adjacency.push((page, succs));
    }
    let graph = Subgraph::from_adjacency(adjacency);
    if graph.num_pages() != n {
        return Err(err("duplicate pages in fragment"));
    }
    // Scores must be re-ordered to the Subgraph's dense (sorted) order.
    let mut scores = vec![0.0f64; n];
    for (page, score) in page_scores {
        let idx = graph
            .local_index(page)
            .ok_or_else(|| err("page lost during reconstruction"))?;
        scores[idx] = score;
    }
    // World node.
    let mut world = WorldNode::new();
    need!(buf, 4);
    let num_entries = buf.get_u32_le() as usize;
    for _ in 0..num_entries {
        need!(buf, 20);
        let src = PageId(buf.get_u32_le());
        let out_degree = buf.get_u32_le();
        let score = buf.get_f64_le();
        let num_targets = buf.get_u32_le() as usize;
        need!(buf, num_targets * 4);
        let targets: Vec<PageId> = (0..num_targets).map(|_| PageId(buf.get_u32_le())).collect();
        if out_degree == 0 || (targets.len() > out_degree as usize) {
            return Err(err("inconsistent world entry"));
        }
        if !score.is_finite() || score < 0.0 {
            return Err(err("invalid world entry score"));
        }
        world.upsert(src, out_degree, score, targets, config.combine);
    }
    need!(buf, 4);
    let num_dangling = buf.get_u32_le() as usize;
    for _ in 0..num_dangling {
        need!(buf, 12);
        let p = PageId(buf.get_u32_le());
        let s = buf.get_f64_le();
        if !s.is_finite() || s < 0.0 {
            return Err(err("invalid dangling score"));
        }
        world.upsert_dangling(p, s, config.combine);
    }
    need!(buf, 16);
    let stats = PeerStats {
        meetings: buf.get_u64_le(),
        last_pr_iterations: 0,
        total_pr_iterations: buf.get_u64_le(),
    };
    if !n_total.is_finite() || n_total < n as f64 {
        return Err(err("N smaller than fragment"));
    }
    Ok(JxpPeer::from_snapshot_parts(
        graph,
        world,
        scores,
        world_score,
        n_total,
        config,
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meeting::meet;
    use jxp_webgraph::GraphBuilder;

    fn warmed_up_peer() -> (JxpPeer, JxpPeer) {
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
            b.add_edge(PageId(s), PageId(d));
        }
        let g = b.build();
        let mut a = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(0), PageId(1)]),
            4,
            JxpConfig::default(),
        );
        let mut c = JxpPeer::new(
            Subgraph::from_pages(&g, [PageId(2), PageId(3)]),
            4,
            JxpConfig::default(),
        );
        for _ in 0..5 {
            meet(&mut a, &mut c);
        }
        (a, c)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (a, _) = warmed_up_peer();
        let bytes = save(&a);
        let restored = load(&bytes[..]).unwrap();
        assert_eq!(restored.graph().pages(), a.graph().pages());
        assert_eq!(restored.scores(), a.scores());
        assert_eq!(restored.world_score(), a.world_score());
        assert_eq!(restored.n_total(), a.n_total());
        assert_eq!(restored.config(), a.config());
        assert_eq!(restored.stats().meetings, a.stats().meetings);
        assert_eq!(restored.world().len(), a.world().len());
        assert_eq!(restored.world().num_dangling(), a.world().num_dangling());
        for (src, e) in a.world().iter() {
            let r = restored.world().entry(src).expect("entry lost");
            assert_eq!(r, e);
        }
    }

    #[test]
    fn restored_peer_keeps_working() {
        let (a, mut c) = warmed_up_peer();
        let mut restored = load(&save(&a)[..]).unwrap();
        // The restored peer can keep meeting peers and stays valid.
        meet(&mut restored, &mut c);
        crate::invariants::check_mass_conservation(&restored).unwrap();
        assert_eq!(restored.stats().meetings, a.stats().meetings + 1);
    }

    #[test]
    fn warm_restart_beats_cold_restart() {
        let (a, mut c) = warmed_up_peer();
        // Warm restart: restored from snapshot, world knowledge intact.
        let warm = load(&save(&a)[..]).unwrap();
        assert!(!warm.world().is_empty());
        // Cold restart: same fragment, no knowledge.
        let cold = JxpPeer::new(a.graph().clone(), 4, a.config().clone());
        assert!(cold.world().is_empty());
        assert!(
            warm.local_mass() > cold.local_mass(),
            "warm {} vs cold {}",
            warm.local_mass(),
            cold.local_mass()
        );
        let _ = &mut c;
    }

    #[test]
    fn corruption_is_detected() {
        let (a, _) = warmed_up_peer();
        let good = save(&a);
        // Bad magic.
        let mut bad = good.to_vec();
        bad[0] = b'X';
        assert!(load(&bad[..]).is_err());
        // Truncations at every prefix must error, never panic.
        for cut in 0..good.len().min(64) {
            assert!(load(&good[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Corrupt a score to NaN: find the first f64 after the config
        // block is n_total; corrupt the world_score instead (offset 8+8+8+4+2).
        let mut bad = good.to_vec();
        let ws_off = 4 + 4 + 8 + 8 + 4 + 1 + 1 + 8;
        bad[ws_off..ws_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(load(&bad[..]).is_err());
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let (a, _) = warmed_up_peer();
        let good = save(&a);
        // Mirrors the jxp-wire truncation rejects: every possible torn
        // prefix must come back as Err, never a panic or a short read.
        for cut in 0..good.len() {
            assert!(load(&good[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn every_single_byte_flip_is_handled_without_panicking() {
        let (a, _) = warmed_up_peer();
        let good = save(&a);
        for i in 0..good.len() {
            let mut bad = good.to_vec();
            bad[i] ^= 0xFF;
            // A flip may happen to survive validation (e.g. the low
            // mantissa bits of a score); the contract is no panic and
            // no unbounded allocation, not detection of every flip.
            let _ = load(&bad[..]);
        }
    }

    #[test]
    fn corrupt_counts_cannot_drive_huge_allocations() {
        let (a, _) = warmed_up_peer();
        let good = save(&a);
        // Overwrite the fragment page count (right after the config
        // block, N and world_score) with u32::MAX: load must reject it
        // via the remaining-bytes bound instead of reserving 64 GiB.
        let count_off = 4 + 4 + 8 + 8 + 4 + 1 + 1 + 8 + 8;
        let mut bad = good.to_vec();
        bad[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(load(&bad[..]).is_err());
    }

    #[test]
    fn nan_n_total_is_rejected() {
        let (a, _) = warmed_up_peer();
        let good = save(&a);
        let n_total_off = 4 + 4 + 8 + 8 + 4 + 1 + 1;
        let mut bad = good.to_vec();
        bad[n_total_off..n_total_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(load(&bad[..]).is_err());
    }
}
